//! Arakawa-C staggered grid with non-uniform horizontal metrics.
//!
//! Variables live at staggered points:
//! - rho points (cell centers): ζ, h, tracers — `(ny, nx)`
//! - u points (west/east faces): u — `(ny, nx+1)`, face `i` between cells
//!   `i-1` and `i`
//! - v points (south/north faces): v — `(ny+1, nx)`, face `j` between cells
//!   `j-1` and `j`
//!
//! Spacing is a tensor product `dx[i] × dy[j]`, refined near river channels
//! and inlets exactly as the paper's Charlotte Harbor mesh concentrates
//! resolution near land-water interfaces.

use crate::bathymetry::{Bathymetry, EstuaryParams};
use crate::field::Field2;
use crate::sigma::SigmaCoords;

/// The full model grid: bathymetry, masks at all staggered points,
/// horizontal metrics and vertical coordinate.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Cells north-south.
    pub ny: usize,
    /// Cells east-west.
    pub nx: usize,
    /// Depth at rho points (m, positive down).
    pub h: Field2,
    /// Water mask at rho points (1 water, 0 land).
    pub mask_rho: Field2,
    /// Water mask at u faces, `(ny, nx+1)`.
    pub mask_u: Field2,
    /// Water mask at v faces, `(ny+1, nx)`.
    pub mask_v: Field2,
    /// Cell width (m) per column, length `nx`.
    pub dx: Vec<f64>,
    /// Cell height (m) per row, length `ny`.
    pub dy: Vec<f64>,
    /// Vertical coordinate.
    pub sigma: SigmaCoords,
    /// Coriolis parameter (1/s), f-plane.
    pub coriolis: f64,
}

/// Grid construction parameters.
#[derive(Clone, Debug)]
pub struct GridParams {
    pub estuary: EstuaryParams,
    /// Base horizontal spacing (m).
    pub base_spacing: f64,
    /// Refinement factor near channels/inlets (cells shrink to
    /// `base_spacing / refine_factor`).
    pub refine_factor: f64,
    pub nz: usize,
    /// Latitude (deg) for the f-plane Coriolis parameter. Charlotte Harbor
    /// is at ~26.8°N.
    pub latitude_deg: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            estuary: EstuaryParams::default(),
            base_spacing: 500.0,
            refine_factor: 2.0,
            nz: 12,
            latitude_deg: 26.8,
        }
    }
}

impl Grid {
    /// Build the grid from parameters (deterministic).
    pub fn build(p: &GridParams) -> Grid {
        let Bathymetry { h, mask } = crate::bathymetry::generate(&p.estuary);
        let (ny, nx) = (p.estuary.ny, p.estuary.nx);

        // u-face mask: wet only if both adjacent rho cells are wet.
        let mut mask_u = Field2::new(ny, nx + 1);
        for j in 0..ny as isize {
            for i in 0..=(nx as isize) {
                let west = if i == 0 {
                    mask.get(j, 0)
                } else {
                    mask.get(j, i - 1)
                };
                let east = if i == nx as isize {
                    mask.get(j, nx as isize - 1)
                } else {
                    mask.get(j, i)
                };
                mask_u.set(j, i, if west == 1.0 && east == 1.0 { 1.0 } else { 0.0 });
            }
        }
        // v-face mask.
        let mut mask_v = Field2::new(ny + 1, nx);
        for j in 0..=(ny as isize) {
            for i in 0..nx as isize {
                let south = if j == 0 {
                    mask.get(0, i)
                } else {
                    mask.get(j - 1, i)
                };
                let north = if j == ny as isize {
                    mask.get(ny as isize - 1, i)
                } else {
                    mask.get(j, i)
                };
                mask_v.set(
                    j,
                    i,
                    if south == 1.0 && north == 1.0 {
                        1.0
                    } else {
                        0.0
                    },
                );
            }
        }

        // Non-uniform spacing: refine columns near the barrier/inlets and
        // rows near river channels.
        let barrier_i = ((nx as f64) * p.estuary.barrier_pos) as usize;
        let channel_rows: Vec<usize> = (0..p.estuary.n_channels)
            .map(|k| ((2 * k + 1) * ny) / (2 * p.estuary.n_channels))
            .collect();
        let dx: Vec<f64> = (0..nx)
            .map(|i| {
                let d = i.abs_diff(barrier_i) as f64;
                let w = (-((d / 6.0).powi(2))).exp(); // 1 near barrier, 0 far
                p.base_spacing * (1.0 - (1.0 - 1.0 / p.refine_factor) * w)
            })
            .collect();
        let dy: Vec<f64> = (0..ny)
            .map(|j| {
                let d = channel_rows
                    .iter()
                    .map(|&c| j.abs_diff(c))
                    .min()
                    .unwrap_or(usize::MAX) as f64;
                let w = (-((d / 4.0).powi(2))).exp();
                p.base_spacing * (1.0 - (1.0 - 1.0 / p.refine_factor) * w)
            })
            .collect();

        let omega = 7.2921e-5;
        let coriolis = 2.0 * omega * p.latitude_deg.to_radians().sin();

        Grid {
            ny,
            nx,
            h,
            mask_rho: mask,
            mask_u,
            mask_v,
            dx,
            dy,
            sigma: SigmaCoords::new(p.nz, 3.0, 0.4),
            coriolis,
        }
    }

    /// Depth at a u face (average of adjacent rho cells, clamped at edges).
    #[inline]
    pub fn h_u(&self, j: isize, i: isize) -> f64 {
        let west = if i == 0 {
            self.h.get(j, 0)
        } else {
            self.h.get(j, i - 1)
        };
        let east = if i == self.nx as isize {
            self.h.get(j, self.nx as isize - 1)
        } else {
            self.h.get(j, i)
        };
        0.5 * (west + east)
    }

    /// Depth at a v face.
    #[inline]
    pub fn h_v(&self, j: isize, i: isize) -> f64 {
        let south = if j == 0 {
            self.h.get(0, i)
        } else {
            self.h.get(j - 1, i)
        };
        let north = if j == self.ny as isize {
            self.h.get(self.ny as isize - 1, i)
        } else {
            self.h.get(j, i)
        };
        0.5 * (south + north)
    }

    /// Cell horizontal area (m²).
    #[inline]
    pub fn cell_area(&self, j: usize, i: usize) -> f64 {
        self.dx[i] * self.dy[j]
    }

    /// Total wet cell count.
    pub fn wet_cells(&self) -> usize {
        self.mask_rho.interior_sum() as usize
    }

    /// Smallest horizontal spacing (controls the CFL limit).
    pub fn min_spacing(&self) -> f64 {
        let mx = self.dx.iter().cloned().fold(f64::INFINITY, f64::min);
        let my = self.dy.iter().cloned().fold(f64::INFINITY, f64::min);
        mx.min(my)
    }

    /// Maximum depth (m).
    pub fn max_depth(&self) -> f64 {
        self.h.max_abs()
    }

    /// Barotropic CFL-stable time step (s) with safety factor `safety`.
    pub fn barotropic_dt(&self, safety: f64) -> f64 {
        let c = (9.81 * self.max_depth()).sqrt();
        safety * self.min_spacing() / (c * std::f64::consts::SQRT_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 32,
                nx: 24,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        })
    }

    #[test]
    fn mask_consistency_u_faces() {
        let g = small();
        for j in 0..g.ny as isize {
            for i in 1..g.nx as isize {
                let expect = g.mask_rho.get(j, i - 1) * g.mask_rho.get(j, i);
                assert_eq!(g.mask_u.get(j, i), expect, "u mask at ({j},{i})");
            }
        }
    }

    #[test]
    fn mask_consistency_v_faces() {
        let g = small();
        for j in 1..g.ny as isize {
            for i in 0..g.nx as isize {
                let expect = g.mask_rho.get(j - 1, i) * g.mask_rho.get(j, i);
                assert_eq!(g.mask_v.get(j, i), expect, "v mask at ({j},{i})");
            }
        }
    }

    #[test]
    fn refinement_near_barrier() {
        let g = small();
        let barrier_i = ((g.nx as f64) * EstuaryParams::default().barrier_pos) as usize;
        let min_dx = g.dx.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((g.dx[barrier_i] - min_dx).abs() < 1e-9, "finest at barrier");
        assert!(g.dx[0] > 1.5 * min_dx, "coarse far from barrier");
    }

    #[test]
    fn spacing_positive_and_bounded() {
        let g = small();
        let p = GridParams::default();
        for &d in g.dx.iter().chain(g.dy.iter()) {
            assert!(d > 0.0);
            assert!(d <= p.base_spacing + 1e-9);
            assert!(d >= p.base_spacing / p.refine_factor - 1e-9);
        }
    }

    #[test]
    fn face_depth_average() {
        let g = small();
        let j = (g.ny / 2) as isize;
        let i = 5isize;
        let expect = 0.5 * (g.h.get(j, i - 1) + g.h.get(j, i));
        assert!((g.h_u(j, i) - expect).abs() < 1e-12);
    }

    #[test]
    fn cfl_dt_reasonable() {
        let g = small();
        let dt = g.barotropic_dt(0.7);
        // ~250 m spacing, ~12 m depth -> c ≈ 11 m/s -> dt ≈ 11 s
        assert!(dt > 1.0 && dt < 60.0, "dt = {dt}");
    }

    #[test]
    fn coriolis_northern_hemisphere() {
        let g = small();
        assert!(g.coriolis > 0.0);
        assert!(g.coriolis < 1e-4 * 2.0);
    }
}
