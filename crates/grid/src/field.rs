//! Halo-aware field storage for the finite-volume solver.
//!
//! The simulator runs in `f64` (as ROMS does — the paper compresses to FP16
//! only for the training archive). A [`Field2`] stores an `ny × nx` interior
//! plus a one-cell halo ring; boundary conditions and MPI-style exchanges
//! both write into the halo, which is what lets the serial and tiled
//! drivers share kernels bit-for-bit.

/// 2-D scalar field with a one-cell halo ring. Interior indices are
/// `0..ny` × `0..nx`; halo cells are reachable at `-1` and `ny`/`nx`.
#[derive(Clone, Debug, PartialEq)]
pub struct Field2 {
    ny: usize,
    nx: usize,
    data: Vec<f64>,
}

impl Field2 {
    /// Zero-initialized field (halo included).
    pub fn new(ny: usize, nx: usize) -> Self {
        Self {
            ny,
            nx,
            data: vec![0.0; (ny + 2) * (nx + 2)],
        }
    }

    /// Constant-filled interior (halo zero).
    pub fn full(ny: usize, nx: usize, v: f64) -> Self {
        let mut f = Self::new(ny, nx);
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                f.set(j, i, v);
            }
        }
        f
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    #[inline]
    fn idx(&self, j: isize, i: isize) -> usize {
        debug_assert!(
            j >= -1 && j <= self.ny as isize && i >= -1 && i <= self.nx as isize,
            "field index ({j},{i}) outside halo bounds {}x{}",
            self.ny,
            self.nx
        );
        ((j + 1) as usize) * (self.nx + 2) + (i + 1) as usize
    }

    /// Read (interior or halo).
    #[inline]
    pub fn get(&self, j: isize, i: isize) -> f64 {
        self.data[self.idx(j, i)]
    }

    /// Write (interior or halo).
    #[inline]
    pub fn set(&mut self, j: isize, i: isize, v: f64) {
        let k = self.idx(j, i);
        self.data[k] = v;
    }

    /// Add into a cell.
    #[inline]
    pub fn add(&mut self, j: isize, i: isize, v: f64) {
        let k = self.idx(j, i);
        self.data[k] += v;
    }

    /// Raw storage including halo (row-major, `(ny+2) × (nx+2)`).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage including halo.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy the interior into a flat `Vec` (row-major, no halo).
    pub fn interior_to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ny * self.nx);
        for j in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                out.push(self.get(j, i));
            }
        }
        out
    }

    /// Fill the interior from a flat row-major slice.
    pub fn interior_from_slice(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.ny * self.nx);
        for j in 0..self.ny {
            for i in 0..self.nx {
                self.set(j as isize, i as isize, src[j * self.nx + i]);
            }
        }
    }

    /// Extract a row strip `[i0, i1)` of interior row `j` (for halo sends).
    pub fn row_strip(&self, j: isize, i0: isize, i1: isize) -> Vec<f64> {
        (i0..i1).map(|i| self.get(j, i)).collect()
    }

    /// Extract a column strip `[j0, j1)` of interior column `i`.
    pub fn col_strip(&self, i: isize, j0: isize, j1: isize) -> Vec<f64> {
        (j0..j1).map(|j| self.get(j, i)).collect()
    }

    /// Write a row strip starting at `(j, i0)`.
    pub fn set_row_strip(&mut self, j: isize, i0: isize, vals: &[f64]) {
        for (d, &v) in vals.iter().enumerate() {
            self.set(j, i0 + d as isize, v);
        }
    }

    /// Write a column strip starting at `(j0, i)`.
    pub fn set_col_strip(&mut self, i: isize, j0: isize, vals: &[f64]) {
        for (d, &v) in vals.iter().enumerate() {
            self.set(j0 + d as isize, i, v);
        }
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for j in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                m = m.max(self.get(j, i).abs());
            }
        }
        m
    }

    /// Interior sum (f64 accumulation).
    pub fn interior_sum(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                s += self.get(j, i);
            }
        }
        s
    }

    /// Maximum absolute interior difference against another field.
    pub fn max_abs_diff(&self, other: &Field2) -> f64 {
        assert_eq!((self.ny, self.nx), (other.ny, other.nx));
        let mut m = 0.0f64;
        for j in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                m = m.max((self.get(j, i) - other.get(j, i)).abs());
            }
        }
        m
    }
}

/// Stack of `nz` [`Field2`] layers (halo in the horizontal only).
/// Layer 0 is the bottom sigma layer, `nz-1` the surface.
#[derive(Clone, Debug, PartialEq)]
pub struct Field3 {
    layers: Vec<Field2>,
}

impl Field3 {
    pub fn new(nz: usize, ny: usize, nx: usize) -> Self {
        Self {
            layers: (0..nz).map(|_| Field2::new(ny, nx)).collect(),
        }
    }

    #[inline]
    pub fn nz(&self) -> usize {
        self.layers.len()
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.layers[0].ny()
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.layers[0].nx()
    }

    #[inline]
    pub fn layer(&self, k: usize) -> &Field2 {
        &self.layers[k]
    }

    #[inline]
    pub fn layer_mut(&mut self, k: usize) -> &mut Field2 {
        &mut self.layers[k]
    }

    /// Mutable access to all layers at once (for vertical solves).
    pub fn layers_mut(&mut self) -> &mut [Field2] {
        &mut self.layers
    }

    #[inline]
    pub fn get(&self, k: usize, j: isize, i: isize) -> f64 {
        self.layers[k].get(j, i)
    }

    #[inline]
    pub fn set(&mut self, k: usize, j: isize, i: isize, v: f64) {
        self.layers[k].set(j, i, v);
    }

    /// Maximum absolute interior difference against another field.
    pub fn max_abs_diff(&self, other: &Field3) -> f64 {
        assert_eq!(self.nz(), other.nz());
        self.layers
            .iter()
            .zip(&other.layers)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_and_halo_are_distinct() {
        let mut f = Field2::new(3, 4);
        f.set(0, 0, 1.0);
        f.set(-1, 0, 2.0); // halo
        f.set(3, 3, 3.0); // halo
        assert_eq!(f.get(0, 0), 1.0);
        assert_eq!(f.get(-1, 0), 2.0);
        assert_eq!(f.get(3, 3), 3.0);
        // Interior sum excludes halo.
        assert_eq!(f.interior_sum(), 1.0);
    }

    #[test]
    fn roundtrip_interior_vec() {
        let mut f = Field2::new(2, 3);
        f.interior_from_slice(&[1., 2., 3., 4., 5., 6.]);
        assert_eq!(f.interior_to_vec(), vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(f.get(1, 2), 6.0);
    }

    #[test]
    fn strips() {
        let mut f = Field2::new(3, 3);
        f.interior_from_slice(&[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(f.row_strip(1, 0, 3), vec![4., 5., 6.]);
        assert_eq!(f.col_strip(2, 0, 3), vec![3., 6., 9.]);
        f.set_col_strip(-1, 0, &[10., 11., 12.]); // west halo column
        assert_eq!(f.get(0, -1), 10.0);
        assert_eq!(f.get(2, -1), 12.0);
    }

    #[test]
    fn field3_layers() {
        let mut f = Field3::new(2, 2, 2);
        f.set(0, 0, 0, 5.0);
        f.set(1, 1, 1, 7.0);
        assert_eq!(f.get(0, 0, 0), 5.0);
        assert_eq!(f.get(1, 1, 1), 7.0);
        assert_eq!(f.layer(0).get(1, 1), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Field2::full(2, 2, 1.0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 1, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
