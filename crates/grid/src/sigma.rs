//! Terrain-following sigma vertical coordinate (ROMS-style stretching).
//!
//! Layer interfaces follow the bathymetry at the bottom and the free
//! surface at the top; intermediate levels are distributed by the standard
//! Song & Haidvogel stretching so resolution concentrates near surface
//! and/or bottom.

use serde::{Deserialize, Serialize};

/// Sigma-coordinate configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SigmaCoords {
    /// Number of layers (the paper's mesh uses 12).
    pub nz: usize,
    /// Surface stretching intensity (0 = uniform).
    pub theta_s: f64,
    /// Bottom stretching intensity.
    pub theta_b: f64,
}

impl SigmaCoords {
    pub fn new(nz: usize, theta_s: f64, theta_b: f64) -> Self {
        assert!(nz >= 1);
        Self {
            nz,
            theta_s,
            theta_b,
        }
    }

    /// Uniform layers (no stretching).
    pub fn uniform(nz: usize) -> Self {
        Self::new(nz, 0.0, 0.0)
    }

    /// s-value of interface `k` (k = 0 bottom .. nz top), in [-1, 0].
    pub fn s_w(&self, k: usize) -> f64 {
        debug_assert!(k <= self.nz);
        -1.0 + k as f64 / self.nz as f64
    }

    /// Stretching function C(s) (Song & Haidvogel 1994).
    pub fn c_of_s(&self, s: f64) -> f64 {
        if self.theta_s.abs() < 1e-12 {
            return s;
        }
        let ts = self.theta_s;
        let tb = self.theta_b;

        (1.0 - tb) * (ts * s).sinh() / ts.sinh()
            + tb * ((ts * (s + 0.5)).tanh() / (2.0 * (ts * 0.5).tanh()) - 0.5)
    }

    /// Depth (negative, m) of interface `k` for water depth `h` and free
    /// surface `zeta` — linear (Shchepetkin) transform.
    pub fn z_w(&self, k: usize, h: f64, zeta: f64) -> f64 {
        let s = self.s_w(k);
        let c = self.c_of_s(s);
        // z = zeta + (zeta + h) * sigma with stretched sigma
        zeta + (zeta + h) * c
    }

    /// Thickness (m) of layer `k` (0-based, bottom-up) for the column.
    pub fn dz(&self, k: usize, h: f64, zeta: f64) -> f64 {
        debug_assert!(k < self.nz);
        self.z_w(k + 1, h, zeta) - self.z_w(k, h, zeta)
    }

    /// Mid-layer depth (negative) of layer `k`.
    pub fn z_r(&self, k: usize, h: f64, zeta: f64) -> f64 {
        0.5 * (self.z_w(k, h, zeta) + self.z_w(k + 1, h, zeta))
    }

    /// All layer thicknesses bottom-up; sums to `h + zeta`.
    pub fn thicknesses(&self, h: f64, zeta: f64) -> Vec<f64> {
        (0..self.nz).map(|k| self.dz(k, h, zeta)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layers_have_equal_thickness() {
        let s = SigmaCoords::uniform(4);
        let dz = s.thicknesses(8.0, 0.0);
        for d in &dz {
            assert!((d - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn thicknesses_sum_to_total_depth() {
        for &(ts, tb) in &[(0.0, 0.0), (3.0, 0.4), (5.0, 0.9)] {
            let s = SigmaCoords::new(12, ts, tb);
            for &(h, zeta) in &[(10.0, 0.0), (3.5, 0.7), (20.0, -0.4)] {
                let sum: f64 = s.thicknesses(h, zeta).iter().sum();
                assert!(
                    (sum - (h + zeta)).abs() < 1e-9,
                    "ts={ts} h={h} zeta={zeta}: sum {sum}"
                );
            }
        }
    }

    #[test]
    fn interfaces_monotone() {
        let s = SigmaCoords::new(12, 4.0, 0.5);
        let mut prev = s.z_w(0, 15.0, 0.2);
        assert!((prev - (-15.0 + 0.2 * 0.0)).abs() < 1.0); // near bottom
        for k in 1..=12 {
            let z = s.z_w(k, 15.0, 0.2);
            assert!(z > prev, "interfaces must increase upward");
            prev = z;
        }
        assert!((s.z_w(12, 15.0, 0.2) - 0.2).abs() < 1e-9, "top = zeta");
        assert!((s.z_w(0, 15.0, 0.2) + 15.0).abs() < 1e-9, "bottom = -h");
    }

    #[test]
    fn surface_stretching_refines_near_surface() {
        let s = SigmaCoords::new(10, 5.0, 0.0);
        let dz = s.thicknesses(10.0, 0.0);
        // Top layer thinner than bottom layer with surface stretching.
        assert!(dz[9] < dz[0]);
    }

    #[test]
    fn free_surface_follows_top() {
        let s = SigmaCoords::uniform(3);
        assert!((s.z_w(3, 5.0, 0.8) - 0.8).abs() < 1e-12);
        assert!((s.z_w(3, 5.0, -0.3) + 0.3).abs() < 1e-12);
    }
}
