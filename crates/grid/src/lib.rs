//! # coastal-grid
//!
//! Spatial discretization substrate for the coastal circulation simulator:
//! Arakawa-C staggered grids, terrain-following sigma layers, land/sea
//! masks, non-uniform metrics, and a deterministic synthetic
//! Charlotte-Harbor-like estuary generator (barrier islands, inlets, river
//! channels) standing in for the paper's proprietary mesh.

pub mod arakawa;
pub mod bathymetry;
pub mod field;
pub mod sigma;

pub use arakawa::{Grid, GridParams};
pub use bathymetry::{generate as generate_estuary, Bathymetry, EstuaryParams};
pub use field::{Field2, Field3};
pub use sigma::SigmaCoords;
