//! Synthetic Charlotte-Harbor-like estuary bathymetry.
//!
//! The paper's dataset is a decade of ROMS runs over Charlotte Harbor, FL:
//! an estuary sheltered by barrier islands, connected to the Gulf through
//! inlets, fed by river channels, meshed non-uniformly with refinement near
//! channels and inlets. This module generates a deterministic idealized
//! version with the same structural features so the tidal co-oscillation
//! the surrogate must learn (ocean wave entering through inlets, damping
//! and phase lag inside the estuary) is present.
//!
//! Domain layout (i grows eastward, j northward):
//!
//! ```text
//!   west (i=0)            barrier islands           east (i=nx-1)
//!   open ocean  | inlet |  estuary  ... river channels ... land
//!   deep, 8-16m | gaps  |  1.5-4m   (channels 6-8m)
//! ```

use crate::field::Field2;

/// Parameters of the synthetic estuary.
#[derive(Clone, Debug)]
pub struct EstuaryParams {
    /// Grid cells north-south.
    pub ny: usize,
    /// Grid cells east-west.
    pub nx: usize,
    /// Ocean depth at the west boundary (m).
    pub ocean_depth: f64,
    /// Typical estuary depth (m).
    pub estuary_depth: f64,
    /// Channel depth (m).
    pub channel_depth: f64,
    /// Fraction of `nx` where the barrier-island chain sits.
    pub barrier_pos: f64,
    /// Number of inlets through the barrier.
    pub n_inlets: usize,
    /// Inlet half-width in cells.
    pub inlet_halfwidth: usize,
    /// Number of river channels inside the estuary.
    pub n_channels: usize,
    /// Minimum wet depth (m) — cells shallower become land.
    pub min_depth: f64,
}

impl Default for EstuaryParams {
    fn default() -> Self {
        Self {
            ny: 96,
            nx: 64,
            ocean_depth: 12.0,
            estuary_depth: 2.5,
            channel_depth: 7.0,
            barrier_pos: 0.35,
            n_inlets: 3,
            inlet_halfwidth: 3,
            n_channels: 2,
            min_depth: 0.3,
        }
    }
}

/// Generated bathymetry: depth at rho points plus the land/sea mask.
#[derive(Clone, Debug)]
pub struct Bathymetry {
    /// Positive depth below the geoid (m) at rho points.
    pub h: Field2,
    /// 1.0 = water, 0.0 = land, at rho points.
    pub mask: Field2,
}

/// Deterministic smooth pseudo-noise in [-1, 1] for bathymetric texture.
fn texture(j: usize, i: usize) -> f64 {
    let x = i as f64 * 0.37 + j as f64 * 0.61;
    let y = i as f64 * 0.13 - j as f64 * 0.29;
    (x.sin() * y.cos() + (0.5 * x).cos() * (0.7 * y).sin()) * 0.5
}

/// Build the synthetic estuary.
pub fn generate(p: &EstuaryParams) -> Bathymetry {
    let (ny, nx) = (p.ny, p.nx);
    assert!(ny >= 16 && nx >= 16, "estuary needs at least 16x16 cells");
    let barrier_i = ((nx as f64) * p.barrier_pos) as usize;
    let mut h = Field2::new(ny, nx);
    let mut mask = Field2::new(ny, nx);

    // Inlet centers, spread evenly along the barrier.
    let inlet_centers: Vec<usize> = (0..p.n_inlets)
        .map(|k| ((k + 1) * ny) / (p.n_inlets + 1))
        .collect();
    // Channel rows: rivers run east-west at these j.
    let channel_rows: Vec<usize> = (0..p.n_channels)
        .map(|k| ((2 * k + 1) * ny) / (2 * p.n_channels))
        .collect();

    for j in 0..ny {
        for i in 0..nx {
            let (js, is_) = (j as isize, i as isize);
            let depth;
            let mut wet = true;

            if i < barrier_i {
                // Open ocean, shoaling toward the barrier.
                let t = i as f64 / barrier_i.max(1) as f64;
                depth = p.ocean_depth * (1.0 - 0.55 * t) + 0.4 * texture(j, i);
            } else if i < barrier_i + 2 {
                // Barrier island chain with inlets.
                let in_inlet = inlet_centers
                    .iter()
                    .any(|&c| j.abs_diff(c) <= p.inlet_halfwidth);
                if in_inlet {
                    depth = p.channel_depth; // scoured inlet throat
                } else {
                    depth = 0.0;
                    wet = false; // island
                }
            } else {
                // Estuary interior.
                let near_channel = channel_rows
                    .iter()
                    .map(|&c| j.abs_diff(c))
                    .min()
                    .unwrap_or(usize::MAX);
                let east = (i - barrier_i) as f64 / (nx - barrier_i) as f64;
                if near_channel <= 1 && i < nx - 2 {
                    // River channel, shoaling gently upstream.
                    depth = p.channel_depth * (1.0 - 0.4 * east);
                } else {
                    // Shallow flats shoaling toward the east shore.
                    depth = p.estuary_depth * (1.0 - 0.7 * east) + 0.25 * texture(j, i);
                }
            }

            // Lateral shores: top/bottom rows and east edge are land except
            // where a channel exits.
            let on_channel = channel_rows.iter().any(|&c| j.abs_diff(c) <= 1);
            if j < 2 || j >= ny - 2 || (i >= nx - 2 && !on_channel) {
                wet = false;
            }
            // West edge stays ocean (open boundary).
            if i < 2 {
                wet = true;
            }

            let d = if wet { depth.max(p.min_depth) } else { 0.0 };
            h.set(js, is_, d);
            mask.set(js, is_, if wet { 1.0 } else { 0.0 });
        }
    }

    // Halo: replicate edge values so kernels can read one cell outside.
    for j in -1..=(ny as isize) {
        let jj = j.clamp(0, ny as isize - 1);
        let hw = h.get(jj, 0);
        let he = h.get(jj, nx as isize - 1);
        h.set(j, -1, hw);
        h.set(j, nx as isize, he);
        mask.set(j, -1, mask.get(jj, 0));
        mask.set(j, nx as isize, mask.get(jj, nx as isize - 1));
    }
    for i in -1..=(nx as isize) {
        let ii = i.clamp(0, nx as isize - 1);
        h.set(-1, i, h.get(0, ii));
        h.set(ny as isize, i, h.get(ny as isize - 1, ii));
        mask.set(-1, i, mask.get(0, ii));
        mask.set(ny as isize, i, mask.get(ny as isize - 1, ii));
    }

    Bathymetry { h, mask }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_estuary_shape() {
        let b = generate(&EstuaryParams::default());
        assert_eq!(b.h.ny(), 96);
        assert_eq!(b.h.nx(), 64);
    }

    #[test]
    fn west_boundary_is_wet_ocean() {
        let p = EstuaryParams::default();
        let b = generate(&p);
        for j in 0..p.ny as isize {
            assert_eq!(b.mask.get(j, 0), 1.0, "west edge must be open ocean");
            assert!(b.h.get(j, 0) > 4.0, "ocean should be deep");
        }
    }

    #[test]
    fn barrier_has_land_and_inlets() {
        let p = EstuaryParams::default();
        let b = generate(&p);
        let bi = ((p.nx as f64) * p.barrier_pos) as isize;
        let col: Vec<f64> = (0..p.ny as isize).map(|j| b.mask.get(j, bi)).collect();
        let wet = col.iter().filter(|&&m| m == 1.0).count();
        let dry = col.iter().filter(|&&m| m == 0.0).count();
        assert!(dry > 0, "barrier must include land");
        assert!(wet > 0, "barrier must include inlets");
        // Roughly n_inlets * (2*halfwidth+1) wet cells.
        assert!(wet <= p.n_inlets * (2 * p.inlet_halfwidth + 2) + 2);
    }

    #[test]
    fn estuary_shallower_than_ocean() {
        let p = EstuaryParams::default();
        let b = generate(&p);
        let bi = ((p.nx as f64) * p.barrier_pos) as isize;
        // Average wet depth ocean side vs estuary side.
        let mut ocean = (0.0, 0);
        let mut est = (0.0, 0);
        for j in 0..p.ny as isize {
            for i in 0..p.nx as isize {
                if b.mask.get(j, i) == 1.0 {
                    if i < bi {
                        ocean = (ocean.0 + b.h.get(j, i), ocean.1 + 1);
                    } else if i > bi + 2 {
                        est = (est.0 + b.h.get(j, i), est.1 + 1);
                    }
                }
            }
        }
        let ocean_mean = ocean.0 / ocean.1 as f64;
        let est_mean = est.0 / est.1 as f64;
        assert!(
            ocean_mean > 2.0 * est_mean,
            "ocean {ocean_mean} should be much deeper than estuary {est_mean}"
        );
    }

    #[test]
    fn wet_cells_have_positive_depth() {
        let b = generate(&EstuaryParams::default());
        for j in 0..b.h.ny() as isize {
            for i in 0..b.h.nx() as isize {
                if b.mask.get(j, i) == 1.0 {
                    assert!(b.h.get(j, i) > 0.0);
                } else {
                    assert_eq!(b.h.get(j, i), 0.0);
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&EstuaryParams::default());
        let b = generate(&EstuaryParams::default());
        assert_eq!(a.h.max_abs_diff(&b.h), 0.0);
        assert_eq!(a.mask.max_abs_diff(&b.mask), 0.0);
    }

    #[test]
    fn scales_to_other_sizes() {
        let p = EstuaryParams {
            ny: 32,
            nx: 24,
            ..Default::default()
        };
        let b = generate(&p);
        assert_eq!(b.h.ny(), 32);
        assert_eq!(b.h.nx(), 24);
        // Still has wet cells on both sides of the barrier.
        assert!(b.mask.interior_sum() > 100.0);
    }
}
