//! Quantized inference: int8 / f16 weight tiers with a fused dequant GEMM.
//!
//! # Scheme
//!
//! **Weights** are quantized per *output channel* (column `j` of the
//! `[k, n]` linear weight), symmetric: `scale_j = max_i |W[i,j]| / 127`,
//! `qW[i,j] = round(W[i,j] / scale_j) ∈ [-127, 127]` as `i8`.
//!
//! **Activations** are quantized dynamically per *row* to **unsigned
//! 7-bit** with a fixed zero point of 64:
//! `s_r = max_i |x[r,i]| / 63`, `qx[r,i] = round(x[r,i]/s_r) + 64 ∈ [1, 127]`.
//! Capping the activation magnitude at 7 bits is what makes the AVX2
//! `vpmaddubsw` path exact: the instruction sums two adjacent
//! `u8 × i8` products into a *saturating* `i16`, and `127·127·2 = 32258`
//! fits where `255·127·2` would not. The integer accumulation is
//! therefore overflow-free and **bit-identical** between the scalar
//! oracle and the SIMD microkernels.
//!
//! On hosts with AVX-512 VNNI (detected at runtime), the inner product
//! uses `vpdpbusd`, which fuses multiply, widen, and i32 accumulate into
//! one instruction. Plain AVX2 needs a `vpmaddwd` after every
//! `vpmaddubsw`, and the two fight for the same two SIMD multiply ports
//! — capping int8 at roughly f32-FMA throughput; `vpdpbusd` is what
//! actually doubles the MAC rate. `vpdpbusd` wraps (no i16 saturation),
//! so it is exact for the full u8×i8 range and agrees bit-for-bit with
//! the scalar oracle and the `maddubs` path.
//!
//! **Epilogue** (fused dequant + bias): with `wsum_j = Σ_i qW[i,j]`,
//!
//! ```text
//! y[r,j] = (acc[r,j] − 64·wsum_j) as f32 · (s_r · scale_j) + bias_j
//! ```
//!
//! computed as one fused multiply-add in both paths, so the float
//! rounding also matches bit-for-bit.
//!
//! # Packed layout
//!
//! Weights are packed once at quantize time into `NR = 16`-column panels,
//! `KG = 4`-deep k-groups (the `maddubs` operand width): within panel `p`
//! and group `g`, the 64 bytes are `[col0 k0..k3, col1 k0..k3, …,
//! col15 k0..k3]`. `k` is zero-padded to a multiple of 4 and `n` to a
//! multiple of 16 (padded columns carry `scale = 1`, `wsum = 0` and are
//! never stored to the output). Both the scalar oracle and the AVX2
//! kernel read this same packed buffer.
//!
//! # Tiers
//!
//! [`QuantWeight::build`] runs a small deterministic calibration GEMM per
//! layer; a layer whose int8 relative error exceeds
//! [`INT8_TIER_THRESHOLD`] falls back to the f16 tier (f16 weights,
//! f32 accumulate via the regular backend matmul) — mirroring
//! selective-precision schemes where a handful of sensitive layers stay
//! in the higher tier.

use crate::f16::F16;
use crate::simd::SimdLevel;

/// Column-panel width of the packed int8 weight layout.
pub const NR: usize = 16;
/// K-group depth (one `maddubs` operand spans 4 bytes per column).
pub const KG: usize = 4;
/// Symmetric weight-code magnitude bound.
pub const W_MAX: i32 = 127;

/// Per-layer calibration gate: a layer whose int8 calibration GEMM shows
/// a larger max relative error than this falls back to the f16 tier.
pub const INT8_TIER_THRESHOLD: f32 = 0.03;

/// Numeric precision of an inference path.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash, Default)]
pub enum Precision {
    /// Full f32 weights and arithmetic (the training dtype).
    #[default]
    F32,
    /// f16 weights, f32 accumulate.
    F16,
    /// int8 weights + u7 dynamic activations, i32 accumulate, with
    /// per-layer f16 fallback when the calibration gate fails.
    Int8,
}

impl Precision {
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parse `"f32" | "f16" | "int8"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "int8" | "i8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `[k, n]` linear weight quantized to per-output-channel symmetric
/// codes in `[-W_MAX, W_MAX]` (stored as `i8`), packed into the panel
/// layout the GEMM microkernel consumes.
#[derive(Clone, Debug)]
pub struct QuantizedTensor {
    /// Logical input features (rows of the f32 weight).
    pub k: usize,
    /// Logical output features (columns of the f32 weight).
    pub n: usize,
    /// `k` rounded up to a multiple of [`KG`].
    pub kp: usize,
    /// `n` rounded up to a multiple of [`NR`].
    pub np: usize,
    /// Packed weight bytes: `np/NR` panels × `kp/KG` groups × 64 bytes.
    pub data: Vec<i8>,
    /// Per-column dequant scales, length `np` (padding columns get 1.0).
    pub scales: Vec<f32>,
    /// Per-column sums of the quantized weights, length `np` (padding 0).
    /// The epilogue subtracts `64·wsum_j` to undo the activation zero
    /// point.
    pub wsum: Vec<i32>,
}

impl QuantizedTensor {
    /// Quantize a row-major `[k, n]` f32 weight.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "weight slice does not match [k, n]");
        let kp = k.next_multiple_of(KG);
        let np = n.next_multiple_of(NR);
        let groups = kp / KG;
        let mut scales = vec![1.0f32; np];
        let mut wsum = vec![0i32; np];
        let mut data = vec![0i8; (np / NR) * groups * KG * NR];

        for j in 0..n {
            let mut maxabs = 0.0f32;
            for i in 0..k {
                maxabs = maxabs.max(w[i * n + j].abs());
            }
            let s = if maxabs > 0.0 {
                maxabs / W_MAX as f32
            } else {
                1.0
            };
            scales[j] = s;
            let p = j / NR;
            let j2 = j % NR;
            let panel = p * groups * KG * NR;
            let mut sum = 0i32;
            for i in 0..k {
                let q = (w[i * n + j] / s)
                    .round_ties_even()
                    .clamp(-(W_MAX as f32), W_MAX as f32) as i8;
                sum += q as i32;
                let (g, t) = (i / KG, i % KG);
                data[panel + g * KG * NR + j2 * KG + t] = q;
            }
            wsum[j] = sum;
        }
        Self {
            k,
            n,
            kp,
            np,
            data,
            scales,
            wsum,
        }
    }

    /// Reconstruct the row-major `[k, n]` f32 weight (with quantization
    /// error) — test/debug helper.
    pub fn dequantize(&self) -> Vec<f32> {
        let groups = self.kp / KG;
        let mut out = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            let (p, j2) = (j / NR, j % NR);
            let panel = p * groups * KG * NR;
            for i in 0..self.k {
                let (g, t) = (i / KG, i % KG);
                let q = self.data[panel + g * KG * NR + j2 * KG + t];
                out[i * self.n + j] = q as f32 * self.scales[j];
            }
        }
        out
    }

    /// Heap bytes of the packed representation.
    pub fn nbytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.wsum.len() * 4
    }
}

/// A `[k, n]` weight stored as f16, decompressed to f32 per forward.
#[derive(Clone, Debug)]
pub struct F16Weight {
    pub k: usize,
    pub n: usize,
    pub data: Vec<F16>,
}

impl F16Weight {
    pub fn compress(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "weight slice does not match [k, n]");
        Self {
            k,
            n,
            data: crate::f16::compress(w),
        }
    }

    /// Decompress to row-major f32.
    pub fn decompress(&self) -> Vec<f32> {
        crate::f16::decompress(&self.data)
    }

    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }
}

/// A quantized weight at one of the reduced-precision tiers.
#[derive(Clone, Debug)]
pub enum QuantWeight {
    Int8(QuantizedTensor),
    F16(F16Weight),
}

impl QuantWeight {
    /// Build the weight representation for `precision`.
    ///
    /// `Precision::Int8` runs the per-layer calibration gate
    /// ([`select_tier`]) and may come back as the f16 tier;
    /// `Precision::F16` always compresses to f16. `Precision::F32` is
    /// the identity path and never reaches here.
    pub fn build(w: &[f32], k: usize, n: usize, precision: Precision) -> Self {
        match precision {
            Precision::F32 => panic!("QuantWeight::build called for f32"),
            Precision::F16 => QuantWeight::F16(F16Weight::compress(w, k, n)),
            Precision::Int8 => select_tier(w, k, n, INT8_TIER_THRESHOLD).0,
        }
    }

    pub fn tier(&self) -> &'static str {
        match self {
            QuantWeight::Int8(_) => "int8",
            QuantWeight::F16(_) => "f16",
        }
    }

    pub fn nbytes(&self) -> usize {
        match self {
            QuantWeight::Int8(q) => q.nbytes(),
            QuantWeight::F16(f) => f.nbytes(),
        }
    }
}

/// Per-layer tier selection: quantize to int8, run a small deterministic
/// calibration GEMM against the f32 reference, and fall back to f16 when
/// the max relative error exceeds `threshold`.
///
/// Returns the chosen tier and the measured int8 relative error.
pub fn select_tier(w: &[f32], k: usize, n: usize, threshold: f32) -> (QuantWeight, f32) {
    let q = QuantizedTensor::quantize(w, k, n);
    let m = 16usize;
    // Deterministic LCG calibration input in [-1, 1] — no RNG dependency,
    // same probe on every host.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut x = vec![0.0f32; m * k];
    for v in x.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0;
    }
    // f32 reference.
    let mut y_ref = vec![0.0f32; m * n];
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for i in 0..k {
                acc += x[r * k + i] * w[i * n + j];
            }
            y_ref[r * n + j] = acc;
        }
    }
    // int8 path (scalar oracle).
    let acts = quantize_acts(&x, m, k);
    let mut y_q = vec![0.0f32; m * n];
    qgemm(SimdLevel::Scalar, &acts, &q, None, &mut y_q, false);

    let mut max_ref = 0.0f32;
    let mut max_err = 0.0f32;
    for (a, b) in y_ref.iter().zip(&y_q) {
        max_ref = max_ref.max(a.abs());
        max_err = max_err.max((a - b).abs());
    }
    let rel = max_err / max_ref.max(1e-12);
    if rel <= threshold {
        cobs::counter!("quant.tier.int8").inc();
        (QuantWeight::Int8(q), rel)
    } else {
        cobs::counter!("quant.tier.f16_fallback").inc();
        (QuantWeight::F16(F16Weight::compress(w, k, n)), rel)
    }
}

/// Dynamically quantized activations: `[m, kp]` u8 rows (zero point 64)
/// plus one dequant scale per row.
#[derive(Clone, Debug)]
pub struct QuantActs {
    pub m: usize,
    pub k: usize,
    /// `k` rounded up to a multiple of [`KG`]; rows are padded with the
    /// byte 0 (the matching padded weight rows are 0, so padding
    /// contributes nothing).
    pub kp: usize,
    pub data: Vec<u8>,
    pub scales: Vec<f32>,
}

/// Quantize a row-major `[m, k]` activation block to u7-with-zero-point-64
/// rows. This is O(m·k) against the GEMM's O(m·k·n), but at serving batch
/// sizes a scalar encode costs more than the VNNI GEMM itself, so the hot
/// loop is vectorized on AVX2 hosts; the scalar path is the oracle and
/// both produce identical bytes (tested bitwise).
pub fn quantize_acts(x: &[f32], m: usize, k: usize) -> QuantActs {
    assert_eq!(x.len(), m * k, "activation slice does not match [m, k]");
    let kp = k.next_multiple_of(KG);
    let mut data = vec![0u8; m * kp];
    let mut scales = vec![1.0f32; m];
    #[cfg(target_arch = "x86_64")]
    if crate::simd::level() == SimdLevel::Avx2Fma {
        unsafe { avx2_acts::quantize_rows(x, m, k, kp, &mut data, &mut scales) };
        return QuantActs {
            m,
            k,
            kp,
            data,
            scales,
        };
    }
    quantize_acts_scalar(x, m, k, kp, &mut data, &mut scales);
    QuantActs {
        m,
        k,
        kp,
        data,
        scales,
    }
}

/// Scalar activation-encode oracle. The rounded code is clamped in the
/// *float* domain (`[-63, 63]`) before conversion so pathological scales
/// (subnormal row maxima) stay in byte range on every path; NaN falls
/// through `as i32` to 0 → the zero point → decodes to 0.
fn quantize_acts_scalar(
    x: &[f32],
    m: usize,
    k: usize,
    kp: usize,
    data: &mut [u8],
    scales: &mut [f32],
) {
    for r in 0..m {
        let row = &x[r * k..(r + 1) * k];
        let mut maxabs = 0.0f32;
        for &v in row {
            maxabs = maxabs.max(v.abs());
        }
        let s = if maxabs > 0.0 { maxabs / 63.0 } else { 1.0 };
        let inv = 1.0 / s;
        let out = &mut data[r * kp..r * kp + k];
        for (o, &v) in out.iter_mut().zip(row) {
            let q = (v * inv).round_ties_even().clamp(-63.0, 63.0) as i32 + 64;
            *o = q as u8;
        }
        scales[r] = s;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2_acts {
    //! Vectorized activation encode: per row, an 8-wide `|v|` max
    //! reduction (exact — max is order-free), then a 32-wide
    //! multiply → round → clamp → convert → pack pipeline. Every float
    //! op (`mulps`, `roundps` nearest-even, min/max clamp ordered to
    //! propagate NaN like `f32::clamp`, exact in-range `cvtps`) mirrors
    //! the scalar oracle operation-for-operation, so the emitted codes
    //! are bit-identical.

    use core::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2+FMA (checked by the caller). `data` is `m × kp`
    /// zero-initialized, `scales` is length `m`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn quantize_rows(
        x: &[f32],
        m: usize,
        k: usize,
        kp: usize,
        data: &mut [u8],
        scales: &mut [f32],
    ) {
        let sign = _mm256_set1_ps(-0.0);
        let lo = _mm256_set1_ps(-63.0);
        let hi = _mm256_set1_ps(63.0);
        let zp = _mm256_set1_epi32(64);
        // Dword shuffle undoing the 128-bit-lane interleave of
        // packs_epi32 + packus_epi16.
        let unlane = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        for r in 0..m {
            let row = &x[r * k..(r + 1) * k];
            let mut acc = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= k {
                let a = _mm256_andnot_ps(sign, _mm256_loadu_ps(row.as_ptr().add(i)));
                // maxps returns the second operand on NaN — matching
                // f32::max(acc, NaN) == acc.
                acc = _mm256_max_ps(a, acc);
                i += 8;
            }
            let mut tmp = [0.0f32; 8];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
            let mut maxabs = tmp.iter().fold(0.0f32, |a, &t| a.max(t));
            while i < k {
                maxabs = maxabs.max(row[i].abs());
                i += 1;
            }
            let s = if maxabs > 0.0 { maxabs / 63.0 } else { 1.0 };
            let inv = 1.0 / s;
            scales[r] = s;

            let out = &mut data[r * kp..r * kp + k];
            let vinv = _mm256_set1_ps(inv);
            let code8 = |off: usize| -> __m256i {
                let t = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(off)), vinv);
                let rr = _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
                // min(hi, max(lo, rr)): NaN rides through in the second
                // operand, exactly like f32::clamp.
                let c = _mm256_min_ps(hi, _mm256_max_ps(lo, rr));
                let ord = _mm256_castps_si256(_mm256_cmp_ps(c, c, _CMP_ORD_Q));
                // cvt is exact on the clamped range; NaN lanes (cvt →
                // i32::MIN) are zeroed by the ordered mask → zero point.
                _mm256_add_epi32(_mm256_and_si256(_mm256_cvtps_epi32(c), ord), zp)
            };
            let mut i = 0usize;
            while i + 32 <= k {
                let p01 = _mm256_packs_epi32(code8(i), code8(i + 8));
                let p23 = _mm256_packs_epi32(code8(i + 16), code8(i + 24));
                // Codes are already in [0, 127]; the packs are pure
                // narrowing, never saturation.
                let b = _mm256_permutevar8x32_epi32(_mm256_packus_epi16(p01, p23), unlane);
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, b);
                i += 32;
            }
            for (o, &v) in out[i..].iter_mut().zip(&row[i..]) {
                let q = (v * inv).round_ties_even().clamp(-63.0, 63.0) as i32 + 64;
                *o = q as u8;
            }
        }
    }
}

/// Fused int8 GEMM + dequant + bias: `out[m, n] = dequant(qx · qW) + bias`.
///
/// `parallel` fans independent 4-row blocks across rayon; the integer
/// accumulation is exact and the epilogue is per-element, so outputs are
/// bitwise identical at any thread count and at either SIMD level.
pub fn qgemm(
    level: SimdLevel,
    acts: &QuantActs,
    w: &QuantizedTensor,
    bias: Option<&[f32]>,
    out: &mut [f32],
    parallel: bool,
) {
    assert_eq!(acts.kp, w.kp, "activation/weight K mismatch");
    assert_eq!(acts.k, w.k, "activation/weight k mismatch");
    assert_eq!(out.len(), acts.m * w.n, "output buffer mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), w.n, "bias length mismatch");
    }
    let m = acts.m;
    let n = w.n;
    if m == 0 || n == 0 {
        return;
    }
    // Padded bias so the 8-wide epilogue never reads past `n`.
    let mut bias_p = vec![0.0f32; w.np];
    if let Some(b) = bias {
        bias_p[..n].copy_from_slice(b);
    }

    if parallel {
        use rayon::prelude::*;
        out.par_chunks_mut(4 * n).enumerate().for_each(|(blk, o)| {
            let r0 = blk * 4;
            let r1 = (r0 + 4).min(m);
            qgemm_rows(level, acts, w, &bias_p, r0, r1, o);
        });
    } else {
        qgemm_rows(level, acts, w, &bias_p, 0, m, out);
    }
}

/// Rows `[r0, r1)` of the GEMM; `out` is that row range, `(r1-r0) * n`.
fn qgemm_rows(
    level: SimdLevel,
    acts: &QuantActs,
    w: &QuantizedTensor,
    bias_p: &[f32],
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    let mut r = r0;
    while r < r1 {
        let mr = (r1 - r).min(4);
        let rows_out = &mut out[(r - r0) * w.n..(r - r0 + mr) * w.n];
        match level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2Fma => unsafe {
                if vnni_available() {
                    vnni::qgemm_block(acts, w, bias_p, r, mr, rows_out);
                } else {
                    avx2::qgemm_block(acts, w, bias_p, r, mr, rows_out);
                }
            },
            _ => qgemm_block_scalar(acts, w, bias_p, r, mr, rows_out),
        }
        r += mr;
    }
}

/// Scalar oracle for one ≤4-row block. Reads the same packed panel bytes
/// as the AVX2 kernel and uses the same fused epilogue expression, so the
/// two paths agree bit-for-bit.
fn qgemm_block_scalar(
    acts: &QuantActs,
    w: &QuantizedTensor,
    bias_p: &[f32],
    r0: usize,
    mr: usize,
    out: &mut [f32],
) {
    let groups = w.kp / KG;
    let panel_stride = groups * KG * NR;
    for dr in 0..mr {
        let r = r0 + dr;
        let qrow = &acts.data[r * acts.kp..(r + 1) * acts.kp];
        let sa = acts.scales[r];
        for p in 0..w.np / NR {
            let panel = &w.data[p * panel_stride..(p + 1) * panel_stride];
            for j2 in 0..NR {
                let j = p * NR + j2;
                if j >= w.n {
                    break;
                }
                let mut acc = 0i32;
                for g in 0..groups {
                    let a = &qrow[g * KG..g * KG + KG];
                    let b = &panel[g * KG * NR + j2 * KG..g * KG * NR + j2 * KG + KG];
                    for t in 0..KG {
                        acc += a[t] as i32 * b[t] as i32;
                    }
                }
                let c = (acc - 64 * w.wsum[j]) as f32;
                out[dr * w.n + j] = c.mul_add(sa * w.scales[j], bias_p[j]);
            }
        }
    }
}

/// Whether the `vpdpbusd` microkernel is usable on this host. Cached:
/// the qgemm dispatch is on the per-block hot path.
#[cfg(target_arch = "x86_64")]
fn vnni_available() -> bool {
    static V: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *V.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512vnni")
            && std::arch::is_x86_feature_detected!("avx512vl")
    })
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 i8×u8→i32 microkernel: 4 rows × 16-column panels.
    //!
    //! Per k-group of 4, each row broadcasts its 4 activation bytes to
    //! every 32-bit lane (`vpbroadcastd`); `vpmaddubsw` multiplies them
    //! against the packed weight bytes (u8 × i8 → paired i16 sums —
    //! exact, because activations are capped at 127) and `vpmaddwd`
    //! widens each i16 pair into the i32 accumulators. 8 accumulator
    //! registers (4 rows × 2 column halves) stay resident across the
    //! whole K loop, and each 64-byte weight group is loaded once and
    //! shared by all 4 rows.

    use super::{QuantActs, QuantizedTensor, KG, NR};
    use core::arch::x86_64::*;

    /// One ≤4-row × all-panels block, rows starting at `r0`; `out` is the
    /// `mr × n` output rows.
    ///
    /// # Safety
    /// Requires AVX2+FMA (checked by the caller's dispatch level).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn qgemm_block(
        acts: &QuantActs,
        w: &QuantizedTensor,
        bias_p: &[f32],
        r0: usize,
        mr: usize,
        out: &mut [f32],
    ) {
        debug_assert!((1..=4).contains(&mr));
        let groups = w.kp / KG;
        let panel_stride = groups * KG * NR;
        let ones = _mm256_set1_epi16(1);

        for p in 0..w.np / NR {
            let panel = w.data.as_ptr().add(p * panel_stride) as *const u8;
            let mut acc = [[_mm256_setzero_si256(); 2]; 4];
            for g in 0..groups {
                let b0 = _mm256_loadu_si256(panel.add(g * KG * NR) as *const __m256i);
                let b1 = _mm256_loadu_si256(panel.add(g * KG * NR + 32) as *const __m256i);
                for (dr, acc_r) in acc.iter_mut().enumerate().take(mr) {
                    let arow = acts.data.as_ptr().add((r0 + dr) * acts.kp + g * KG);
                    let a = _mm256_set1_epi32((arow as *const i32).read_unaligned());
                    acc_r[0] = _mm256_add_epi32(
                        acc_r[0],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(a, b0), ones),
                    );
                    acc_r[1] = _mm256_add_epi32(
                        acc_r[1],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(a, b1), ones),
                    );
                }
            }
            super::x86_epilogue(acts, w, bias_p, r0, mr, out, p, &acc);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod vnni {
    //! AVX-512-VNNI variant of the microkernel (256-bit registers via
    //! AVX512VL): `vpdpbusd` fuses the u8×i8 multiply, the widening, and
    //! the i32 accumulate into one instruction. The plain-AVX2 path needs
    //! `vpmaddubsw` + `vpmaddwd`, which contend for the same two SIMD
    //! multiply ports and cap int8 at roughly f32-FMA throughput; one
    //! `vpdpbusd` per 32 MACs is what delivers the ≥2× win over f32.
    //! `vpdpbusd` accumulates in full i32 (no i16 saturation anywhere),
    //! so the result is bit-identical to the scalar oracle and to the
    //! `maddubs` path.

    use super::{QuantActs, QuantizedTensor, KG, NR};
    use core::arch::x86_64::*;

    /// One ≤4-row × all-panels block, rows starting at `r0`; `out` is the
    /// `mr × n` output rows.
    ///
    /// # Safety
    /// Requires AVX2+FMA+AVX512VNNI+AVX512VL (checked by
    /// [`super::vnni_available`] at dispatch).
    #[target_feature(enable = "avx2,fma,avx512vnni,avx512vl")]
    pub unsafe fn qgemm_block(
        acts: &QuantActs,
        w: &QuantizedTensor,
        bias_p: &[f32],
        r0: usize,
        mr: usize,
        out: &mut [f32],
    ) {
        debug_assert!((1..=4).contains(&mr));
        let groups = w.kp / KG;
        let panel_stride = groups * KG * NR;

        for p in 0..w.np / NR {
            let panel = w.data.as_ptr().add(p * panel_stride) as *const u8;
            let mut acc = [[_mm256_setzero_si256(); 2]; 4];
            for g in 0..groups {
                let b0 = _mm256_loadu_si256(panel.add(g * KG * NR) as *const __m256i);
                let b1 = _mm256_loadu_si256(panel.add(g * KG * NR + 32) as *const __m256i);
                for (dr, acc_r) in acc.iter_mut().enumerate().take(mr) {
                    let arow = acts.data.as_ptr().add((r0 + dr) * acts.kp + g * KG);
                    let a = _mm256_set1_epi32((arow as *const i32).read_unaligned());
                    acc_r[0] = _mm256_dpbusd_epi32(acc_r[0], a, b0);
                    acc_r[1] = _mm256_dpbusd_epi32(acc_r[1], a, b1);
                }
            }
            super::x86_epilogue(acts, w, bias_p, r0, mr, out, p, &acc);
        }
    }
}

/// Fused dequant + bias epilogue shared by the x86 microkernels:
/// `(acc − 64·wsum) · (s_r·s_j) + b` for one panel's 4×2 accumulators,
/// with a masked tail store on the last ragged panel.
///
/// # Safety
/// Requires AVX2+FMA; `acc` holds panel `p`'s accumulators for rows
/// `r0..r0+mr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn x86_epilogue(
    acts: &QuantActs,
    w: &QuantizedTensor,
    bias_p: &[f32],
    r0: usize,
    mr: usize,
    out: &mut [f32],
    p: usize,
    acc: &[[core::arch::x86_64::__m256i; 2]; 4],
) {
    use core::arch::x86_64::*;
    let n = w.n;
    for (dr, acc_r) in acc.iter().enumerate().take(mr) {
        let sa = _mm256_set1_ps(acts.scales[r0 + dr]);
        for (h, &acc_h) in acc_r.iter().enumerate() {
            let j0 = p * NR + h * 8;
            let wsum = _mm256_loadu_si256(w.wsum.as_ptr().add(j0) as *const __m256i);
            let corr = _mm256_sub_epi32(acc_h, _mm256_slli_epi32(wsum, 6));
            let c = _mm256_cvtepi32_ps(corr);
            let sj = _mm256_loadu_ps(w.scales.as_ptr().add(j0));
            let bv = _mm256_loadu_ps(bias_p.as_ptr().add(j0));
            let y = _mm256_fmadd_ps(c, _mm256_mul_ps(sa, sj), bv);
            if j0 + 8 <= n {
                _mm256_storeu_ps(out.as_mut_ptr().add(dr * n + j0), y);
            } else if j0 < n {
                let mut tmp = [0.0f32; 8];
                _mm256_storeu_ps(tmp.as_mut_ptr(), y);
                out[dr * n + j0..dr * n + n].copy_from_slice(&tmp[..n - j0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_vec(n: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                lo + ((state >> 40) as f32 / (1u64 << 24) as f32) * (hi - lo)
            })
            .collect()
    }

    /// Reference f32 matmul for error bounds.
    fn matmul_ref(x: &[f32], w: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut y = vec![0.0f32; m * n];
        for r in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for i in 0..k {
                    acc += x[r * k + i] * w[i * n + j];
                }
                y[r * n + j] = acc;
            }
        }
        y
    }

    #[test]
    fn weight_roundtrip_error_bounded() {
        let (k, n) = (37, 19);
        let w = lcg_vec(k * n, 7, -2.0, 2.0);
        let q = QuantizedTensor::quantize(&w, k, n);
        let wd = q.dequantize();
        for j in 0..n {
            let maxabs = (0..k).fold(0.0f32, |a, i| a.max(w[i * n + j].abs()));
            for i in 0..k {
                let err = (w[i * n + j] - wd[i * n + j]).abs();
                // Symmetric ±W_MAX codes: error ≤ half a quantization step.
                assert!(
                    err <= maxabs / W_MAX as f32 * 0.5 + 1e-7,
                    "col {j} row {i}: err {err} vs step {}",
                    maxabs / W_MAX as f32
                );
            }
        }
    }

    #[test]
    fn act_quantization_zero_point_and_range() {
        let x = vec![0.0, 1.0, -1.0, 0.5, -0.25, 63.0, -63.0, 0.0];
        let acts = quantize_acts(&x, 2, 4);
        assert_eq!(acts.kp, 4);
        // All bytes within [0, 127]; zero maps to the zero point 64.
        assert!(acts.data.iter().all(|&b| b <= 127));
        assert_eq!(acts.data[0], 64);
        // Row of all zeros gets scale 1.0.
        let z = quantize_acts(&[0.0; 8], 2, 4);
        assert_eq!(z.scales, vec![1.0, 1.0]);
        assert!(z.data.iter().all(|&b| b == 64));
    }

    #[test]
    fn qgemm_matches_f32_within_bound() {
        for &(m, k, n) in &[(1, 8, 4), (5, 37, 19), (16, 96, 288), (3, 4, 16)] {
            let x = lcg_vec(m * k, 11, -1.5, 1.5);
            let w = lcg_vec(k * n, 13, -0.8, 0.8);
            let bias = lcg_vec(n, 17, -0.5, 0.5);
            let y_ref = {
                let mut y = matmul_ref(&x, &w, m, k, n);
                for r in 0..m {
                    for j in 0..n {
                        y[r * n + j] += bias[j];
                    }
                }
                y
            };
            let q = QuantizedTensor::quantize(&w, k, n);
            let acts = quantize_acts(&x, m, k);
            let mut y = vec![0.0f32; m * n];
            qgemm(SimdLevel::Scalar, &acts, &q, Some(&bias), &mut y, false);
            let max_ref = y_ref.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            for (a, b) in y_ref.iter().zip(&y) {
                assert!(
                    (a - b).abs() <= 0.02 * max_ref.max(1.0),
                    "({m},{k},{n}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn avx2_matches_scalar_bitwise() {
        if crate::simd::level() != SimdLevel::Avx2Fma {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        // Hostile shapes: ragged k (groups padding), ragged n (panel
        // padding + masked store), row tails at every mr in 1..=4.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 5),
            (4, 4, 16),
            (5, 7, 17),
            (6, 96, 288),
            (9, 33, 31),
            (16, 13, 40),
        ] {
            let x = lcg_vec(m * k, 23, -3.0, 3.0);
            let w = lcg_vec(k * n, 29, -1.0, 1.0);
            let bias = lcg_vec(n, 31, -0.5, 0.5);
            let q = QuantizedTensor::quantize(&w, k, n);
            let acts = quantize_acts(&x, m, k);
            let mut y_s = vec![0.0f32; m * n];
            let mut y_v = vec![0.0f32; m * n];
            qgemm(SimdLevel::Scalar, &acts, &q, Some(&bias), &mut y_s, false);
            qgemm(SimdLevel::Avx2Fma, &acts, &q, Some(&bias), &mut y_v, false);
            assert_eq!(
                y_s.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n}) scalar vs avx2 not bitwise"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn quantize_acts_simd_matches_scalar_bitwise() {
        if crate::simd::level() != SimdLevel::Avx2Fma {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        // Ragged k around both the 8-wide max loop and the 32-wide encode
        // loop, plus special values (zero rows, subnormals, huge spread).
        for &(m, k) in &[
            (1, 1),
            (3, 7),
            (5, 31),
            (4, 96),
            (2, 100),
            (7, 33),
            (1, 256),
        ] {
            let mut x = lcg_vec(m * k, 53, -40.0, 40.0);
            if m > 1 {
                for v in &mut x[k..2 * k] {
                    *v = 0.0; // all-zero row → scale 1.0, all codes 64
                }
            }
            x[0] = 1e-40; // subnormal
            let q_simd = quantize_acts(&x, m, k);
            let kp = k.next_multiple_of(KG);
            let mut data = vec![0u8; m * kp];
            let mut scales = vec![1.0f32; m];
            super::quantize_acts_scalar(&x, m, k, kp, &mut data, &mut scales);
            assert_eq!(q_simd.data, data, "({m},{k}) codes differ");
            assert_eq!(
                q_simd
                    .scales
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                scales.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k}) scales differ"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vnni_matches_maddubs_bitwise() {
        if crate::simd::level() != SimdLevel::Avx2Fma || !super::vnni_available() {
            eprintln!("skipping: no AVX-512 VNNI on this host");
            return;
        }
        // `qgemm` auto-dispatches to the vpdpbusd kernel here; drive the
        // maddubs kernel directly so both SIMD paths are pinned against
        // each other (avx2_matches_scalar_bitwise covers scalar vs auto).
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 17), (6, 96, 288), (16, 13, 40)] {
            let x = lcg_vec(m * k, 23, -3.0, 3.0);
            let w = lcg_vec(k * n, 29, -1.0, 1.0);
            let bias = lcg_vec(n, 31, -0.5, 0.5);
            let q = QuantizedTensor::quantize(&w, k, n);
            let acts = quantize_acts(&x, m, k);
            let mut bias_p = vec![0.0f32; q.np];
            bias_p[..n].copy_from_slice(&bias);
            let mut y_vnni = vec![0.0f32; m * n];
            qgemm(
                SimdLevel::Avx2Fma,
                &acts,
                &q,
                Some(&bias),
                &mut y_vnni,
                false,
            );
            let mut y_maddubs = vec![0.0f32; m * n];
            let mut r = 0;
            while r < m {
                let mr = (m - r).min(4);
                unsafe {
                    super::avx2::qgemm_block(
                        &acts,
                        &q,
                        &bias_p,
                        r,
                        mr,
                        &mut y_maddubs[r * n..(r + mr) * n],
                    );
                }
                r += mr;
            }
            assert_eq!(
                y_vnni.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_maddubs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n}) vnni vs maddubs not bitwise"
            );
        }
    }

    #[test]
    fn qgemm_parallel_is_bitwise_invariant() {
        let (m, k, n) = (33, 48, 20);
        let x = lcg_vec(m * k, 41, -2.0, 2.0);
        let w = lcg_vec(k * n, 43, -1.0, 1.0);
        let q = QuantizedTensor::quantize(&w, k, n);
        let acts = quantize_acts(&x, m, k);
        let mut y_serial = vec![0.0f32; m * n];
        let mut y_par = vec![0.0f32; m * n];
        let level = crate::simd::level();
        qgemm(level, &acts, &q, None, &mut y_serial, false);
        qgemm(level, &acts, &q, None, &mut y_par, true);
        assert_eq!(
            y_serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_par.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tier_selection_falls_back_on_pathological_weights() {
        // A well-behaved weight stays int8.
        let w = lcg_vec(32 * 16, 51, -1.0, 1.0);
        let (tier, rel) = select_tier(&w, 32, 16, INT8_TIER_THRESHOLD);
        assert_eq!(tier.tier(), "int8", "rel err {rel}");
        // A column with one huge outlier crushes the scale of everything
        // else in that channel → calibration error blows past the gate.
        let mut w_bad = w.clone();
        for i in 0..32 {
            // Tiny signal everywhere...
            w_bad[i * 16] = 1e-4 * (i as f32 - 16.0);
        }
        w_bad[16] = 1e4; // ...one enormous outlier in the same column.
        let (_, rel_bad) = select_tier(&w_bad, 32, 16, INT8_TIER_THRESHOLD);
        assert!(rel_bad > 0.0);
        let (tier_forced, _) = select_tier(&w_bad, 32, 16, 0.0);
        assert_eq!(tier_forced.tier(), "f16");
    }

    #[test]
    fn f16_weight_roundtrip() {
        let w = lcg_vec(24 * 12, 61, -4.0, 4.0);
        let fw = F16Weight::compress(&w, 24, 12);
        let wd = fw.decompress();
        for (a, b) in w.iter().zip(&wd) {
            assert!((a - b).abs() <= a.abs() * 1.0 / 1024.0 + 1e-6);
        }
        assert_eq!(fw.nbytes(), 24 * 12 * 2);
    }

    #[test]
    fn precision_parse_roundtrip() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            assert_eq!(Precision::parse(p.as_str()), Some(p));
        }
        assert_eq!(Precision::parse("bf16"), None);
    }
}
