//! Normalization layers: LayerNorm (last axis) and BatchNorm (channel axis).

use std::cell::RefCell;
use std::rc::Rc;

use super::Module;
use crate::autograd::{Graph, Param, Var};
use crate::tensor::Tensor;

/// Layer normalization over the last axis with affine parameters.
#[derive(Clone)]
pub struct LayerNorm {
    pub gamma: Param, // [dim]
    pub beta: Param,  // [dim]
    pub eps: f32,
    dim: usize,
}

impl LayerNorm {
    pub fn new(name: &str, dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
            dim,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        assert_eq!(
            *g.value(x).shape().last().unwrap(),
            self.dim,
            "layernorm dim mismatch"
        );
        let normed = g.layer_norm(x, self.eps);
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        let scaled = g.mul(normed, gamma);
        g.add(scaled, beta)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        out.push(self.gamma.clone());
        out.push(self.beta.clone());
    }
}

/// Batch normalization over axis 1 (layout `(N, C, …)`), with running
/// statistics for inference — used by the surrogate's decoder.
#[derive(Clone)]
pub struct BatchNorm {
    pub gamma: Param, // [C]
    pub beta: Param,  // [C]
    pub eps: f32,
    pub momentum: f32,
    channels: usize,
    running: Rc<RefCell<RunningStats>>,
}

struct RunningStats {
    mean: Tensor, // [C]
    var: Tensor,  // [C]
    initialized: bool,
}

impl BatchNorm {
    pub fn new(name: &str, channels: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            eps: 1e-5,
            momentum: 0.1,
            channels,
            running: Rc::new(RefCell::new(RunningStats {
                mean: Tensor::zeros(&[channels]),
                var: Tensor::ones(&[channels]),
                initialized: false,
            })),
        }
    }

    /// Running mean/var snapshot (for tests and serialization).
    pub fn running_stats(&self) -> (Tensor, Tensor) {
        let r = self.running.borrow();
        (r.mean.clone(), r.var.clone())
    }

    /// Restore running statistics captured by [`Self::running_stats`] —
    /// the buffer half of model serialization (`state_dict` carries only
    /// trainable parameters). Marks the stats initialized so subsequent
    /// training updates blend rather than overwrite.
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.shape(), &[self.channels], "running mean shape");
        assert_eq!(var.shape(), &[self.channels], "running var shape");
        let mut r = self.running.borrow_mut();
        r.mean = mean;
        r.var = var;
        r.initialized = true;
    }

    /// Shape `[1, C, 1, 1, …]` used to broadcast per-channel tensors
    /// against an `(N, C, …)` input of rank `nd`.
    fn bshape(&self, nd: usize) -> Vec<usize> {
        let mut s = vec![1; nd];
        s[1] = self.channels;
        s
    }
}

impl Module for BatchNorm {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.value(x).shape().to_vec();
        assert!(
            shape.len() >= 2 && shape[1] == self.channels,
            "batchnorm expects (N, C={}, …), got {:?}",
            self.channels,
            shape
        );
        let nd = shape.len();
        let reduce_axes: Vec<usize> = (0..nd).filter(|&a| a != 1).collect();
        let bshape = self.bshape(nd);

        let (centered, inv_std) = if g.training {
            // Batch statistics on the tape (differentiable).
            let mu = g.mean_axes_keepdims(x, &reduce_axes);
            let centered = g.sub(x, mu);
            let sq = g.square(centered);
            let var = g.mean_axes_keepdims(sq, &reduce_axes);
            let var_eps = g.add_scalar(var, self.eps);
            let inv_std = g.rsqrt(var_eps);

            // Update running stats (off-tape side effect).
            let mu_t = g.value(mu).reshaped(&[self.channels]);
            let var_t = g.value(var).reshaped(&[self.channels]);
            let mut r = self.running.borrow_mut();
            if r.initialized {
                let m = self.momentum;
                r.mean = r.mean.scale(1.0 - m).add(&mu_t.scale(m));
                r.var = r.var.scale(1.0 - m).add(&var_t.scale(m));
            } else {
                r.mean = mu_t;
                r.var = var_t;
                r.initialized = true;
            }
            (centered, inv_std)
        } else {
            // Running statistics as constants.
            let r = self.running.borrow();
            let mu = g.constant(r.mean.reshaped(&bshape));
            let inv = r.var.add_scalar(self.eps).rsqrt().reshaped(&bshape);
            drop(r);
            let inv_std = g.constant(inv);
            let centered = g.sub(x, mu);
            (centered, inv_std)
        };

        let normed = g.mul(centered, inv_std);
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        let gamma_b = g.reshape(gamma, &bshape);
        let beta_b = g.reshape(beta, &bshape);
        let scaled = g.mul(normed, gamma_b);
        g.add(scaled, beta_b)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        out.push(self.gamma.clone());
        out.push(self.beta.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new("ln", 8);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::from_vec(
            (0..16).map(|i| i as f32 * 3.0 - 7.0).collect(),
            &[2, 8],
        ));
        let y = ln.forward(&mut g, x);
        let yv = g.value(y);
        for r in 0..2 {
            let row: Vec<f32> = (0..8).map(|c| yv.at(&[r, c])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_affine_applied() {
        let ln = LayerNorm::new("ln", 2);
        ln.gamma.set_value(Tensor::from_vec(vec![2.0, 2.0], &[2]));
        ln.beta.set_value(Tensor::from_vec(vec![10.0, 10.0], &[2]));
        let mut g = Graph::inference();
        let x = g.constant(Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]));
        let y = ln.forward(&mut g, x);
        let yv = g.value(y);
        // normalized to ±1 (approx), then *2 + 10
        assert!((yv.at(&[0, 0]) - 8.0).abs() < 0.1);
        assert!((yv.at(&[0, 1]) - 12.0).abs() < 0.1);
    }

    #[test]
    fn batchnorm_train_normalizes_channels() {
        let bn = BatchNorm::new("bn", 2);
        let mut g = Graph::new();
        g.training = true;
        // (N=2, C=2, L=3)
        let x = g.constant(Tensor::from_vec(
            (0..12).map(|i| i as f32).collect(),
            &[2, 2, 3],
        ));
        let y = bn.forward(&mut g, x);
        let yv = g.value(y).clone();
        // Per-channel mean over N and L should be ~0.
        for c in 0..2 {
            let mut sum = 0.0;
            for n in 0..2 {
                for l in 0..3 {
                    sum += yv.at(&[n, c, l]);
                }
            }
            assert!((sum / 6.0).abs() < 1e-4);
        }
        // Running stats got initialized.
        let (rm, _) = bn.running_stats();
        assert!(rm.as_slice()[0] > 0.0);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm::new("bn", 1);
        // Train once to set running stats.
        {
            let mut g = Graph::new();
            g.training = true;
            let x = g.constant(Tensor::from_vec(vec![0.0, 2.0], &[2, 1]));
            let _ = bn.forward(&mut g, x);
        }
        let (rm, rv) = bn.running_stats();
        assert!((rm.as_slice()[0] - 1.0).abs() < 1e-5);
        assert!((rv.as_slice()[0] - 1.0).abs() < 1e-5);
        // Eval: input equal to running mean normalizes to ~0.
        let mut g = Graph::inference();
        let x = g.constant(Tensor::from_vec(vec![1.0], &[1, 1]));
        let y = bn.forward(&mut g, x);
        assert!(g.value(y).as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn batchnorm_grads_flow() {
        let bn = BatchNorm::new("bn", 2);
        let mut g = Graph::new();
        g.training = true;
        let x = g.leaf(Tensor::from_vec(
            (0..8).map(|i| i as f32 * 0.5).collect(),
            &[2, 2, 2],
        ));
        let y = bn.forward(&mut g, x);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some());
        assert!(bn.gamma.grad().is_some());
        assert!(bn.beta.grad().is_some());
    }
}
