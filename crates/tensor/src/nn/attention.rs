//! Multi-head self-attention with optional additive masks (the Swin
//! shifted-window mask).

use rand::rngs::StdRng;

use super::{Linear, Module};
use crate::autograd::{Graph, Param, Var};
use crate::tensor::Tensor;

/// Standard MHA over token sequences shaped `(B, N, C)`.
///
/// For windowed attention, `B` is `batch × num_windows` and the optional
/// mask (shape `(num_windows, N, N)`) is broadcast per window via
/// [`MultiHeadAttention::forward_masked`].
#[derive(Clone)]
pub struct MultiHeadAttention {
    pub qkv: Linear,
    pub proj: Linear,
    pub num_heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    pub fn new(name: &str, dim: usize, num_heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(
            dim % num_heads,
            0,
            "dim {dim} not divisible by heads {num_heads}"
        );
        Self {
            qkv: Linear::new(&format!("{name}.qkv"), dim, 3 * dim, true, rng),
            proj: Linear::new(&format!("{name}.proj"), dim, dim, true, rng),
            num_heads,
            dim,
        }
    }

    /// Attention with an optional additive mask.
    ///
    /// `mask`: `(num_windows, N, N)` with 0 for allowed pairs and a large
    /// negative value for disallowed ones. When given, `B` of the input
    /// must be `batch * num_windows`.
    ///
    /// The score-softmax-value core runs through [`Graph::attention`]: in
    /// inference graphs the active backend's fused kernel computes it
    /// without materializing the `(B, H, N, N)` score tensor.
    pub fn forward_masked(&self, g: &mut Graph, x: Var, mask: Option<&Tensor>) -> Var {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "attention expects (B, N, C)");
        let (b, n, c) = (shape[0], shape[1], shape[2]);
        assert_eq!(c, self.dim);
        let h = self.num_heads;
        let hd = c / h;

        let qkv = self.qkv.forward(g, x); // (B, N, 3C)
        let qkv = g.reshape(qkv, &[b, n, 3, h, hd]);
        let qkv = g.permute(qkv, &[2, 0, 3, 1, 4]); // (3, B, H, N, hd)
        let q = g.narrow(qkv, 0, 0, 1);
        let q = g.reshape(q, &[b, h, n, hd]);
        let k = g.narrow(qkv, 0, 1, 1);
        let k = g.reshape(k, &[b, h, n, hd]);
        let v = g.narrow(qkv, 0, 2, 1);
        let v = g.reshape(v, &[b, h, n, hd]);

        let out = g.attention(q, k, v, mask, 1.0 / (hd as f32).sqrt()); // (B, H, N, hd)
        let out = g.permute(out, &[0, 2, 1, 3]); // (B, N, H, hd)
        let out = g.reshape(out, &[b, n, c]);
        self.proj.forward(g, out)
    }
}

impl Module for MultiHeadAttention {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_masked(g, x, None)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.qkv.collect_params(out);
        self.proj.collect_params(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new("attn", 12, 3, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[4, 10, 12]));
        let y = attn.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[4, 10, 12]);
    }

    #[test]
    fn permutation_equivariance_without_mask() {
        // Self-attention commutes with token permutation (no positional
        // info inside the block itself).
        let mut rng = StdRng::seed_from_u64(5);
        let attn = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        let x0 = crate::init::randn(&[1, 4, 8], 1.0, &mut rng);

        let mut g = Graph::inference();
        let x = g.constant(x0.clone());
        let y = attn.forward(&mut g, x);
        let y = g.value(y).clone();

        // Swap tokens 1 and 2 of the input.
        let t0 = x0.narrow(1, 0, 1);
        let t1 = x0.narrow(1, 1, 1);
        let t2 = x0.narrow(1, 2, 1);
        let t3 = x0.narrow(1, 3, 1);
        let xp = Tensor::concat(&[&t0, &t2, &t1, &t3], 1);

        let mut g2 = Graph::inference();
        let x2 = g2.constant(xp);
        let y2v = attn.forward(&mut g2, x2);
        let y2 = g2.value(y2v).clone();

        // Output tokens swap the same way.
        assert!(y.narrow(1, 1, 1).allclose(&y2.narrow(1, 2, 1), 1e-5));
        assert!(y.narrow(1, 2, 1).allclose(&y2.narrow(1, 1, 1), 1e-5));
        assert!(y.narrow(1, 0, 1).allclose(&y2.narrow(1, 0, 1), 1e-5));
    }

    #[test]
    fn mask_blocks_attention() {
        // With a mask forbidding token 0 from attending to token 1, token
        // 0's output must not depend on token 1's value.
        let mut rng = StdRng::seed_from_u64(9);
        let attn = MultiHeadAttention::new("attn", 4, 1, &mut rng);
        let n = 2;
        let neg = -1e9f32;
        // One "window": token i may only attend to itself.
        let mask = Tensor::from_vec(vec![0.0, neg, neg, 0.0], &[1, n, n]);

        let base = crate::init::randn(&[1, n, 4], 1.0, &mut rng);
        let mut changed = base.clone();
        for i in 0..4 {
            let v = changed.at(&[0, 1, i]);
            changed.set(&[0, 1, i], v + 10.0);
        }

        let run = |input: Tensor| {
            let mut g = Graph::inference();
            let x = g.constant(input);
            let y = attn.forward_masked(&mut g, x, Some(&mask));
            g.value(y).clone()
        };
        let y1 = run(base);
        let y2 = run(changed);
        // Token 0 output unchanged; token 1 output changed.
        assert!(y1.narrow(1, 0, 1).allclose(&y2.narrow(1, 0, 1), 1e-5));
        assert!(y1.narrow(1, 1, 1).max_abs_diff(&y2.narrow(1, 1, 1)) > 1e-3);
    }

    #[test]
    fn grads_flow_through_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = MultiHeadAttention::new("attn", 6, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(crate::init::randn(&[2, 5, 6], 0.5, &mut rng));
        let y = attn.forward(&mut g, x);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some());
        for p in attn.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
