//! Fully connected layer.

use rand::rngs::StdRng;

use super::Module;
use crate::autograd::{Graph, Param, Var};
use crate::backend::UnaryOp;
use crate::init;
use crate::tensor::Tensor;

/// `y = x @ W + b` applied over the last axis of an arbitrary-rank input.
#[derive(Clone)]
pub struct Linear {
    pub weight: Param, // [in, out]
    pub bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// New layer with truncated-normal weights (std 0.02, the ViT default)
    /// and zero bias.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::trunc_normal(&[in_features, out_features], 0.02, rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    pub fn in_features(&self) -> usize {
        self.in_features
    }

    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward with an optional fused activation.
    ///
    /// Routes through [`Graph::linear`] / [`Graph::linear_act`], so the
    /// bias-add is fused into the backend matmul kernel (and, in inference
    /// graphs, the activation runs in place on the matmul output).
    pub fn forward_act(&self, g: &mut Graph, x: Var, act: Option<UnaryOp>) -> Var {
        let in_shape = g.value(x).shape().to_vec();
        assert_eq!(
            *in_shape.last().expect("linear input must have rank >= 1"),
            self.in_features,
            "linear expected last dim {}, got {:?}",
            self.in_features,
            in_shape
        );
        let rows: usize = in_shape[..in_shape.len() - 1].iter().product();
        let flat = g.reshape(x, &[rows, self.in_features]);
        let w = g.param(&self.weight);
        let bias = self.bias.as_ref().map(|b| g.param(b));
        let y = match act {
            Some(op) => g.linear_act(flat, w, bias, op),
            None => g.linear(flat, w, bias),
        };
        let mut out_shape = in_shape;
        *out_shape.last_mut().unwrap() = self.out_features;
        g.reshape(y, &out_shape)
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_act(g, x, None)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        out.push(self.weight.clone());
        if let Some(b) = &self.bias {
            out.push(b.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_arbitrary_rank() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 8, 3, true, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 5, 8]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 5, 3]);
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 3, 3, false, &mut rng);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        l.weight.set_value(eye);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gradient_reaches_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 4, 2, true, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[3, 4]));
        let y = l.forward(&mut g, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert!(l.weight.grad().is_some());
        assert!(l.bias.as_ref().unwrap().grad().is_some());
        // d(mean)/d(bias_j) = 1/out_features... specifically 3 rows / (3*2): 1/2 each
        let bg = l.bias.as_ref().unwrap().grad().unwrap();
        for &v in bg.as_slice() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn num_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 10, 5, true, &mut rng);
        assert_eq!(l.num_parameters(), 10 * 5 + 5);
    }
}
