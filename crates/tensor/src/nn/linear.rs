//! Fully connected layer.

use rand::rngs::StdRng;

use super::Module;
use crate::autograd::{Graph, Param, Var};
use crate::backend::UnaryOp;
use crate::init;
use crate::quant::{self, Precision, QuantWeight};
use crate::tensor::Tensor;

/// `y = x @ W + b` applied over the last axis of an arbitrary-rank input.
#[derive(Clone)]
pub struct Linear {
    pub weight: Param, // [in, out]
    pub bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// New layer with truncated-normal weights (std 0.02, the ViT default)
    /// and zero bias.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::trunc_normal(&[in_features, out_features], 0.02, rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    pub fn in_features(&self) -> usize {
        self.in_features
    }

    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward with an optional fused activation.
    ///
    /// Routes through [`Graph::linear`] / [`Graph::linear_act`], so the
    /// bias-add is fused into the backend matmul kernel (and, in inference
    /// graphs, the activation runs in place on the matmul output).
    pub fn forward_act(&self, g: &mut Graph, x: Var, act: Option<UnaryOp>) -> Var {
        let in_shape = g.value(x).shape().to_vec();
        assert_eq!(
            *in_shape.last().expect("linear input must have rank >= 1"),
            self.in_features,
            "linear expected last dim {}, got {:?}",
            self.in_features,
            in_shape
        );
        let rows: usize = in_shape[..in_shape.len() - 1].iter().product();
        if !g.is_recording() && g.precision() != Precision::F32 {
            return self.forward_quantized(g, x, act, in_shape, rows);
        }
        let flat = g.reshape(x, &[rows, self.in_features]);
        let w = g.param(&self.weight);
        let bias = self.bias.as_ref().map(|b| g.param(b));
        let y = match act {
            Some(op) => g.linear_act(flat, w, bias, op),
            None => g.linear(flat, w, bias),
        };
        let mut out_shape = in_shape;
        *out_shape.last_mut().unwrap() = self.out_features;
        g.reshape(y, &out_shape)
    }

    /// Reduced-precision inference forward: the weight's quantized tier
    /// (built lazily, cached on the [`Param`]) replaces the f32 matmul.
    ///
    /// - **int8 tier** — dynamic per-row activation quantization, then the
    ///   backend's fused [`crate::backend::Backend::qlinear_i8`] GEMM
    ///   (dequant + bias in the epilogue).
    /// - **f16 tier** — weights decompress to an f32 scratch (O(k·n),
    ///   small next to the O(m·k·n) GEMM) and run the regular
    ///   `matmul_bias` path with f32 accumulation.
    ///
    /// The activation, when fused, runs in place on the output — the same
    /// shape the f32 inference path of [`Graph::linear_act`] takes.
    fn forward_quantized(
        &self,
        g: &mut Graph,
        x: Var,
        act: Option<UnaryOp>,
        in_shape: Vec<usize>,
        rows: usize,
    ) -> Var {
        let qw = self
            .weight
            .quantized(g.precision(), self.in_features, self.out_features);
        let bias = self.bias.as_ref().map(|b| b.value());
        let x_t = g.value(x).clone();
        let mut y = match &*qw {
            QuantWeight::Int8(qt) => {
                let acts = quant::quantize_acts(x_t.as_slice(), rows, self.in_features);
                let mut y = Tensor::zeros(&[rows, self.out_features]);
                crate::backend::current().qlinear_i8(
                    &acts,
                    qt,
                    bias.as_ref().map(|b| b.as_slice()),
                    y.as_mut_slice(),
                );
                y
            }
            QuantWeight::F16(fw) => {
                // Decompress + f32 GEMM composite, attributed as one
                // f16-tier kernel (the inner matmul also shows up as
                // kernel.matmul.f32 when profiling is on).
                let _span = cobs::span!("kernel.linear.f16");
                let start = std::time::Instant::now();
                let w = Tensor::from_vec(fw.decompress(), &[self.in_features, self.out_features]);
                let xf = x_t.reshaped(&[rows, self.in_features]);
                let y = match &bias {
                    Some(b) => xf.matmul_bias(&w, b),
                    None => xf.matmul(&w),
                };
                cobs::histogram!("kernel.linear.f16").record_duration(start.elapsed());
                y
            }
        };
        if let Some(op) = act {
            y.unary_op_inplace(op);
        }
        let mut out_shape = in_shape;
        *out_shape.last_mut().unwrap() = self.out_features;
        g.constant(y.reshaped(&out_shape))
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_act(g, x, None)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        out.push(self.weight.clone());
        if let Some(b) = &self.bias {
            out.push(b.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_arbitrary_rank() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 8, 3, true, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 5, 8]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 5, 3]);
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 3, 3, false, &mut rng);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        l.weight.set_value(eye);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gradient_reaches_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 4, 2, true, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[3, 4]));
        let y = l.forward(&mut g, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert!(l.weight.grad().is_some());
        assert!(l.bias.as_ref().unwrap().grad().is_some());
        // d(mean)/d(bias_j) = 1/out_features... specifically 3 rows / (3*2): 1/2 each
        let bg = l.bias.as_ref().unwrap().grad().unwrap();
        for &v in bg.as_slice() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_forward_tracks_f32() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new("l", 24, 12, true, &mut rng);
        let x = init::trunc_normal(&[2, 5, 24], 1.0, &mut rng);
        let mut g32 = Graph::inference();
        let v32 = g32.constant(x.clone());
        let y32 = l.forward_act(&mut g32, v32, Some(UnaryOp::Gelu));
        let ref_out = g32.value(y32);
        let max_ref = ref_out
            .as_slice()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        for (prec, tol) in [(Precision::Int8, 0.05), (Precision::F16, 5e-3)] {
            let mut g = Graph::inference_with_precision(prec);
            let v = g.constant(x.clone());
            let y = l.forward_act(&mut g, v, Some(UnaryOp::Gelu));
            assert_eq!(g.value(y).shape(), ref_out.shape());
            for (a, b) in ref_out.as_slice().iter().zip(g.value(y).as_slice()) {
                assert!(
                    (a - b).abs() <= tol * max_ref.max(1.0),
                    "{prec}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn set_value_invalidates_quant_cache() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = Linear::new("l", 8, 8, false, &mut rng);
        let q1 = l.weight.quantized(Precision::F16, 8, 8);
        // Cached: same Rc comes back.
        let q2 = l.weight.quantized(Precision::F16, 8, 8);
        assert!(std::rc::Rc::ptr_eq(&q1, &q2));
        l.weight.set_value(Tensor::ones(&[8, 8]));
        let q3 = l.weight.quantized(Precision::F16, 8, 8);
        assert!(!std::rc::Rc::ptr_eq(&q1, &q3));
        // Asking for a different precision rebuilds too.
        let q4 = l.weight.quantized(Precision::Int8, 8, 8);
        assert!(matches!(&*q4, QuantWeight::Int8(_)));
    }

    #[test]
    fn num_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 10, 5, true, &mut rng);
        assert_eq!(l.num_parameters(), 10 * 5 + 5);
    }
}
