//! Neural-network building blocks over the autograd tape.
//!
//! Modules are cheaply `Clone` — clones *share* parameters (they hold
//! `Param` handles), which is what checkpoint closures and weight-tied
//! replicas need. For independent replicas use
//! [`state_dict`]/[`load_state_dict`] on separately constructed modules.

mod attention;
mod linear;
mod mlp;
mod norm;

pub use attention::MultiHeadAttention;
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::{BatchNorm, LayerNorm};

use crate::autograd::{Graph, Param, Var};
use crate::tensor::Tensor;

/// A differentiable component with trainable parameters.
pub trait Module {
    /// Forward pass on the given tape.
    fn forward(&self, g: &mut Graph, x: Var) -> Var;

    /// Append this module's parameters (deterministic order).
    fn collect_params(&self, out: &mut Vec<Param>);

    /// All parameters in deterministic order.
    fn params(&self) -> Vec<Param> {
        let mut v = Vec::new();
        self.collect_params(&mut v);
        v
    }

    /// Total trainable scalar count.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

/// Snapshot parameter values (order-based; modules must be constructed
/// identically on both sides).
pub fn state_dict(module: &dyn Module) -> Vec<Tensor> {
    module.params().iter().map(|p| p.value()).collect()
}

/// Load a snapshot produced by [`state_dict`].
pub fn load_state_dict(module: &dyn Module, state: &[Tensor]) {
    let params = module.params();
    assert_eq!(
        params.len(),
        state.len(),
        "state dict length mismatch: {} vs {}",
        params.len(),
        state.len()
    );
    for (p, t) in params.iter().zip(state) {
        assert_eq!(
            p.value().shape(),
            t.shape(),
            "state dict shape mismatch for '{}'",
            p.name()
        );
        p.set_value(t.clone());
    }
}

/// Elementwise average of several state dicts (gradient/weight averaging
/// for the data-parallel trainer).
pub fn average_states(states: &[Vec<Tensor>]) -> Vec<Tensor> {
    assert!(!states.is_empty());
    let n = states.len() as f32;
    let mut out = states[0].clone();
    for s in &states[1..] {
        for (acc, t) in out.iter_mut().zip(s) {
            *acc = acc.add(t);
        }
    }
    for t in &mut out {
        *t = t.scale(1.0 / n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new("a", 4, 3, true, &mut rng);
        let b = Linear::new("b", 4, 3, true, &mut rng);
        let sd = state_dict(&a);
        load_state_dict(&b, &sd);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.value().as_slice(), pb.value().as_slice());
        }
    }

    #[test]
    fn average_states_means() {
        let s1 = vec![Tensor::full(&[2], 1.0)];
        let s2 = vec![Tensor::full(&[2], 3.0)];
        let avg = average_states(&[s1, s2]);
        assert_eq!(avg[0].as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn module_clone_shares_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new("a", 2, 2, false, &mut rng);
        let b = a.clone();
        a.params()[0].set_value(Tensor::zeros(&[2, 2]));
        assert_eq!(b.params()[0].value().as_slice(), &[0.0; 4]);
    }
}
