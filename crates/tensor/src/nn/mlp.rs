//! Two-layer MLP with GELU, the transformer feed-forward block.

use rand::rngs::StdRng;

use super::{Linear, Module};
use crate::autograd::{Graph, Param, Var};
use crate::backend::UnaryOp;

/// `fc2(gelu(fc1(x)))` with a configurable hidden width.
#[derive(Clone)]
pub struct Mlp {
    pub fc1: Linear,
    pub fc2: Linear,
}

impl Mlp {
    pub fn new(name: &str, dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            fc1: Linear::new(&format!("{name}.fc1"), dim, hidden, true, rng),
            fc2: Linear::new(&format!("{name}.fc2"), hidden, dim, true, rng),
        }
    }
}

impl Module for Mlp {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        // fc1 + GELU fuse through the backend (in-place activation on the
        // matmul output in inference graphs).
        let a = self.fc1.forward_act(g, x, Some(UnaryOp::Gelu));
        self.fc2.forward(g, a)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.fc1.collect_params(out);
        self.fc2.collect_params(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mlp::new("mlp", 6, 24, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 7, 6]));
        let y = m.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 7, 6]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mlp::new("mlp", 4, 16, &mut rng);
        assert_eq!(m.num_parameters(), 4 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn trainable_end_to_end() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new("mlp", 3, 8, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[4, 3]));
        let y = m.forward(&mut g, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        for p in m.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
