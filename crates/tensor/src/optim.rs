//! Optimizers: SGD (with momentum), Adam, AdamW; global-norm clipping.
//!
//! Both `step` methods run as fused single-pass kernels through the active
//! [`Backend`](crate::backend::Backend) (`sgd_step` / `adam_step`): one sweep
//! over params+grads+moments, no per-op temporaries. Moment buffers are
//! zero-initialized on first use, which is bitwise-identical to the
//! "first step copies the gradient" formulation (`0·β + x` rounds to `x·(1−β)`
//! exactly).

use crate::autograd::Param;
use crate::backend::{self, AdamStepSpec};
use crate::tensor::Tensor;

/// Clip gradients so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let mut total = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            total += g
                .as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>();
        }
    }
    let norm = (total.sqrt()) as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.zero_grad();
                p.accum_grad(&g.scale(scale));
            }
        }
    }
    norm
}

/// Zero every parameter's gradient.
pub fn zero_grads(params: &[Param]) {
    for p in params {
        p.zero_grad();
    }
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Param>,
    velocity: Vec<Option<Tensor>>,
    pub lr: f32,
    pub momentum: f32,
}

impl Sgd {
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32) -> Self {
        let n = params.len();
        Self {
            params,
            velocity: (0..n).map(|_| None).collect(),
            lr,
            momentum,
        }
    }

    /// Apply one update using accumulated gradients, then clear them.
    ///
    /// Runs the fused [`Backend::sgd_step`](crate::backend::Backend::sgd_step)
    /// kernel in place on the parameter (and velocity) buffers.
    pub fn step(&mut self) {
        let be = backend::current();
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let mut val = p.value();
            if self.momentum > 0.0 {
                let vel = self.velocity[i].get_or_insert_with(|| Tensor::zeros(val.shape()));
                be.sgd_step(
                    val.as_mut_slice(),
                    g.as_slice(),
                    Some(vel.as_mut_slice()),
                    self.lr,
                    self.momentum,
                );
            } else {
                be.sgd_step(
                    val.as_mut_slice(),
                    g.as_slice(),
                    None,
                    self.lr,
                    self.momentum,
                );
            }
            p.set_value(val);
            p.zero_grad();
        }
    }
}

/// Adam / AdamW. `weight_decay > 0` applies decoupled decay (AdamW).
pub struct Adam {
    params: Vec<Param>,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
    t: i32,
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Adam {
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let n = params.len();
        Self {
            params,
            m: (0..n).map(|_| None).collect(),
            v: (0..n).map(|_| None).collect(),
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }

    /// AdamW constructor with decoupled weight decay.
    pub fn adamw(params: Vec<Param>, lr: f32, weight_decay: f32) -> Self {
        let mut a = Self::new(params, lr);
        a.weight_decay = weight_decay;
        a
    }

    /// Parameters managed by this optimizer.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total scalar count, and optimizer-state bytes (m+v), used by the
    /// Table II memory accounting.
    pub fn state_bytes(&self) -> usize {
        let p: usize = self.params.iter().map(|p| p.numel()).sum();
        // value + grad + m + v, 4 bytes each
        p * 4 * 4
    }

    /// Step counter (number of `step` calls applied so far).
    pub fn t(&self) -> i32 {
        self.t
    }

    /// Snapshot the moment state for checkpointing:
    /// `(step count, first moments, second moments)`. `None` entries are
    /// parameters whose moments have not been touched yet.
    pub fn state_snapshot(&self) -> (i32, Vec<Option<Tensor>>, Vec<Option<Tensor>>) {
        (self.t, self.m.clone(), self.v.clone())
    }

    /// Restore moment state captured by [`Adam::state_snapshot`]. Lengths must
    /// match the managed parameter list.
    pub fn load_state(&mut self, t: i32, m: Vec<Option<Tensor>>, v: Vec<Option<Tensor>>) {
        assert_eq!(m.len(), self.params.len(), "moment/param length mismatch");
        assert_eq!(v.len(), self.params.len(), "moment/param length mismatch");
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Apply one Adam update using accumulated gradients, then clear them.
    ///
    /// Runs the fused [`Backend::adam_step`](crate::backend::Backend::adam_step)
    /// kernel: a single pass updating `p`, `m`, `v` in place, with
    /// reciprocal-multiply bias correction and decoupled (AdamW) decay that
    /// reads the pre-update weight.
    pub fn step(&mut self) {
        self.t += 1;
        let spec = AdamStepSpec {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            bc1: 1.0 - self.beta1.powi(self.t),
            bc2: 1.0 - self.beta2.powi(self.t),
        };
        let be = backend::current();
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let mut val = p.value();
            let m = self.m[i].get_or_insert_with(|| Tensor::zeros(val.shape()));
            let v = self.v[i].get_or_insert_with(|| Tensor::zeros(val.shape()));
            be.adam_step(
                val.as_mut_slice(),
                g.as_slice(),
                m.as_mut_slice(),
                v.as_mut_slice(),
                &spec,
            );
            p.set_value(val);
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Graph;

    /// Run 300 steps minimizing f(w) = (w - 3)^2 with the given updater.
    fn quadratic_converges_with(p: &Param, step: &mut dyn FnMut(&Param)) -> f32 {
        for _ in 0..300 {
            let mut g = Graph::new();
            let w = g.param(p);
            let t = g.constant(Tensor::scalar(3.0));
            let d = g.sub(w, t);
            let loss = g.square(d);
            let loss_s = g.sum_all(loss);
            g.backward(loss_s);
            step(p);
        }
        p.value().item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        let w = quadratic_converges_with(&p, &mut |_| opt.step());
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.05, 0.9);
        let w = quadratic_converges_with(&p, &mut |_| opt.step());
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        let w = quadratic_converges_with(&p, &mut |_| opt.step());
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adamw_decay_shrinks_weights() {
        // With zero gradient signal and weight decay, weights shrink.
        let p = Param::new("w", Tensor::scalar(10.0));
        let mut opt = Adam::adamw(vec![p.clone()], 0.1, 0.1);
        for _ in 0..10 {
            p.accum_grad(&Tensor::scalar(0.0));
            opt.step();
        }
        assert!(p.value().item() < 10.0);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let p = Param::new("w", Tensor::zeros(&[4]));
        p.accum_grad(&Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[4]));
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = p.grad().unwrap();
        let post: f32 = g.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_when_below_threshold() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.accum_grad(&Tensor::from_vec(vec![0.1, 0.1], &[2]));
        clip_grad_norm(std::slice::from_ref(&p), 10.0);
        assert_eq!(p.grad().unwrap().as_slice(), &[0.1, 0.1]);
    }
}
