//! Runtime-detected SIMD lanes for the Blocked v2 kernels.
//!
//! Everything here comes in pairs: an `x86_64` AVX2+FMA implementation
//! (8-wide `f32` lanes via `std::arch`) and a portable scalar fallback
//! with identical semantics. Which pair member runs is decided **once**
//! per process by [`level`] — `is_x86_feature_detected!` at first use,
//! overridable with `COASTAL_SIMD=scalar` for debugging/bisection — and
//! callers may also pin a level explicitly (the kernel-parity tests
//! exercise both paths in one process).
//!
//! Numerical contract:
//!
//! - `exp`/`tanh`/`gelu` lanes use polynomial approximations (Cephes-style
//!   range reduction for `exp`) accurate to ~1 ulp; agreement with the
//!   `ScalarRef` oracle is within `1e-6` absolute for softmax/attention
//!   outputs and `1e-5` relative for raw exponentials. NaN propagates;
//!   `exp` of values beyond the f32-overflow threshold returns `inf`
//!   exactly like `f32::exp`.
//! - Lane/tail splits are **data-independent** (fixed by slice length
//!   only), so results are bitwise-identical regardless of how many rayon
//!   threads execute a kernel — required by the thread-invariance tests.

/// Lane width of the wide path (f32 elements per vector register).
pub const LANES: usize = 8;

/// Which instruction set the wide kernels use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops (also the non-x86 and `COASTAL_SIMD=scalar`
    /// path).
    Scalar,
    /// AVX2 + FMA 8-wide lanes.
    Avx2Fma,
}

impl SimdLevel {
    /// Short identifier recorded into bench provenance stamps.
    pub fn feature_string(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2Fma => "avx2+fma",
        }
    }
}

/// The process-wide SIMD level: hardware detection, unless
/// `COASTAL_SIMD=scalar` forces the fallback. Cached after first call.
pub fn level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if matches!(
            std::env::var("COASTAL_SIMD").as_deref(),
            Ok("scalar") | Ok("off") | Ok("0")
        ) {
            return SimdLevel::Scalar;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        SimdLevel::Avx2Fma
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// Feature set of the active level (for `RunStamp` provenance).
pub fn feature_string() -> &'static str {
    level().feature_string()
}

// ====================================================== scalar reference
//
// The scalar pair members. These intentionally use `f32::exp`/`f32::tanh`
// (libm), matching the `ScalarRef` backend bit-for-bit, so a Blocked
// backend pinned to `SimdLevel::Scalar` differs from the oracle only in
// loop structure, never in math.

mod scalar {
    use crate::tensor::ops::{gelu_grad_scalar, gelu_scalar};

    pub fn exp_slice(x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = v.exp();
        }
    }

    pub fn tanh_slice(x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = v.tanh();
        }
    }

    pub fn gelu_slice(x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = gelu_scalar(v);
        }
    }

    pub fn gelu_grad_slice(x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = gelu_grad_scalar(v);
        }
    }

    pub fn exp_slice_inplace(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = v.exp();
        }
    }

    pub fn tanh_slice_inplace(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = v.tanh();
        }
    }

    pub fn gelu_slice_inplace(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = gelu_scalar(*v);
        }
    }

    pub fn gelu_grad_slice_inplace(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = gelu_grad_scalar(*v);
        }
    }

    /// Attention score block: `scores[r·n + j] = dot(q_r, k_j) · scale`.
    pub fn attn_scores_block(
        q_block: &[f32],
        km: &[f32],
        scores: &mut [f32],
        ib: usize,
        n: usize,
        d: usize,
        scale: f32,
    ) {
        for r in 0..ib {
            let q_row = &q_block[r * d..(r + 1) * d];
            for j in 0..n {
                let k_row = &km[j * d..(j + 1) * d];
                let mut acc = 0.0f32;
                for c in 0..d {
                    acc += q_row[c] * k_row[c];
                }
                scores[r * n + j] = acc * scale;
            }
        }
    }

    /// Attention value block: `out_r = Σ_j probs[r·n + j] · v_j`.
    ///
    /// For each `(r, c)` the accumulation runs over increasing `j`, the
    /// same per-element order as the `ScalarRef` oracle.
    pub fn attn_pv_block(
        probs: &[f32],
        vm: &[f32],
        out_block: &mut [f32],
        ib: usize,
        n: usize,
        d: usize,
    ) {
        for r in 0..ib {
            let prow = &probs[r * n..(r + 1) * n];
            let o_row = &mut out_block[r * d..(r + 1) * d];
            o_row.fill(0.0);
            for (j, &w) in prow.iter().enumerate() {
                let v_row = &vm[j * d..(j + 1) * d];
                for c in 0..d {
                    o_row[c] += w * v_row[c];
                }
            }
        }
    }

    /// Softmax backward of one row: `dx = (dy − Σ dy⊙y) ⊙ y`.
    pub fn softmax_grad_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
        let s: f32 = y.iter().zip(dy).map(|(&a, &b)| a * b).sum();
        for ((o, &yv), &dv) in dx.iter_mut().zip(y).zip(dy) {
            *o = (dv - s) * yv;
        }
    }

    /// Layernorm backward of one row (stats recomputed from `x`):
    /// `dx = inv·(dy − mean(dy) − x̂·mean(dy⊙x̂))`.
    pub fn layernorm_grad_row(x: &[f32], dy: &[f32], dx: &mut [f32], eps: f32) {
        let inv_n = 1.0 / x.len() as f32;
        let mean = x.iter().sum::<f32>() * inv_n;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() * inv_n;
        let inv = 1.0 / (var + eps).sqrt();
        let mut a = 0.0f32;
        let mut b = 0.0f32;
        for (&dv, &xv) in dy.iter().zip(x) {
            a += dv;
            b += dv * (xv - mean) * inv;
        }
        a *= inv_n;
        b *= inv_n;
        for ((o, &dv), &xv) in dx.iter_mut().zip(dy).zip(x) {
            *o = inv * (dv - a - (xv - mean) * inv * b);
        }
    }

    /// Fused Adam/AdamW update over one chunk (see `Backend::adam_step`).
    pub fn adam_step_slice(
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &crate::backend::AdamStepSpec,
    ) {
        for i in 0..p.len() {
            let gi = g[i];
            m[i] = m[i] * s.beta1 + gi * (1.0 - s.beta1);
            v[i] = v[i] * s.beta2 + gi * gi * (1.0 - s.beta2);
            let m_hat = m[i] * (1.0 / s.bc1);
            let v_hat = v[i] * (1.0 / s.bc2);
            let update = s.lr * (m_hat / (v_hat.sqrt() + s.eps));
            let decay = s.lr * s.weight_decay * p[i];
            p[i] = p[i] - update - decay;
        }
    }

    /// Fused SGD(+momentum) update over one chunk.
    pub fn sgd_step_slice(p: &mut [f32], g: &[f32], vel: Option<&mut [f32]>, lr: f32, mom: f32) {
        match vel {
            Some(vel) => {
                for i in 0..p.len() {
                    vel[i] = vel[i] * mom + g[i];
                    p[i] -= lr * vel[i];
                }
            }
            None => {
                for (pv, &gv) in p.iter_mut().zip(g) {
                    *pv -= lr * gv;
                }
            }
        }
    }

    /// Numerically-stable softmax of one row (max-subtracted).
    pub fn softmax_row(x: &[f32], out: &mut [f32]) {
        let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &v) in out.iter_mut().zip(x) {
            let e = (v - m).exp();
            *o = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

// ======================================================== avx2 kernels

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::LANES;
    use std::arch::x86_64::*;

    /// exp(x) for one lane: Cephes-style range reduction
    /// (`x = n·ln2 + r`, `|r| ≤ ln2/2`), degree-5 polynomial on `r`, then
    /// two-step `2^n` scaling so the full f32 range (including `n = 128`
    /// at the overflow edge and `n = -126` near the denormal edge) is
    /// reconstructed without integer-exponent overflow.
    ///
    /// Inputs above `ln(f32::MAX)` return `inf` (as `f32::exp` does);
    /// inputs below the normal range clamp to ~1.2e-38 (abs error vs the
    /// denormal-producing libm ≤ 1.2e-38). NaN propagates.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn exp_ps(x: __m256) -> __m256 {
        // f32::exp overflows to inf strictly above ln(f32::MAX).
        const OVERFLOW: f32 = 88.722_84;
        const UNDERFLOW: f32 = -87.336_54; // below: clamp (normal range)
        let overflow_mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_set1_ps(OVERFLOW));
        // Clamp operand order chosen so NaN in `x` propagates (max/min
        // return the second source when either operand is NaN).
        let xc = _mm256_max_ps(_mm256_set1_ps(UNDERFLOW), x);
        let xc = _mm256_min_ps(_mm256_set1_ps(OVERFLOW), xc);

        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(xc, log2e),
        );
        // r = x - n·ln2, split high/low for extra precision.
        let ln2_hi = _mm256_set1_ps(0.693_359_4);
        let ln2_lo = _mm256_set1_ps(-2.121_944_4e-4);
        let r = _mm256_fnmadd_ps(n, ln2_hi, xc);
        let r = _mm256_fnmadd_ps(n, ln2_lo, r);

        // exp(r) ≈ 1 + r + r²·P(r) (Cephes expf coefficients).
        let mut p = _mm256_set1_ps(1.987_569_1e-4);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_5e-1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.000_000_3e-1));
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_fmadd_ps(p, r2, r);
        let y = _mm256_add_ps(y, _mm256_set1_ps(1.0));

        // 2^n via two half-steps: n in [-126, 128] splits into two
        // exponents each within the representable bias range.
        let ni = _mm256_cvtps_epi32(n);
        let half = _mm256_srai_epi32::<1>(ni); // floor(n/2)
        let rest = _mm256_sub_epi32(ni, half);
        let bias = _mm256_set1_epi32(127);
        let p1 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(half, bias)));
        let p2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(rest, bias)));
        let scaled = _mm256_mul_ps(_mm256_mul_ps(y, p1), p2);

        // Exact inf on overflow, matching libm (NaN lanes fail GT and keep
        // their propagated NaN).
        _mm256_blendv_ps(scaled, _mm256_set1_ps(f32::INFINITY), overflow_mask)
    }

    /// tanh(x) = (e^{2x} − 1) / (e^{2x} + 1), with |x| clamped to 9.01
    /// (tanh saturates within half an f32 ulp of ±1 there). NaN propagates
    /// through the clamp operand order.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_ps(x: __m256) -> __m256 {
        let lim = _mm256_set1_ps(9.01);
        let xc = _mm256_max_ps(_mm256_sub_ps(_mm256_setzero_ps(), lim), x);
        let xc = _mm256_min_ps(lim, xc);
        let e2 = exp_ps(_mm256_add_ps(xc, xc));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(_mm256_sub_ps(e2, one), _mm256_add_ps(e2, one))
    }

    /// GELU (tanh approximation), lane-parallel.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gelu_ps(x: __m256) -> __m256 {
        let c = _mm256_set1_ps(0.797_884_6); // sqrt(2/pi)
        let a = _mm256_set1_ps(0.044715);
        let x2 = _mm256_mul_ps(x, x);
        let inner = _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_mul_ps(a, x2), x, x));
        let t = tanh_ps(inner);
        let half_x = _mm256_mul_ps(_mm256_set1_ps(0.5), x);
        _mm256_mul_ps(half_x, _mm256_add_ps(t, _mm256_set1_ps(1.0)))
    }

    /// d/dx of the tanh-approximated GELU, lane-parallel.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gelu_grad_ps(x: __m256) -> __m256 {
        let c = _mm256_set1_ps(0.797_884_6);
        let a = _mm256_set1_ps(0.044715);
        let one = _mm256_set1_ps(1.0);
        let half = _mm256_set1_ps(0.5);
        let x2 = _mm256_mul_ps(x, x);
        let inner = _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_mul_ps(a, x2), x, x));
        let t = tanh_ps(inner);
        let sech2 = _mm256_fnmadd_ps(t, t, one);
        // 0.5·(1+t) + 0.5·x·sech²·C·(1 + 3a·x²)
        let slope = _mm256_fmadd_ps(_mm256_set1_ps(3.0 * 0.044715), x2, one);
        let second = _mm256_mul_ps(
            _mm256_mul_ps(_mm256_mul_ps(half, x), sech2),
            _mm256_mul_ps(c, slope),
        );
        _mm256_fmadd_ps(half, _mm256_add_ps(one, t), second)
    }

    #[inline]
    unsafe fn load(x: &[f32], i: usize) -> __m256 {
        _mm256_loadu_ps(x.as_ptr().add(i))
    }

    #[inline]
    unsafe fn store(out: &mut [f32], i: usize, v: __m256) {
        _mm256_storeu_ps(out.as_mut_ptr().add(i), v)
    }

    /// Apply a lane function over `x`, scalar-tail with `tail` — the
    /// lane/tail split depends only on `x.len()`, keeping results
    /// invariant under any outer parallel chunking that preserves
    /// LANES-aligned boundaries.
    macro_rules! map_slice {
        ($name:ident, $lane:ident, $tail:expr) => {
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $name(x: &[f32], out: &mut [f32]) {
                debug_assert_eq!(x.len(), out.len());
                let n = x.len();
                let main = n - n % LANES;
                let mut i = 0;
                while i < main {
                    store(out, i, $lane(load(x, i)));
                    i += LANES;
                }
                #[allow(clippy::redundant_closure_call)]
                for j in main..n {
                    out[j] = $tail(x[j]);
                }
            }
        };
    }

    map_slice!(exp_slice, exp_ps, |v: f32| v.exp());
    map_slice!(tanh_slice, tanh_ps, |v: f32| v.tanh());
    map_slice!(gelu_slice, gelu_ps, crate::tensor::ops::gelu_scalar);
    map_slice!(
        gelu_grad_slice,
        gelu_grad_ps,
        crate::tensor::ops::gelu_grad_scalar
    );

    /// In-place variant of [`map_slice!`]: same lane/tail structure,
    /// loading and storing through the same addresses.
    macro_rules! map_slice_inplace {
        ($name:ident, $lane:ident, $tail:expr) => {
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $name(x: &mut [f32]) {
                let n = x.len();
                let main = n - n % LANES;
                let mut i = 0;
                while i < main {
                    let v = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(x.as_mut_ptr().add(i), $lane(v));
                    i += LANES;
                }
                #[allow(clippy::redundant_closure_call)]
                for v in &mut x[main..] {
                    *v = $tail(*v);
                }
            }
        };
    }

    map_slice_inplace!(exp_slice_inplace, exp_ps, |v: f32| v.exp());
    map_slice_inplace!(tanh_slice_inplace, tanh_ps, |v: f32| v.tanh());
    map_slice_inplace!(gelu_slice_inplace, gelu_ps, crate::tensor::ops::gelu_scalar);
    map_slice_inplace!(
        gelu_grad_slice_inplace,
        gelu_grad_ps,
        crate::tensor::ops::gelu_grad_scalar
    );

    /// Horizontal max of a lane.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hmax(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(v);
        let lo = _mm256_castps256_ps128(v);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
        _mm_cvtss_f32(m)
    }

    /// Horizontal sum of a lane.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(v);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// Numerically-stable softmax of one row: lane-wise max reduction
    /// (then horizontal fold), subtract-exp-sum, scale. Matches the
    /// scalar semantics: the max subtraction keeps `exp` arguments ≤ 0,
    /// so logits spanning ±1e4 neither overflow nor flush the row to 0.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn softmax_row(x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let main = n - n % LANES;
        // Lane-wise max, then horizontal; scalar tail folds on top.
        let mut m = if main > 0 {
            let mut acc = load(x, 0);
            let mut i = LANES;
            while i < main {
                // Operand order: NaN in the data (second source) wins.
                acc = _mm256_max_ps(acc, load(x, i));
                i += LANES;
            }
            hmax(acc)
        } else {
            f32::NEG_INFINITY
        };
        for &v in &x[main..] {
            m = if v > m || m.is_nan() { v } else { m };
        }
        if m.is_nan() {
            // Scalar `f32::max` skips NaN, so the oracle's max over a
            // NaN-bearing row is the max of the rest; every exp(NaN - m)
            // is NaN either way. Recompute ignoring NaN to keep the
            // non-NaN lanes bit-comparable.
            m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }

        let mv = _mm256_set1_ps(m);
        let mut sum = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            let e = exp_ps(_mm256_sub_ps(load(x, i), mv));
            store(out, i, e);
            sum = _mm256_add_ps(sum, e);
            i += LANES;
        }
        let mut denom = hsum(sum);
        for j in main..n {
            let e = (x[j] - m).exp();
            out[j] = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        let invv = _mm256_set1_ps(inv);
        let mut i = 0;
        while i < main {
            store(out, i, _mm256_mul_ps(load(out, i), invv));
            i += LANES;
        }
        for o in &mut out[main..] {
            *o *= inv;
        }
    }

    /// Attention score block, one `target_feature` region per query block
    /// (per-dot dispatch overhead would otherwise eat the lane win).
    ///
    /// `d == 8` (the Swin head dim, exactly one lane) takes a fast path:
    /// eight K rows load as eight lanes and a 3-level `hadd` tree reduces
    /// them to a single lane holding eight finished dot products.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_scores_block(
        q_block: &[f32],
        km: &[f32],
        scores: &mut [f32],
        ib: usize,
        n: usize,
        d: usize,
        scale: f32,
    ) {
        if d == LANES {
            let sv = _mm256_set1_ps(scale);
            for r in 0..ib {
                let q = load(q_block, r * LANES);
                let main = n - n % LANES;
                let mut j = 0;
                while j < main {
                    let p0 = _mm256_mul_ps(q, load(km, j * LANES));
                    let p1 = _mm256_mul_ps(q, load(km, (j + 1) * LANES));
                    let p2 = _mm256_mul_ps(q, load(km, (j + 2) * LANES));
                    let p3 = _mm256_mul_ps(q, load(km, (j + 3) * LANES));
                    let p4 = _mm256_mul_ps(q, load(km, (j + 4) * LANES));
                    let p5 = _mm256_mul_ps(q, load(km, (j + 5) * LANES));
                    let p6 = _mm256_mul_ps(q, load(km, (j + 6) * LANES));
                    let p7 = _mm256_mul_ps(q, load(km, (j + 7) * LANES));
                    let t0 = _mm256_hadd_ps(p0, p1);
                    let t1 = _mm256_hadd_ps(p2, p3);
                    let t2 = _mm256_hadd_ps(p4, p5);
                    let t3 = _mm256_hadd_ps(p6, p7);
                    let s0 = _mm256_hadd_ps(t0, t1);
                    let s1 = _mm256_hadd_ps(t2, t3);
                    // [dots 0-3 half-sums | dots 4-7 half-sums] → in-order
                    // lane of the 8 dot products.
                    let lo = _mm256_permute2f128_ps::<0x20>(s0, s1);
                    let hi = _mm256_permute2f128_ps::<0x31>(s0, s1);
                    let dots = _mm256_add_ps(lo, hi);
                    store(scores, r * n + j, _mm256_mul_ps(dots, sv));
                    j += LANES;
                }
                for jj in main..n {
                    let k_row = &km[jj * d..(jj + 1) * d];
                    scores[r * n + jj] = dot(&q_block[r * d..(r + 1) * d], k_row) * scale;
                }
            }
        } else {
            for r in 0..ib {
                let q_row = &q_block[r * d..(r + 1) * d];
                for j in 0..n {
                    scores[r * n + j] = dot(q_row, &km[j * d..(j + 1) * d]) * scale;
                }
            }
        }
    }

    /// Attention value block: `out_r = Σ_j probs[r·n + j] · v_j`, one
    /// `target_feature` region per query block. With `d == 8` each output
    /// row is a single FMA-accumulated lane.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_pv_block(
        probs: &[f32],
        vm: &[f32],
        out_block: &mut [f32],
        ib: usize,
        n: usize,
        d: usize,
    ) {
        if d == LANES {
            for r in 0..ib {
                let prow = &probs[r * n..(r + 1) * n];
                let mut acc = _mm256_setzero_ps();
                for (j, &w) in prow.iter().enumerate() {
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(w), load(vm, j * LANES), acc);
                }
                store(out_block, r * LANES, acc);
            }
        } else {
            for r in 0..ib {
                let prow = &probs[r * n..(r + 1) * n];
                out_block[r * d..(r + 1) * d].fill(0.0);
                for (j, &w) in prow.iter().enumerate() {
                    axpy(
                        w,
                        &vm[j * d..(j + 1) * d],
                        &mut out_block[r * d..(r + 1) * d],
                    );
                }
            }
        }
    }

    /// `acc[..] += w · v[..]` (attention value accumulation).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(w: f32, v: &[f32], acc: &mut [f32]) {
        let n = v.len();
        let main = n - n % LANES;
        let wv = _mm256_set1_ps(w);
        let mut i = 0;
        while i < main {
            store(acc, i, _mm256_fmadd_ps(wv, load(v, i), load(acc, i)));
            i += LANES;
        }
        for j in main..n {
            acc[j] += w * v[j];
        }
    }

    /// Dot product of two equal-length rows (attention scores).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let main = n - n % LANES;
        let mut accv = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            accv = _mm256_fmadd_ps(load(a, i), load(b, i), accv);
            i += LANES;
        }
        let mut acc = hsum(accv);
        for j in main..n {
            acc += a[j] * b[j];
        }
        acc
    }

    /// GEBP microkernel: `acc[r][0..16] += a_strip[kk·MR + r] · panel row`
    /// over `kc` packed K steps. `MR = 4`, `NR = 16` (two lanes per row).
    /// `panel` rows are NR-contiguous (`panel[kk*16..kk*16+16]`), exactly
    /// the packing `gebp` produces.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel_4x16(apack: &[f32], panel: &[f32], kc: usize, acc: &mut [[f32; 16]]) {
        debug_assert!(acc.len() == 4);
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        for kk in 0..kc {
            let b0 = load(panel, kk * 16);
            let b1 = load(panel, kk * 16 + 8);
            let a0 = _mm256_set1_ps(apack[kk * 4]);
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            let a1 = _mm256_set1_ps(apack[kk * 4 + 1]);
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let a2 = _mm256_set1_ps(apack[kk * 4 + 2]);
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            let a3 = _mm256_set1_ps(apack[kk * 4 + 3]);
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
        }
        store(&mut acc[0], 0, c00);
        store(&mut acc[0], 8, c01);
        store(&mut acc[1], 0, c10);
        store(&mut acc[1], 8, c11);
        store(&mut acc[2], 0, c20);
        store(&mut acc[2], 8, c21);
        store(&mut acc[3], 0, c30);
        store(&mut acc[3], 8, c31);
    }

    /// Softmax backward of one row: lane-FMA dot `Σ dy⊙y`, then a fused
    /// `(dy − s)·y` pass.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn softmax_grad_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
        let s = dot(dy, y);
        let n = y.len();
        let main = n - n % LANES;
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i < main {
            let d = _mm256_sub_ps(load(dy, i), sv);
            store(dx, i, _mm256_mul_ps(d, load(y, i)));
            i += LANES;
        }
        for j in main..n {
            dx[j] = (dy[j] - s) * y[j];
        }
    }

    /// Layernorm backward of one row: three lane-reduced sums
    /// (`Σx`, `Σx²`-centered, `Σdy` / `Σdy⊙x̂`), then one fused output pass.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn layernorm_grad_row(x: &[f32], dy: &[f32], dx: &mut [f32], eps: f32) {
        let n = x.len();
        let main = n - n % LANES;
        let inv_n = 1.0 / n as f32;
        // mean
        let mut sx = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            sx = _mm256_add_ps(sx, load(x, i));
            i += LANES;
        }
        let mut mean = hsum(sx);
        for &xv in &x[main..] {
            mean += xv;
        }
        mean *= inv_n;
        // variance
        let mv = _mm256_set1_ps(mean);
        let mut sv = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            let c = _mm256_sub_ps(load(x, i), mv);
            sv = _mm256_fmadd_ps(c, c, sv);
            i += LANES;
        }
        let mut var = hsum(sv);
        for &xv in &x[main..] {
            var += (xv - mean) * (xv - mean);
        }
        var *= inv_n;
        let inv = 1.0 / (var + eps).sqrt();
        // a = Σdy, b = Σ dy·x̂
        let invv = _mm256_set1_ps(inv);
        let mut sa = _mm256_setzero_ps();
        let mut sb = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            let d = load(dy, i);
            let xh = _mm256_mul_ps(_mm256_sub_ps(load(x, i), mv), invv);
            sa = _mm256_add_ps(sa, d);
            sb = _mm256_fmadd_ps(d, xh, sb);
            i += LANES;
        }
        let mut a = hsum(sa);
        let mut b = hsum(sb);
        for j in main..n {
            a += dy[j];
            b += dy[j] * (x[j] - mean) * inv;
        }
        a *= inv_n;
        b *= inv_n;
        // dx = inv·(dy − a − x̂·b)
        let av = _mm256_set1_ps(a);
        let bv = _mm256_set1_ps(b);
        let mut i = 0;
        while i < main {
            let xh = _mm256_mul_ps(_mm256_sub_ps(load(x, i), mv), invv);
            let t = _mm256_sub_ps(_mm256_sub_ps(load(dy, i), av), _mm256_mul_ps(xh, bv));
            store(dx, i, _mm256_mul_ps(t, invv));
            i += LANES;
        }
        for j in main..n {
            dx[j] = inv * (dy[j] - a - (x[j] - mean) * inv * b);
        }
    }

    /// Fused Adam/AdamW update: one load/store pass over `p`, `m`, `v`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_step_slice(
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &crate::backend::AdamStepSpec,
    ) {
        let n = p.len();
        let main = n - n % LANES;
        let b1 = _mm256_set1_ps(s.beta1);
        let omb1 = _mm256_set1_ps(1.0 - s.beta1);
        let b2 = _mm256_set1_ps(s.beta2);
        let omb2 = _mm256_set1_ps(1.0 - s.beta2);
        let ibc1 = _mm256_set1_ps(1.0 / s.bc1);
        let ibc2 = _mm256_set1_ps(1.0 / s.bc2);
        let lr = _mm256_set1_ps(s.lr);
        let eps = _mm256_set1_ps(s.eps);
        let lrwd = _mm256_set1_ps(s.lr * s.weight_decay);
        let mut i = 0;
        while i < main {
            let gv = load(g, i);
            let mi = _mm256_fmadd_ps(load(m, i), b1, _mm256_mul_ps(gv, omb1));
            let vi = _mm256_fmadd_ps(load(v, i), b2, _mm256_mul_ps(_mm256_mul_ps(gv, gv), omb2));
            store(m, i, mi);
            store(v, i, vi);
            let m_hat = _mm256_mul_ps(mi, ibc1);
            let v_hat = _mm256_mul_ps(vi, ibc2);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
            let update = _mm256_mul_ps(lr, _mm256_div_ps(m_hat, denom));
            let pv = load(p, i);
            let decay = _mm256_mul_ps(lrwd, pv);
            store(p, i, _mm256_sub_ps(_mm256_sub_ps(pv, update), decay));
            i += LANES;
        }
        for j in main..n {
            let gi = g[j];
            m[j] = m[j] * s.beta1 + gi * (1.0 - s.beta1);
            v[j] = v[j] * s.beta2 + gi * gi * (1.0 - s.beta2);
            let m_hat = m[j] * (1.0 / s.bc1);
            let v_hat = v[j] * (1.0 / s.bc2);
            let update = s.lr * (m_hat / (v_hat.sqrt() + s.eps));
            let decay = s.lr * s.weight_decay * p[j];
            p[j] = p[j] - update - decay;
        }
    }

    /// Fused SGD(+momentum) update.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sgd_step_slice(
        p: &mut [f32],
        g: &[f32],
        vel: Option<&mut [f32]>,
        lr: f32,
        mom: f32,
    ) {
        let n = p.len();
        let main = n - n % LANES;
        let lrv = _mm256_set1_ps(lr);
        match vel {
            Some(vel) => {
                let momv = _mm256_set1_ps(mom);
                let mut i = 0;
                while i < main {
                    let vi = _mm256_fmadd_ps(load(vel, i), momv, load(g, i));
                    store(vel, i, vi);
                    store(p, i, _mm256_fnmadd_ps(lrv, vi, load(p, i)));
                    i += LANES;
                }
                for j in main..n {
                    vel[j] = vel[j] * mom + g[j];
                    p[j] -= lr * vel[j];
                }
            }
            None => {
                let mut i = 0;
                while i < main {
                    store(p, i, _mm256_fnmadd_ps(lrv, load(g, i), load(p, i)));
                    i += LANES;
                }
                for j in main..n {
                    p[j] -= lr * g[j];
                }
            }
        }
    }
}

// ===================================================== dispatch surface
//
// Safe entry points: dispatch on the given level, fall back to the scalar
// pair member when the wide path is unavailable. All are whole-slice
// operations with data-independent lane/tail splits.

macro_rules! dispatch_map {
    ($name:ident) => {
        /// Elementwise kernel; see module docs for the numerical contract.
        pub fn $name(level: SimdLevel, x: &[f32], out: &mut [f32]) {
            debug_assert_eq!(x.len(), out.len());
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2Fma => unsafe { avx2::$name(x, out) },
                #[allow(unreachable_patterns)]
                _ => scalar::$name(x, out),
            }
        }
    };
}

dispatch_map!(exp_slice);
dispatch_map!(tanh_slice);
dispatch_map!(gelu_slice);
dispatch_map!(gelu_grad_slice);

macro_rules! dispatch_map_inplace {
    ($name:ident) => {
        /// In-place elementwise kernel (same lane/tail contract).
        pub fn $name(level: SimdLevel, x: &mut [f32]) {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2Fma => unsafe { avx2::$name(x) },
                #[allow(unreachable_patterns)]
                _ => scalar::$name(x),
            }
        }
    };
}

dispatch_map_inplace!(exp_slice_inplace);
dispatch_map_inplace!(tanh_slice_inplace);
dispatch_map_inplace!(gelu_slice_inplace);
dispatch_map_inplace!(gelu_grad_slice_inplace);

/// Numerically-stable softmax of one row (lane-wise max reduction on the
/// wide path).
pub fn softmax_row(level: SimdLevel, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::softmax_row(x, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::softmax_row(x, out),
    }
}

/// Attention score block: `scores[r·n + j] = dot(q_r, k_j) · scale` for a
/// block of `ib` query rows against all `n` key rows.
#[allow(clippy::too_many_arguments)]
pub fn attn_scores_block(
    level: SimdLevel,
    q_block: &[f32],
    km: &[f32],
    scores: &mut [f32],
    ib: usize,
    n: usize,
    d: usize,
    scale: f32,
) {
    debug_assert!(q_block.len() >= ib * d && km.len() >= n * d && scores.len() >= ib * n);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe {
            avx2::attn_scores_block(q_block, km, scores, ib, n, d, scale)
        },
        #[allow(unreachable_patterns)]
        _ => scalar::attn_scores_block(q_block, km, scores, ib, n, d, scale),
    }
}

/// Attention value block: `out_r = Σ_j probs[r·n + j] · v_j` (rows of
/// `out_block` are overwritten).
pub fn attn_pv_block(
    level: SimdLevel,
    probs: &[f32],
    vm: &[f32],
    out_block: &mut [f32],
    ib: usize,
    n: usize,
    d: usize,
) {
    debug_assert!(probs.len() >= ib * n && vm.len() >= n * d && out_block.len() >= ib * d);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::attn_pv_block(probs, vm, out_block, ib, n, d) },
        #[allow(unreachable_patterns)]
        _ => scalar::attn_pv_block(probs, vm, out_block, ib, n, d),
    }
}

/// `acc += w·v` elementwise.
pub fn axpy(level: SimdLevel, w: f32, v: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(v.len(), acc.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::axpy(w, v, acc) },
        #[allow(unreachable_patterns)]
        _ => {
            for (a, &x) in acc.iter_mut().zip(v) {
                *a += w * x;
            }
        }
    }
}

/// Dot product of two equal-length rows.
pub fn dot(level: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::dot(a, b) },
        #[allow(unreachable_patterns)]
        _ => a.iter().zip(b).map(|(&x, &y)| x * y).sum(),
    }
}

/// Softmax backward of one row: `dx = (dy − Σ dy⊙y) ⊙ y`.
pub fn softmax_grad_row(level: SimdLevel, y: &[f32], dy: &[f32], dx: &mut [f32]) {
    debug_assert!(y.len() == dy.len() && y.len() == dx.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::softmax_grad_row(y, dy, dx) },
        #[allow(unreachable_patterns)]
        _ => scalar::softmax_grad_row(y, dy, dx),
    }
}

/// Layernorm backward of one row (per-row stats recomputed from `x`).
pub fn layernorm_grad_row(level: SimdLevel, x: &[f32], dy: &[f32], dx: &mut [f32], eps: f32) {
    debug_assert!(x.len() == dy.len() && x.len() == dx.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::layernorm_grad_row(x, dy, dx, eps) },
        #[allow(unreachable_patterns)]
        _ => scalar::layernorm_grad_row(x, dy, dx, eps),
    }
}

/// Fused Adam/AdamW update over one chunk (single pass over `p`/`m`/`v`).
pub fn adam_step_slice(
    level: SimdLevel,
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    s: &crate::backend::AdamStepSpec,
) {
    debug_assert!(p.len() == g.len() && p.len() == m.len() && p.len() == v.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::adam_step_slice(p, g, m, v, s) },
        #[allow(unreachable_patterns)]
        _ => scalar::adam_step_slice(p, g, m, v, s),
    }
}

/// Fused SGD(+momentum) update over one chunk.
pub fn sgd_step_slice(
    level: SimdLevel,
    p: &mut [f32],
    g: &[f32],
    vel: Option<&mut [f32]>,
    lr: f32,
    momentum: f32,
) {
    debug_assert!(p.len() == g.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::sgd_step_slice(p, g, vel, lr, momentum) },
        #[allow(unreachable_patterns)]
        _ => scalar::sgd_step_slice(p, g, vel, lr, momentum),
    }
}

/// `MR×NR = 4×16` GEBP register microkernel over packed panels; `acc` is
/// overwritten with the tile product (callers add it into C). The scalar
/// fallback runs the identical accumulation order without FMA.
pub fn microkernel_4x16(
    level: SimdLevel,
    apack: &[f32],
    panel: &[f32],
    kc: usize,
    acc: &mut [[f32; 16]; 4],
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::microkernel_4x16(apack, panel, kc, &mut acc[..]) },
        #[allow(unreachable_patterns)]
        _ => {
            *acc = [[0.0; 16]; 4];
            for kk in 0..kc {
                let brow = &panel[kk * 16..kk * 16 + 16];
                for r in 0..4 {
                    let av = apack[kk * 4 + r];
                    let arow = &mut acc[r];
                    for (c, &bv) in arow.iter_mut().zip(brow) {
                        *c += av * bv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_levels() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Scalar];
        if detect() == SimdLevel::Avx2Fma {
            v.push(SimdLevel::Avx2Fma);
        }
        v
    }

    #[test]
    fn exp_matches_libm_over_range() {
        for lv in both_levels() {
            let xs: Vec<f32> = (-2000..2000).map(|i| i as f32 * 0.05).collect();
            let mut out = vec![0.0; xs.len()];
            exp_slice(lv, &xs, &mut out);
            for (&x, &e) in xs.iter().zip(&out) {
                let r = x.exp();
                if r.is_infinite() {
                    assert_eq!(e, r, "{lv:?} exp({x})");
                    continue;
                }
                let tol = 2e-6 * r.max(1e-30);
                assert!((e - r).abs() <= tol, "{lv:?} exp({x}) = {e}, libm {r}");
            }
        }
    }

    #[test]
    fn exp_edge_cases_match_libm() {
        for lv in both_levels() {
            let xs = [
                88.7,
                88.73,
                200.0,
                f32::INFINITY,
                -87.3,
                -90.0,
                f32::NAN,
                0.0,
                -0.0,
            ];
            let mut out = [0.0; 9];
            exp_slice(lv, &xs, &mut out);
            assert_eq!(out[1], f32::INFINITY, "{lv:?}: just past overflow");
            assert_eq!(out[2], f32::INFINITY, "{lv:?}: far past overflow");
            assert_eq!(out[3], f32::INFINITY, "{lv:?}: exp(inf)");
            assert!(out[6].is_nan(), "{lv:?}: exp(NaN) must be NaN");
            assert!((out[7] - 1.0).abs() < 1e-6 && (out[8] - 1.0).abs() < 1e-6);
            // Below-normal-range inputs: tiny, within 1.2e-38 of libm.
            assert!((out[5] - (-90.0f32).exp()).abs() < 1.3e-38, "{lv:?}");
        }
    }

    #[test]
    fn tanh_saturates_and_propagates_nan() {
        for lv in both_levels() {
            let xs = [
                -50.0,
                -9.5,
                -1.0,
                -1e-4,
                0.0,
                1e-4,
                1.0,
                9.5,
                50.0,
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
            ];
            let mut out = [0.0; 12];
            tanh_slice(lv, &xs, &mut out);
            for (&x, &t) in xs.iter().zip(&out) {
                if x.is_nan() {
                    assert!(t.is_nan(), "{lv:?}: tanh(NaN)");
                } else {
                    assert!((t - x.tanh()).abs() < 1e-6, "{lv:?} tanh({x}) = {t}");
                }
            }
        }
    }

    #[test]
    fn gelu_and_grad_match_scalar_reference() {
        use crate::tensor::ops::{gelu_grad_scalar, gelu_scalar};
        for lv in both_levels() {
            let xs: Vec<f32> = (-400..400).map(|i| i as f32 * 0.025).collect();
            let mut g = vec![0.0; xs.len()];
            let mut dg = vec![0.0; xs.len()];
            gelu_slice(lv, &xs, &mut g);
            gelu_grad_slice(lv, &xs, &mut dg);
            for i in 0..xs.len() {
                assert!(
                    (g[i] - gelu_scalar(xs[i])).abs() < 1e-5,
                    "{lv:?} gelu({}) = {} vs {}",
                    xs[i],
                    g[i],
                    gelu_scalar(xs[i])
                );
                assert!(
                    (dg[i] - gelu_grad_scalar(xs[i])).abs() < 1e-5,
                    "{lv:?} gelu'({})",
                    xs[i]
                );
            }
        }
    }

    #[test]
    fn softmax_row_extreme_logits_stay_normalized() {
        for lv in both_levels() {
            // Logits spanning ±1e4: without max subtraction exp overflows.
            let xs = [1e4f32, -1e4, 9.9e3, 0.0, -5.0e3, 1.0e4, 17.0, -3.0, 2.5];
            let mut out = [0.0; 9];
            softmax_row(lv, &xs, &mut out);
            let s: f32 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "{lv:?}: sum {s}");
            assert!(out.iter().all(|v| v.is_finite()), "{lv:?}: {out:?}");
            // The two max logits (1e4 twice) split the mass.
            assert!((out[0] - 0.5).abs() < 1e-4 && (out[5] - 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn dot_axpy_microkernel_match_reference() {
        for lv in both_levels() {
            let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.3).sin()).collect();
            let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).cos()).collect();
            let d = dot(lv, &a, &b);
            let dref: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert!((d - dref).abs() < 1e-4, "{lv:?}: {d} vs {dref}");

            let mut acc = vec![1.0f32; 37];
            axpy(lv, 0.5, &a, &mut acc);
            for (i, &v) in acc.iter().enumerate() {
                assert!((v - (1.0 + 0.5 * a[i])).abs() < 1e-6, "{lv:?}");
            }

            let kc = 13;
            let apack: Vec<f32> = (0..4 * kc).map(|i| ((i % 9) as f32) - 4.0).collect();
            let panel: Vec<f32> = (0..16 * kc).map(|i| ((i % 7) as f32) * 0.5).collect();
            let mut acc = [[0.0f32; 16]; 4];
            microkernel_4x16(lv, &apack, &panel, kc, &mut acc);
            for r in 0..4 {
                for c in 0..16 {
                    let want: f32 = (0..kc)
                        .map(|kk| apack[kk * 4 + r] * panel[kk * 16 + c])
                        .sum();
                    assert!((acc[r][c] - want).abs() < 1e-3, "{lv:?} [{r}][{c}]");
                }
            }
        }
    }

    #[test]
    fn attn_blocks_match_reference() {
        // d = 8 exercises the hadd-tree / single-lane fast paths; d = 5 the
        // generic ragged path; n = 11 leaves a non-multiple-of-8 tail.
        for lv in both_levels() {
            for &(ib, n, d) in &[(8usize, 11usize, 8usize), (3, 16, 5), (1, 1, 1), (8, 64, 8)] {
                let q: Vec<f32> = (0..ib * d)
                    .map(|i| ((i * 13 % 31) as f32 - 15.0) * 0.1)
                    .collect();
                let k: Vec<f32> = (0..n * d)
                    .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.1)
                    .collect();
                let v: Vec<f32> = (0..n * d)
                    .map(|i| ((i * 5 % 17) as f32 - 8.0) * 0.1)
                    .collect();
                let scale = 0.35;
                let mut scores = vec![0.0f32; ib * n];
                attn_scores_block(lv, &q, &k, &mut scores, ib, n, d, scale);
                for r in 0..ib {
                    for j in 0..n {
                        let want: f32 =
                            (0..d).map(|c| q[r * d + c] * k[j * d + c]).sum::<f32>() * scale;
                        assert!(
                            (scores[r * n + j] - want).abs() < 1e-5,
                            "{lv:?} scores[{r}][{j}] (ib={ib} n={n} d={d})"
                        );
                    }
                }
                let probs: Vec<f32> = (0..ib * n).map(|i| ((i % 5) as f32 + 1.0) * 0.05).collect();
                let mut out = vec![f32::NAN; ib * d]; // must be overwritten
                attn_pv_block(lv, &probs, &v, &mut out, ib, n, d);
                for r in 0..ib {
                    for c in 0..d {
                        let want: f32 = (0..n).map(|j| probs[r * n + j] * v[j * d + c]).sum();
                        assert!(
                            (out[r * d + c] - want).abs() < 1e-5,
                            "{lv:?} out[{r}][{c}] (ib={ib} n={n} d={d})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn grad_and_step_kernels_match_scalar_pair() {
        let n = 37; // ragged tail past 4 lanes
        let y: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32 + 1.0) * 0.02).collect();
        let dy: Vec<f32> = (0..n).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.3).collect();
        let x: Vec<f32> = (0..n).map(|i| ((i * 3 % 17) as f32 - 8.0) * 0.7).collect();
        for lv in both_levels() {
            let mut dx = vec![0.0f32; n];
            softmax_grad_row(lv, &y, &dy, &mut dx);
            let mut want = vec![0.0f32; n];
            super::scalar::softmax_grad_row(&y, &dy, &mut want);
            for (a, b) in dx.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "{lv:?} softmax_grad {a} vs {b}");
            }

            let mut dx = vec![0.0f32; n];
            layernorm_grad_row(lv, &x, &dy, &mut dx, 1e-5);
            let mut want = vec![0.0f32; n];
            super::scalar::layernorm_grad_row(&x, &dy, &mut want, 1e-5);
            for (a, b) in dx.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "{lv:?} layernorm_grad {a} vs {b}");
            }

            let spec = crate::backend::AdamStepSpec {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.01,
                bc1: 0.1,
                bc2: 0.001,
            };
            let (mut p, mut m, mut v) = (
                x.clone(),
                y.clone(),
                dy.iter().map(|d| d * d).collect::<Vec<_>>(),
            );
            let (mut pw, mut mw, mut vw) = (p.clone(), m.clone(), v.clone());
            adam_step_slice(lv, &mut p, &dy, &mut m, &mut v, &spec);
            super::scalar::adam_step_slice(&mut pw, &dy, &mut mw, &mut vw, &spec);
            for (a, b) in p.iter().zip(&pw) {
                assert!((a - b).abs() < 1e-5, "{lv:?} adam {a} vs {b}");
            }

            let mut p = x.clone();
            let mut vel = y.clone();
            let mut pw = x.clone();
            let mut velw = y.clone();
            sgd_step_slice(lv, &mut p, &dy, Some(&mut vel), 0.05, 0.9);
            super::scalar::sgd_step_slice(&mut pw, &dy, Some(&mut velw), 0.05, 0.9);
            for (a, b) in p.iter().zip(&pw).chain(vel.iter().zip(&velw)) {
                assert!((a - b).abs() < 1e-5, "{lv:?} sgd {a} vs {b}");
            }
        }
    }

    #[test]
    fn feature_string_is_stable() {
        assert!(["scalar", "avx2+fma"].contains(&feature_string()));
        assert_eq!(SimdLevel::Scalar.feature_string(), "scalar");
    }
}
