//! Kernel profiling hooks: a [`Profiled`] wrapper that forwards every
//! [`Backend`] method to an inner backend, attributing wall time per
//! kernel and precision into the `cobs` metrics registry
//! (`kernel.matmul.f32`, `kernel.qlinear.int8`, …) and emitting a span
//! into whatever `cobs` trace is active on the calling thread — so a
//! traced forecast request shows its backend kernels nested under the
//! replica compute span.
//!
//! Opt-in: [`maybe_profile`] wraps only when `COASTAL_PROFILE=1` (checked
//! once per process), so the default serving path pays zero per-op cost —
//! not even a branch, because the un-wrapped `Arc<dyn Backend>` is what
//! gets installed.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use super::{AdamStepSpec, AttentionSpec, Backend, BinaryOp, MatmulSpec, UnaryOp};

/// Whether `COASTAL_PROFILE` asked for kernel attribution (memoized).
pub fn profile_requested() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        matches!(
            std::env::var("COASTAL_PROFILE").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// Wrap `b` in a [`Profiled`] when `COASTAL_PROFILE=1`, else return it
/// unchanged. Applied at every backend construction site, so profiling
/// follows whichever backend selection wins.
pub fn maybe_profile(b: Arc<dyn Backend>) -> Arc<dyn Backend> {
    if profile_requested() {
        Arc::new(Profiled::new(b))
    } else {
        b
    }
}

/// Per-kernel timing wrapper around any backend.
#[derive(Debug)]
pub struct Profiled {
    inner: Arc<dyn Backend>,
}

impl Profiled {
    pub fn new(inner: Arc<dyn Backend>) -> Self {
        Self { inner }
    }
}

/// Time `f`, record into the named registry histogram (seconds), and
/// nest a kernel span into the thread's active trace, if any.
macro_rules! timed {
    ($name:literal, $f:expr) => {{
        let _span = cobs::trace::span($name);
        let start = Instant::now();
        let out = $f;
        cobs::histogram!($name).record_duration(start.elapsed());
        out
    }};
}

impl Backend for Profiled {
    fn name(&self) -> &'static str {
        // Transparent: selection tests and RunStamp see the real backend.
        self.inner.name()
    }

    fn par_threshold(&self) -> usize {
        self.inner.par_threshold()
    }

    fn unary(&self, op: UnaryOp, x: &[f32], out: &mut [f32]) {
        timed!("kernel.unary.f32", self.inner.unary(op, x, out))
    }

    fn unary_inplace(&self, op: UnaryOp, x: &mut [f32]) {
        timed!("kernel.unary.f32", self.inner.unary_inplace(op, x))
    }

    fn binary(&self, op: BinaryOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        timed!("kernel.binary.f32", self.inner.binary(op, a, b, out))
    }

    fn binary_inplace(&self, op: BinaryOp, acc: &mut [f32], b: &[f32]) {
        timed!("kernel.binary.f32", self.inner.binary_inplace(op, acc, b))
    }

    fn binary_strided(
        &self,
        op: BinaryOp,
        a: &[f32],
        sa: &[usize],
        b: &[f32],
        sb: &[usize],
        out_shape: &[usize],
        out: &mut [f32],
    ) {
        timed!(
            "kernel.binary.f32",
            self.inner.binary_strided(op, a, sa, b, sb, out_shape, out)
        )
    }

    fn sum(&self, x: &[f32]) -> f64 {
        timed!("kernel.reduce.f32", self.inner.sum(x))
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], row: usize) {
        timed!("kernel.softmax.f32", self.inner.softmax_rows(x, out, row))
    }

    fn layernorm_rows(&self, x: &[f32], out: &mut [f32], row: usize, eps: f32) {
        timed!(
            "kernel.layernorm.f32",
            self.inner.layernorm_rows(x, out, row, eps)
        )
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], spec: &MatmulSpec) {
        timed!("kernel.matmul.f32", self.inner.matmul(a, b, out, spec))
    }

    fn attention(&self, q: &[f32], k: &[f32], v: &[f32], out: &mut [f32], spec: &AttentionSpec) {
        timed!(
            "kernel.attention.f32",
            self.inner.attention(q, k, v, out, spec)
        )
    }

    fn matmul_grad_a(&self, dc: &[f32], b: &[f32], da: &mut [f32], spec: &MatmulSpec) {
        timed!(
            "kernel.matmul_grad.f32",
            self.inner.matmul_grad_a(dc, b, da, spec)
        )
    }

    fn matmul_grad_b(&self, a: &[f32], dc: &[f32], db: &mut [f32], spec: &MatmulSpec) {
        timed!(
            "kernel.matmul_grad.f32",
            self.inner.matmul_grad_b(a, dc, db, spec)
        )
    }

    fn col_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        timed!("kernel.reduce.f32", self.inner.col_sums(x, out, row))
    }

    fn row_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        timed!("kernel.reduce.f32", self.inner.row_sums(x, out, row))
    }

    fn softmax_grad_rows(&self, y: &[f32], dy: &[f32], dx: &mut [f32], row: usize) {
        timed!(
            "kernel.softmax_grad.f32",
            self.inner.softmax_grad_rows(y, dy, dx, row)
        )
    }

    fn layernorm_grad_rows(&self, x: &[f32], dy: &[f32], dx: &mut [f32], row: usize, eps: f32) {
        timed!(
            "kernel.layernorm_grad.f32",
            self.inner.layernorm_grad_rows(x, dy, dx, row, eps)
        )
    }

    fn attention_grad(
        &self,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        dout: &[f32],
        dq: &mut [f32],
        dk: &mut [f32],
        dv: &mut [f32],
        spec: &AttentionSpec,
    ) {
        timed!(
            "kernel.attention_grad.f32",
            self.inner.attention_grad(q, k, v, dout, dq, dk, dv, spec)
        )
    }

    fn qlinear_i8(
        &self,
        acts: &crate::quant::QuantActs,
        w: &crate::quant::QuantizedTensor,
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        timed!(
            "kernel.qlinear.int8",
            self.inner.qlinear_i8(acts, w, bias, out)
        )
    }

    fn adam_step(&self, p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], s: &AdamStepSpec) {
        timed!("kernel.adam.f32", self.inner.adam_step(p, g, m, v, s))
    }

    fn sgd_step(&self, p: &mut [f32], g: &[f32], vel: Option<&mut [f32]>, lr: f32, momentum: f32) {
        timed!(
            "kernel.sgd.f32",
            self.inner.sgd_step(p, g, vel, lr, momentum)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ScalarRef;

    #[test]
    fn profiled_records_kernel_histograms_and_matches_inner() {
        let raw = ScalarRef;
        let prof = Profiled::new(Arc::new(ScalarRef));
        assert_eq!(prof.name(), "scalar");

        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let b = vec![5.0f32, 6.0, 7.0, 8.0];
        let spec = MatmulSpec {
            m: 2,
            k: 2,
            n: 2,
            batch_offsets: &[(0, 0)],
            bias: None,
        };
        let mut out_raw = vec![0.0f32; 4];
        let mut out_prof = vec![0.0f32; 4];
        raw.matmul(&a, &b, &mut out_raw, &spec);
        let before = cobs::metrics::global()
            .histogram("kernel.matmul.f32")
            .count();
        prof.matmul(&a, &b, &mut out_prof, &spec);
        assert_eq!(out_raw, out_prof);
        let after = cobs::metrics::global()
            .histogram("kernel.matmul.f32")
            .count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn profiled_kernels_emit_spans_into_active_trace() {
        cobs::trace::set_enabled(true);
        let t = cobs::trace::start("test");
        let prof = Profiled::new(Arc::new(ScalarRef));
        {
            let _e = cobs::trace::enter(&t, t.root());
            let mut out = vec![0.0f32; 4];
            prof.softmax_rows(&[1.0, 2.0, 3.0, 4.0], &mut out, 2);
        }
        t.close();
        assert!(t.render().contains("kernel.softmax.f32"), "{}", t.render());
    }
}
