//! Pluggable compute backends for the tensor kernel layer.
//!
//! Every hot kernel of the crate — elementwise chains, reductions, softmax,
//! batched matmul, and the attention score-softmax-value composite — is
//! expressed against the [`Backend`] trait, with two implementations:
//!
//! - [`ScalarRef`]: simple, obviously-correct serial loops. The correctness
//!   oracle that property tests compare against, and a debugging fallback.
//! - [`Blocked`] (the default): rayon-parallel, cache-blocked and
//!   panel-packed matmul, fused attention, and in-place elementwise
//!   variants that avoid the one-allocation-per-op pattern.
//!
//! Dispatch happens once per kernel call (an `Arc<dyn Backend>` virtual
//! call), never per element. Selection is layered:
//!
//! 1. a thread-local scope stack ([`scoped`]) — used by models/trainers to
//!    pin a backend for one forward/backward pass;
//! 2. the process-wide default ([`set_global`]);
//! 3. the environment: `COASTAL_BACKEND=scalar|blocked` (default `blocked`),
//!    with `COASTAL_PAR_THRESHOLD=<elems>` tuning when [`Blocked`] kernels
//!    go parallel.

mod blocked;
mod profiled;
mod scalar;

pub use blocked::Blocked;
pub use profiled::{maybe_profile, profile_requested, Profiled};
pub use scalar::ScalarRef;

use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

// ----------------------------------------------------------------- errors

/// Typed shape mismatch, surfaced instead of a panic so callers (e.g. the
/// pipeline) can report bad batch shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Elementwise broadcast failure.
    Broadcast { lhs: Vec<usize>, rhs: Vec<usize> },
    /// Contracted dimensions disagree: `(..., m, k) @ (..., k', n)`.
    MatmulInner { lhs: Vec<usize>, rhs: Vec<usize> },
    /// Leading (batch) dims of a matmul don't broadcast.
    MatmulBatch { lhs: Vec<usize>, rhs: Vec<usize> },
    /// Operand rank too small for the operation.
    Rank {
        op: &'static str,
        shape: Vec<usize>,
        min_ndim: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Broadcast { lhs, rhs } => {
                write!(f, "broadcast {lhs:?} vs {rhs:?}")
            }
            ShapeError::MatmulInner { lhs, rhs } => {
                write!(f, "matmul inner dim mismatch: {lhs:?} @ {rhs:?}")
            }
            ShapeError::MatmulBatch { lhs, rhs } => {
                write!(f, "matmul batch broadcast {lhs:?} vs {rhs:?}")
            }
            ShapeError::Rank {
                op,
                shape,
                min_ndim,
            } => {
                write!(f, "{op} needs ndim >= {min_ndim}, got {shape:?}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

// -------------------------------------------------------------- op enums

/// Named elementwise unary kernels (dispatch once, not per element).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum UnaryOp {
    Neg,
    Abs,
    Square,
    Sqrt,
    Rsqrt,
    Exp,
    Tanh,
    Relu,
    Gelu,
    GeluGrad,
    /// Heaviside step of the ReLU input (`1` where `x > 0`, else `0`).
    ReluGrad,
    /// `1 - x²` — the tanh derivative expressed in terms of `y = tanh(x)`.
    TanhGrad,
    Scale(f32),
    AddScalar(f32),
}

impl UnaryOp {
    /// Scalar semantics of the op (shared by every backend).
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Abs => x.abs(),
            UnaryOp::Square => x * x,
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Gelu => crate::tensor::ops::gelu_scalar(x),
            UnaryOp::GeluGrad => crate::tensor::ops::gelu_grad_scalar(x),
            UnaryOp::ReluGrad => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::TanhGrad => 1.0 - x * x,
            UnaryOp::Scale(c) => x * c,
            UnaryOp::AddScalar(c) => x + c,
        }
    }
}

/// Named elementwise binary kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
        }
    }
}

// -------------------------------------------------------------- kernel specs

/// Geometry of a batched matmul with broadcast-resolved batch indices.
///
/// `a` is `batch_offsets.len()` matrices of `m×k` (indexed by the first
/// element of each pair, in units of whole matrices), `b` likewise `k×n`;
/// `out` is dense `m×n` per output batch.
pub struct MatmulSpec<'a> {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Per output batch: (a matrix index, b matrix index).
    pub batch_offsets: &'a [(usize, usize)],
    /// Optional row of length `n` added to every output row (fused linear
    /// bias).
    pub bias: Option<&'a [f32]>,
}

/// Geometry of a fused `softmax(Q·Kᵀ·scale + mask)·V` kernel.
///
/// `q`, `k`, `v`, `out` are each `batch` contiguous `n×d` matrices, where
/// `batch = B·heads` flattened row-major as `(B, heads)`.
pub struct AttentionSpec<'a> {
    pub batch: usize,
    pub heads: usize,
    pub n: usize,
    pub d: usize,
    pub scale: f32,
    /// Additive mask `(windows, n, n)`; batch matrix `i` uses window
    /// `(i / heads) % windows` (the Swin shifted-window layout).
    pub mask: Option<&'a [f32]>,
    pub mask_windows: usize,
}

impl AttentionSpec<'_> {
    /// Mask row for (batch matrix `bh`, query row `i`), if any.
    #[inline]
    pub fn mask_row(&self, bh: usize, i: usize) -> Option<&[f32]> {
        self.mask.map(|m| {
            let w = (bh / self.heads) % self.mask_windows;
            let base = (w * self.n + i) * self.n;
            &m[base..base + self.n]
        })
    }
}

/// Hyperparameters of one fused Adam/AdamW update ([`Backend::adam_step`]).
///
/// `bc1`/`bc2` are the bias corrections `1 − βᵢᵗ` for the *current* step,
/// computed by the optimizer (the kernel stays stateless).
#[derive(Copy, Clone, Debug)]
pub struct AdamStepSpec {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled (AdamW) decay; `0` disables it.
    pub weight_decay: f32,
    pub bc1: f32,
    pub bc2: f32,
}

// ------------------------------------------------------------------ trait

/// The kernel surface every compute backend implements.
///
/// All slices are dense row-major `f32`; shape/stride resolution happens in
/// the tensor layer, so backends only see flat geometry.
pub trait Backend: Send + Sync + fmt::Debug {
    /// Short identifier (`"scalar"`, `"blocked"`).
    fn name(&self) -> &'static str;

    /// Element count above which elementwise/layout kernels may go
    /// parallel. `usize::MAX` keeps a backend strictly serial.
    fn par_threshold(&self) -> usize;

    /// `out[i] = op(x[i])`.
    fn unary(&self, op: UnaryOp, x: &[f32], out: &mut [f32]);

    /// `x[i] = op(x[i])` — fused in-place variant (no allocation).
    fn unary_inplace(&self, op: UnaryOp, x: &mut [f32]) {
        // Default: serial in-place loop; backends may parallelize.
        for v in x.iter_mut() {
            *v = op.apply(*v);
        }
    }

    /// `out[i] = op(a[i], b[i])` for equal-shape operands.
    fn binary(&self, op: BinaryOp, a: &[f32], b: &[f32], out: &mut [f32]);

    /// `acc[i] = op(acc[i], b[i])` in place for equal-shape operands.
    fn binary_inplace(&self, op: BinaryOp, acc: &mut [f32], b: &[f32]) {
        for (x, &y) in acc.iter_mut().zip(b) {
            *x = op.apply(*x, y);
        }
    }

    /// Broadcast elementwise: `sa`/`sb` are per-output-dim strides into the
    /// operands (0 on broadcast dims), `out` is dense over `out_shape`.
    #[allow(clippy::too_many_arguments)]
    fn binary_strided(
        &self,
        op: BinaryOp,
        a: &[f32],
        sa: &[usize],
        b: &[f32],
        sb: &[usize],
        out_shape: &[usize],
        out: &mut [f32],
    );

    /// Sum of all elements with an f64 accumulator.
    fn sum(&self, x: &[f32]) -> f64;

    /// Row-wise numerically-stable softmax: `x` and `out` are `len/row`
    /// rows of `row` elements.
    fn softmax_rows(&self, x: &[f32], out: &mut [f32], row: usize);

    /// Row-wise layer normalization (no affine): zero mean / unit variance
    /// per row of `row` elements.
    fn layernorm_rows(&self, x: &[f32], out: &mut [f32], row: usize, eps: f32);

    /// Batched matmul; `out` must be zero-filled (the kernel accumulates,
    /// seeding rows from `spec.bias` when present).
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], spec: &MatmulSpec);

    /// Fused attention `softmax(Q·Kᵀ·scale + mask)·V` without
    /// materializing the `(batch, n, n)` score tensor (backends may choose
    /// to materialize per-row/block internally).
    fn attention(&self, q: &[f32], k: &[f32], v: &[f32], out: &mut [f32], spec: &AttentionSpec);

    // ------------------------------------------------------- backward kernels
    //
    // Adjoints of the forward kernels above, with serial reference default
    // bodies (the oracle `ScalarRef` inherits these; `Blocked` overrides
    // them with blocked/SIMD/parallel implementations). All outputs are
    // accumulated into (callers pre-zero or seed them), and every override
    // must keep results bitwise invariant under the rayon thread count.

    /// Matmul adjoint w.r.t. A: `da[bi] += dc[bi] · B[bo]ᵀ` per output
    /// batch, where `spec` is the *forward* geometry (`m,k,n`,
    /// `batch_offsets`; `bias` is ignored). `da` holds one dense `m×k`
    /// matrix per entry of `spec.batch_offsets` — broadcast batch
    /// reduction happens in the tensor layer.
    fn matmul_grad_a(&self, dc: &[f32], b: &[f32], da: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        for (bi, &(_, bo)) in spec.batch_offsets.iter().enumerate() {
            let dc_mat = &dc[bi * m * n..(bi + 1) * m * n];
            let b_mat = &b[bo * k * n..(bo + 1) * k * n];
            let da_mat = &mut da[bi * m * k..(bi + 1) * m * k];
            for i in 0..m {
                for kk in 0..k {
                    let mut acc = 0.0f32;
                    for j in 0..n {
                        acc += dc_mat[i * n + j] * b_mat[kk * n + j];
                    }
                    da_mat[i * k + kk] += acc;
                }
            }
        }
    }

    /// Matmul adjoint w.r.t. B: `db[bi] += A[ao]ᵀ · dc[bi]` per output
    /// batch (dense `k×n` matrices; same conventions as
    /// [`Backend::matmul_grad_a`]).
    fn matmul_grad_b(&self, a: &[f32], dc: &[f32], db: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        for (bi, &(ao, _)) in spec.batch_offsets.iter().enumerate() {
            let a_mat = &a[ao * m * k..(ao + 1) * m * k];
            let dc_mat = &dc[bi * m * n..(bi + 1) * m * n];
            let db_mat = &mut db[bi * k * n..(bi + 1) * k * n];
            for kk in 0..k {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for i in 0..m {
                        acc += a_mat[i * k + kk] * dc_mat[i * n + j];
                    }
                    db_mat[kk * n + j] += acc;
                }
            }
        }
    }

    /// Column sums over rows of length `row`: `out[j] += Σ_i x[i·row + j]`
    /// (the linear-bias gradient and leading-axis reduction kernel).
    /// Accumulation runs in row order for every column.
    fn col_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        for r in x.chunks_exact(row) {
            for (o, &v) in out.iter_mut().zip(r) {
                *o += v;
            }
        }
    }

    /// Row sums: `out[i] += Σ_j x[i·row + j]` (trailing-axis reduction
    /// kernel), serial f32 accumulation within each row.
    fn row_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        for (o, r) in out.iter_mut().zip(x.chunks_exact(row)) {
            *o += r.iter().sum::<f32>();
        }
    }

    /// Softmax backward per row: given `y = softmax(x)` and upstream `dy`,
    /// `dx = (dy − Σ_j dy_j·y_j) ⊙ y`.
    fn softmax_grad_rows(&self, y: &[f32], dy: &[f32], dx: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        for ((yr, dyr), dxr) in y
            .chunks_exact(row)
            .zip(dy.chunks_exact(row))
            .zip(dx.chunks_exact_mut(row))
        {
            let s: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
            for ((o, &yv), &dv) in dxr.iter_mut().zip(yr).zip(dyr) {
                *o = (dv - s) * yv;
            }
        }
    }

    /// Backward of [`Backend::layernorm_rows`] (no affine). Per-row stats
    /// are recomputed from `x`, then with `x̂ = (x − μ)·inv`:
    /// `dx = inv·(dy − mean(dy) − x̂·mean(dy ⊙ x̂))`.
    fn layernorm_grad_rows(&self, x: &[f32], dy: &[f32], dx: &mut [f32], row: usize, eps: f32) {
        if row == 0 {
            return;
        }
        let inv_n = 1.0 / row as f32;
        for ((xr, dyr), dxr) in x
            .chunks_exact(row)
            .zip(dy.chunks_exact(row))
            .zip(dx.chunks_exact_mut(row))
        {
            let mean = xr.iter().sum::<f32>() * inv_n;
            let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() * inv_n;
            let inv = 1.0 / (var + eps).sqrt();
            let mut a = 0.0f32; // Σ dy
            let mut b = 0.0f32; // Σ dy·x̂
            for (&dv, &xv) in dyr.iter().zip(xr) {
                a += dv;
                b += dv * (xv - mean) * inv;
            }
            a *= inv_n;
            b *= inv_n;
            for ((o, &dv), &xv) in dxr.iter_mut().zip(dyr).zip(xr) {
                *o = inv * (dv - a - (xv - mean) * inv * b);
            }
        }
    }

    /// Backward of the fused attention kernel. Probabilities are recomputed
    /// from `q`/`k`/mask (only `O(n²)` scratch per batch-head, never a
    /// `(batch, n, n)` tensor), then `dq`/`dk`/`dv` are accumulated:
    /// `dV += Pᵀ·dO`, `dP = dO·Vᵀ`, `dS = (dP − rowsum(dP⊙P))⊙P·scale`,
    /// `dQ += dS·K`, `dK += dSᵀ·Q`.
    #[allow(clippy::too_many_arguments)]
    fn attention_grad(
        &self,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        dout: &[f32],
        dq: &mut [f32],
        dk: &mut [f32],
        dv: &mut [f32],
        spec: &AttentionSpec,
    ) {
        let (n, d) = (spec.n, spec.d);
        let mat = n * d;
        if mat == 0 {
            return;
        }
        let mut probs = vec![0.0f32; n * n];
        let mut ds = vec![0.0f32; n];
        for bh in 0..spec.batch {
            let qm = &q[bh * mat..(bh + 1) * mat];
            let km = &k[bh * mat..(bh + 1) * mat];
            let vm = &v[bh * mat..(bh + 1) * mat];
            let dom = &dout[bh * mat..(bh + 1) * mat];
            // Recompute P = softmax(Q·Kᵀ·scale + mask) row by row.
            for i in 0..n {
                let q_row = &qm[i * d..(i + 1) * d];
                let mask_row = spec.mask_row(bh, i);
                let p_row = &mut probs[i * n..(i + 1) * n];
                for (j, s) in p_row.iter_mut().enumerate() {
                    let k_row = &km[j * d..(j + 1) * d];
                    let mut acc = 0.0f32;
                    for c in 0..d {
                        acc += q_row[c] * k_row[c];
                    }
                    *s = acc * spec.scale + mask_row.map_or(0.0, |mr| mr[j]);
                }
                let mx = p_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                for s in p_row.iter_mut() {
                    *s = (*s - mx).exp();
                    denom += *s;
                }
                let inv = 1.0 / denom;
                for s in p_row.iter_mut() {
                    *s *= inv;
                }
            }
            let dqm = &mut dq[bh * mat..(bh + 1) * mat];
            let dkm = &mut dk[bh * mat..(bh + 1) * mat];
            let dvm = &mut dv[bh * mat..(bh + 1) * mat];
            for i in 0..n {
                let p_row = &probs[i * n..(i + 1) * n];
                let do_row = &dom[i * d..(i + 1) * d];
                // dV += P_i ⊗ dO_i ; dP_ij = dO_i · V_j.
                let mut srow = 0.0f32;
                for (j, dsj) in ds.iter_mut().enumerate() {
                    let v_row = &vm[j * d..(j + 1) * d];
                    let mut acc = 0.0f32;
                    for c in 0..d {
                        dvm[j * d + c] += p_row[j] * do_row[c];
                        acc += do_row[c] * v_row[c];
                    }
                    *dsj = acc;
                    srow += acc * p_row[j];
                }
                // dS_ij = (dP_ij − Σ_j dP⊙P) · P_ij · scale, then
                // dQ_i += dS_i · K ; dK_j += dS_ij · Q_i.
                let q_row = &qm[i * d..(i + 1) * d];
                for (j, dsj) in ds.iter().enumerate() {
                    let w = (dsj - srow) * p_row[j] * spec.scale;
                    let k_row = &km[j * d..(j + 1) * d];
                    for c in 0..d {
                        dqm[i * d + c] += w * k_row[c];
                        dkm[j * d + c] += w * q_row[c];
                    }
                }
            }
        }
    }

    // ---------------------------------------------------- quantized inference

    /// Fused int8 linear: `out[m, n] = dequant(qx · qW) + bias`, where the
    /// activations were dynamically quantized with
    /// [`crate::quant::quantize_acts`] and the weight packed by
    /// [`crate::quant::QuantizedTensor::quantize`]. The default body is the
    /// serial scalar oracle; [`Blocked`] overrides it with the AVX2
    /// `maddubs` microkernel and a deterministic row-parallel split (the
    /// integer accumulation is exact, so outputs are bitwise identical
    /// across backends and thread counts).
    fn qlinear_i8(
        &self,
        acts: &crate::quant::QuantActs,
        w: &crate::quant::QuantizedTensor,
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        crate::quant::qgemm(crate::simd::SimdLevel::Scalar, acts, w, bias, out, false);
    }

    // ------------------------------------------------- fused optimizer steps

    /// One fused Adam/AdamW update over a parameter slice: updates `m`,
    /// `v`, and `p` in a single pass with no temporaries.
    fn adam_step(&self, p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], s: &AdamStepSpec) {
        for i in 0..p.len() {
            let gi = g[i];
            m[i] = m[i] * s.beta1 + gi * (1.0 - s.beta1);
            v[i] = v[i] * s.beta2 + gi * gi * (1.0 - s.beta2);
            let m_hat = m[i] * (1.0 / s.bc1);
            let v_hat = v[i] * (1.0 / s.bc2);
            let update = s.lr * (m_hat / (v_hat.sqrt() + s.eps));
            // Decoupled decay reads the pre-update weight (AdamW).
            let decay = s.lr * s.weight_decay * p[i];
            p[i] = p[i] - update - decay;
        }
    }

    /// One fused SGD(+momentum) update: `vel = momentum·vel + g` (when
    /// `vel` is present), `p −= lr·vel` — single pass, no temporaries.
    fn sgd_step(&self, p: &mut [f32], g: &[f32], vel: Option<&mut [f32]>, lr: f32, momentum: f32) {
        match vel {
            Some(vel) => {
                for i in 0..p.len() {
                    vel[i] = vel[i] * momentum + g[i];
                    p[i] -= lr * vel[i];
                }
            }
            None => {
                for (pv, &gv) in p.iter_mut().zip(g) {
                    *pv -= lr * gv;
                }
            }
        }
    }
}

// -------------------------------------------------------------- selection

static GLOBAL: RwLock<Option<Arc<dyn Backend>>> = RwLock::new(None);

thread_local! {
    static SCOPE_STACK: RefCell<Vec<Arc<dyn Backend>>> = const { RefCell::new(Vec::new()) };
}

/// Process default from the environment (`COASTAL_BACKEND`), computed once.
fn env_default() -> Arc<dyn Backend> {
    static D: OnceLock<Arc<dyn Backend>> = OnceLock::new();
    D.get_or_init(|| {
        maybe_profile(match std::env::var("COASTAL_BACKEND").as_deref() {
            Ok("scalar") | Ok("scalar_ref") | Ok("ref") => Arc::new(ScalarRef),
            // Unknown names fall back to the fast path: kernels must never
            // silently disappear because of a typo'd env var.
            _ => Arc::new(Blocked::from_env()) as Arc<dyn Backend>,
        })
    })
    .clone()
}

/// The backend active on this thread: innermost [`scoped`] override, else
/// the global default, else the environment default ([`Blocked`]).
pub fn current() -> Arc<dyn Backend> {
    if let Some(b) = SCOPE_STACK.with(|s| s.borrow().last().cloned()) {
        return b;
    }
    if let Some(b) = GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone() {
        return b;
    }
    env_default()
}

/// Replace the process-wide default backend.
pub fn set_global(b: Arc<dyn Backend>) {
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(b);
}

/// Look up a backend by name (`"scalar"` / `"blocked"`).
pub fn by_name(name: &str) -> Result<Arc<dyn Backend>, String> {
    match name {
        "scalar" | "scalar_ref" | "ref" => Ok(maybe_profile(Arc::new(ScalarRef))),
        "blocked" | "default" | "fast" => Ok(maybe_profile(Arc::new(Blocked::from_env()))),
        other => Err(format!(
            "unknown backend '{other}' (expected 'scalar' or 'blocked')"
        )),
    }
}

/// Declarative backend selection for configs (`SwinConfig`, trainer and
/// scenario configs) — resolved to a live backend at use sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Defer to the ambient selection (innermost scope, else the global
    /// default, else `COASTAL_BACKEND`). The default, so env/global
    /// selection reaches model and trainer passes unless a config pins
    /// a backend explicitly.
    #[default]
    Auto,
    /// The blocked/fused/parallel fast path.
    Blocked,
    /// The serial reference implementation.
    Scalar,
}

impl BackendChoice {
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Blocked => "blocked",
            BackendChoice::Scalar => "scalar",
        }
    }

    /// Instantiate the chosen backend (Blocked honors
    /// `COASTAL_PAR_THRESHOLD`; Auto resolves to [`current`]).
    ///
    /// Resolution sits on the hot path (every trainer step / model
    /// forward), so the explicit variants are memoized.
    pub fn resolve(self) -> Arc<dyn Backend> {
        static BLOCKED: OnceLock<Arc<dyn Backend>> = OnceLock::new();
        static SCALAR: OnceLock<Arc<dyn Backend>> = OnceLock::new();
        match self {
            BackendChoice::Auto => current(),
            BackendChoice::Blocked => BLOCKED
                .get_or_init(|| maybe_profile(Arc::new(Blocked::from_env())))
                .clone(),
            BackendChoice::Scalar => SCALAR
                .get_or_init(|| maybe_profile(Arc::new(ScalarRef)))
                .clone(),
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" | "inherit" => Ok(BackendChoice::Auto),
            "blocked" | "default" | "fast" => Ok(BackendChoice::Blocked),
            "scalar" | "scalar_ref" | "ref" => Ok(BackendChoice::Scalar),
            other => Err(format!(
                "unknown backend '{other}' (expected 'auto', 'scalar' or 'blocked')"
            )),
        }
    }
}

/// RAII guard pinning `b` as this thread's backend until dropped.
///
/// Guards nest; drop order must match scope order (guaranteed when bound to
/// locals).
pub struct ScopedBackend {
    _private: (),
}

pub fn scoped(b: Arc<dyn Backend>) -> ScopedBackend {
    SCOPE_STACK.with(|s| s.borrow_mut().push(b));
    ScopedBackend { _private: () }
}

impl Drop for ScopedBackend {
    fn drop(&mut self) {
        SCOPE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_overrides_then_restores() {
        let outer = current().name();
        {
            let _g = scoped(Arc::new(ScalarRef));
            assert_eq!(current().name(), "scalar");
            {
                let _g2 = scoped(Arc::new(Blocked::from_env()));
                assert_eq!(current().name(), "blocked");
            }
            assert_eq!(current().name(), "scalar");
        }
        assert_eq!(current().name(), outer);
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(by_name("scalar").unwrap().name(), "scalar");
        assert_eq!(by_name("blocked").unwrap().name(), "blocked");
        assert!(by_name("cuda").is_err());
    }

    #[test]
    fn shape_error_messages_name_shapes() {
        let e = ShapeError::MatmulInner {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let msg = e.to_string();
        assert!(msg.contains("[2, 3]") && msg.contains("[4, 5]"), "{msg}");
    }

    #[test]
    fn scoped_override_is_thread_local() {
        let _g = scoped(Arc::new(ScalarRef));
        assert_eq!(current().name(), "scalar");
        let name = std::thread::spawn(|| current().name()).join().unwrap();
        assert_ne!(name, "scalar", "other threads must not see this scope");
    }
}
