//! `ScalarRef`: the obviously-correct serial reference backend.
//!
//! Every kernel is the shortest loop that implements the spec — no
//! parallelism, no blocking, no packing, no fusion tricks. This is the
//! correctness oracle the property tests compare [`super::Blocked`]
//! against, and a bisection tool when a fast kernel is suspect.

use super::{AttentionSpec, Backend, BinaryOp, MatmulSpec, UnaryOp};

#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarRef;

impl Backend for ScalarRef {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn par_threshold(&self) -> usize {
        usize::MAX // strictly serial
    }

    fn unary(&self, op: UnaryOp, x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = op.apply(v);
        }
    }

    fn binary(&self, op: BinaryOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = op.apply(x, y);
        }
    }

    fn binary_strided(
        &self,
        op: BinaryOp,
        a: &[f32],
        sa: &[usize],
        b: &[f32],
        sb: &[usize],
        out_shape: &[usize],
        out: &mut [f32],
    ) {
        // Plain per-element index arithmetic: unravel the flat output
        // index, dot with the operand strides.
        let nd = out_shape.len();
        let mut idx = vec![0usize; nd];
        for (flat, o) in out.iter_mut().enumerate() {
            crate::shape::unravel(flat, out_shape, &mut idx);
            let oa: usize = idx.iter().zip(sa).map(|(&i, &s)| i * s).sum();
            let ob: usize = idx.iter().zip(sb).map(|(&i, &s)| i * s).sum();
            *o = op.apply(a[oa], b[ob]);
        }
    }

    fn sum(&self, x: &[f32]) -> f64 {
        x.iter().map(|&v| v as f64).sum()
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
            let m = xr.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &v) in or.iter_mut().zip(xr) {
                *o = (v - m).exp();
                denom += *o;
            }
            for o in or.iter_mut() {
                *o /= denom;
            }
        }
    }

    fn layernorm_rows(&self, x: &[f32], out: &mut [f32], row: usize, eps: f32) {
        if row == 0 {
            return;
        }
        for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
            let mean = xr.iter().sum::<f32>() / row as f32;
            let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &v) in or.iter_mut().zip(xr) {
                *o = (v - mean) * inv;
            }
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        for (bi, &(ao, bo)) in spec.batch_offsets.iter().enumerate() {
            let a_mat = &a[ao * m * k..(ao + 1) * m * k];
            let b_mat = &b[bo * k * n..(bo + 1) * k * n];
            let o_mat = &mut out[bi * m * n..(bi + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    // Textbook dot product, f32 accumulator.
                    let mut acc = spec.bias.map_or(0.0, |bias| bias[j]);
                    for kk in 0..k {
                        acc += a_mat[i * k + kk] * b_mat[kk * n + j];
                    }
                    o_mat[i * n + j] = acc;
                }
            }
        }
    }

    fn attention(&self, q: &[f32], k: &[f32], v: &[f32], out: &mut [f32], spec: &AttentionSpec) {
        let (n, d) = (spec.n, spec.d);
        let mut scores = vec![0.0f32; n];
        for bh in 0..spec.batch {
            let qm = &q[bh * n * d..(bh + 1) * n * d];
            let km = &k[bh * n * d..(bh + 1) * n * d];
            let vm = &v[bh * n * d..(bh + 1) * n * d];
            let om = &mut out[bh * n * d..(bh + 1) * n * d];
            for i in 0..n {
                let q_row = &qm[i * d..(i + 1) * d];
                let mask_row = spec.mask_row(bh, i);
                for (j, s) in scores.iter_mut().enumerate() {
                    let k_row = &km[j * d..(j + 1) * d];
                    let mut acc = 0.0f32;
                    for c in 0..d {
                        acc += q_row[c] * k_row[c];
                    }
                    *s = acc * spec.scale + mask_row.map_or(0.0, |mr| mr[j]);
                }
                // Softmax over the score row.
                let mx = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                for s in scores.iter_mut() {
                    *s = (*s - mx).exp();
                    denom += *s;
                }
                let o_row = &mut om[i * d..(i + 1) * d];
                o_row.fill(0.0);
                for (j, &p) in scores.iter().enumerate() {
                    let w = p / denom;
                    let v_row = &vm[j * d..(j + 1) * d];
                    for c in 0..d {
                        o_row[c] += w * v_row[c];
                    }
                }
            }
        }
    }
}
