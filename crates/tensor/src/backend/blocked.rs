//! `Blocked`: the default fast backend.
//!
//! - **matmul** — GEBP-style: the B operand is packed into `NR`-wide column
//!   panels per `KC`-deep K-block, A into `MR`-tall row strips, and an
//!   `MR×NR` register-tile microkernel runs over the packed panels. Batches
//!   and row blocks parallelize over rayon.
//! - **attention** — fused `softmax(Q·Kᵀ·scale + mask)·V`: query rows are
//!   processed in blocks of [`QB`] so each K/V row streams from cache once
//!   per block, and the `(n, n)` score matrix is never materialized.
//! - **elementwise / reductions / softmax** — rayon-parallel above the
//!   runtime-tunable [`Blocked::par_threshold`] element count, with
//!   in-place variants that skip the output allocation entirely.
//!
//! # Blocked v2: SIMD lanes + thread determinism
//!
//! The transcendental elementwise kernels (`gelu`, `gelu_grad`, `exp`,
//! `tanh`), row softmax, fused attention, and the GEBP microkernel route
//! through [`crate::simd`]: 8-wide AVX2+FMA lanes when the CPU has them,
//! an exactly-libm scalar fallback otherwise (`COASTAL_SIMD=scalar`
//! forces the fallback; [`Blocked::with_simd`] pins it per instance for
//! parity tests).
//!
//! Every kernel is **bitwise thread-count invariant**: the same input
//! yields the same bits at 1, 2, 4, or any number of rayon threads.
//! - Lane/tail-structured elementwise kernels parallelize over
//!   **fixed-size** [`SIMD_CHUNK`] chunks (a multiple of
//!   [`crate::simd::LANES`]), so the lane/tail split of every element is a
//!   function of slice length alone, never of thread count.
//! - Row kernels (softmax, layernorm, attention) split on row boundaries;
//!   each row's arithmetic is self-contained.
//! - The matmul's parallel row-split is `MR`-aligned and per-element
//!   accumulation order (`KC`-block outer, packed-`kk` inner) is identical
//!   no matter which task computes a row.
//! - [`Backend::sum`] reduces fixed 4096-element chunk partials into a
//!   positionally-ordered buffer and folds that buffer serially, so even
//!   the f64 add order is thread-independent.

use rayon::prelude::*;

use super::{AttentionSpec, Backend, BinaryOp, MatmulSpec, UnaryOp};
use crate::simd::{self, SimdLevel};

/// Default parallelism threshold (elements) — overridable per instance and
/// via `COASTAL_PAR_THRESHOLD`.
pub const DEFAULT_PAR_THRESHOLD: usize = 32 * 1024;

/// Microkernel tile: MR rows of A × NR columns of B held in registers.
const MR: usize = 4;
const NR: usize = 16;
/// K-blocking depth: one packed B panel spans `KC × NR` floats (16 KiB at
/// 256×16), sized to stay L1/L2-resident under streaming.
const KC: usize = 256;
/// Query-row block of the fused attention kernel.
const QB: usize = 8;
/// Serial cutoff: problems under this many flops aren't worth fan-out.
const MIN_PAR_FLOPS: usize = 64 * 1024;
/// Fixed parallel chunk (elements) for lane-structured elementwise
/// kernels. A multiple of [`simd::LANES`], so chunk boundaries never move
/// an element between the lane and tail paths — outputs are bitwise
/// identical at any thread count.
const SIMD_CHUNK: usize = 4096;
const _: () = assert!(SIMD_CHUNK.is_multiple_of(simd::LANES));
// The packed-panel microkernel is specialized to this tile.
const _: () = assert!(MR == 4 && NR == 16);

#[derive(Debug, Clone)]
pub struct Blocked {
    par_threshold: usize,
    simd: SimdLevel,
}

impl Default for Blocked {
    fn default() -> Self {
        Self {
            par_threshold: DEFAULT_PAR_THRESHOLD,
            simd: simd::level(),
        }
    }
}

impl Blocked {
    /// Backend with an explicit parallelism threshold (elements).
    pub fn new(par_threshold: usize) -> Self {
        Self {
            par_threshold: par_threshold.max(1),
            simd: simd::level(),
        }
    }

    /// Backend with a pinned SIMD level — the kernel-parity tests use this
    /// to run the lane and fallback paths side by side in one process.
    pub fn with_simd(par_threshold: usize, level: SimdLevel) -> Self {
        Self {
            par_threshold: par_threshold.max(1),
            simd: level,
        }
    }

    /// Default threshold unless `COASTAL_PAR_THRESHOLD` overrides it.
    pub fn from_env() -> Self {
        let t = std::env::var("COASTAL_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD);
        Self::new(t)
    }

    /// The SIMD level this instance dispatches to.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    #[inline]
    fn parallel(&self, n: usize) -> bool {
        n >= self.par_threshold && rayon::current_num_threads() > 1
    }

    fn run_unary(&self, x: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32 + Sync + Send) {
        if self.parallel(out.len()) {
            out.par_iter_mut()
                .zip(x.par_iter())
                .for_each(|(o, &v)| *o = f(v));
        } else {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = f(v);
            }
        }
    }

    fn run_unary_inplace(&self, x: &mut [f32], f: impl Fn(f32) -> f32 + Sync + Send) {
        if self.parallel(x.len()) {
            x.par_iter_mut().for_each(|v| *v = f(*v));
        } else {
            for v in x.iter_mut() {
                *v = f(*v);
            }
        }
    }

    fn run_binary(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        f: impl Fn(f32, f32) -> f32 + Sync + Send,
    ) {
        if self.parallel(out.len()) {
            out.par_iter_mut()
                .zip(a.par_iter().zip(b.par_iter()))
                .for_each(|(o, (&x, &y))| *o = f(x, y));
        } else {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        }
    }

    fn run_binary_inplace(
        &self,
        acc: &mut [f32],
        b: &[f32],
        f: impl Fn(f32, f32) -> f32 + Sync + Send,
    ) {
        if self.parallel(acc.len()) {
            acc.par_iter_mut()
                .zip(b.par_iter())
                .for_each(|(x, &y)| *x = f(*x, y));
        } else {
            for (x, &y) in acc.iter_mut().zip(b) {
                *x = f(*x, y);
            }
        }
    }

    fn run_simd_unary(&self, x: &[f32], out: &mut [f32], kern: SimdMapFn) {
        if self.parallel(out.len()) {
            out.par_chunks_mut(SIMD_CHUNK)
                .zip(x.par_chunks(SIMD_CHUNK))
                .for_each(|(o, xc)| kern(self.simd, xc, o));
        } else {
            kern(self.simd, x, out);
        }
    }

    fn run_simd_unary_inplace(&self, x: &mut [f32], kern: SimdMapInplaceFn) {
        if self.parallel(x.len()) {
            x.par_chunks_mut(SIMD_CHUNK)
                .for_each(|c| kern(self.simd, c));
        } else {
            kern(self.simd, x);
        }
    }
}

/// Slice-level lane kernel signatures (see `ctensor::simd`).
type SimdMapFn = fn(SimdLevel, &[f32], &mut [f32]);
type SimdMapInplaceFn = fn(SimdLevel, &mut [f32]);

/// The transcendental ops with a lane implementation; everything else
/// stays on the (auto-vectorizing) per-element path.
fn simd_unary(op: UnaryOp) -> Option<SimdMapFn> {
    match op {
        UnaryOp::Exp => Some(simd::exp_slice),
        UnaryOp::Tanh => Some(simd::tanh_slice),
        UnaryOp::Gelu => Some(simd::gelu_slice),
        UnaryOp::GeluGrad => Some(simd::gelu_grad_slice),
        _ => None,
    }
}

fn simd_unary_inplace(op: UnaryOp) -> Option<SimdMapInplaceFn> {
    match op {
        UnaryOp::Exp => Some(simd::exp_slice_inplace),
        UnaryOp::Tanh => Some(simd::tanh_slice_inplace),
        UnaryOp::Gelu => Some(simd::gelu_slice_inplace),
        UnaryOp::GeluGrad => Some(simd::gelu_grad_slice_inplace),
        _ => None,
    }
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn par_threshold(&self) -> usize {
        self.par_threshold
    }

    fn unary(&self, op: UnaryOp, x: &[f32], out: &mut [f32]) {
        if let Some(kern) = simd_unary(op) {
            return self.run_simd_unary(x, out, kern);
        }
        match op {
            UnaryOp::Scale(c) => self.run_unary(x, out, move |v| v * c),
            UnaryOp::AddScalar(c) => self.run_unary(x, out, move |v| v + c),
            _ => self.run_unary(x, out, move |v| op.apply(v)),
        }
    }

    fn unary_inplace(&self, op: UnaryOp, x: &mut [f32]) {
        if let Some(kern) = simd_unary_inplace(op) {
            return self.run_simd_unary_inplace(x, kern);
        }
        match op {
            UnaryOp::Scale(c) => self.run_unary_inplace(x, move |v| v * c),
            UnaryOp::AddScalar(c) => self.run_unary_inplace(x, move |v| v + c),
            _ => self.run_unary_inplace(x, move |v| op.apply(v)),
        }
    }

    fn binary(&self, op: BinaryOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        match op {
            BinaryOp::Add => self.run_binary(a, b, out, |x, y| x + y),
            BinaryOp::Sub => self.run_binary(a, b, out, |x, y| x - y),
            BinaryOp::Mul => self.run_binary(a, b, out, |x, y| x * y),
            BinaryOp::Div => self.run_binary(a, b, out, |x, y| x / y),
        }
    }

    fn binary_inplace(&self, op: BinaryOp, acc: &mut [f32], b: &[f32]) {
        match op {
            BinaryOp::Add => self.run_binary_inplace(acc, b, |x, y| x + y),
            BinaryOp::Sub => self.run_binary_inplace(acc, b, |x, y| x - y),
            BinaryOp::Mul => self.run_binary_inplace(acc, b, |x, y| x * y),
            BinaryOp::Div => self.run_binary_inplace(acc, b, |x, y| x / y),
        }
    }

    fn binary_strided(
        &self,
        op: BinaryOp,
        a: &[f32],
        sa: &[usize],
        b: &[f32],
        sb: &[usize],
        out_shape: &[usize],
        out: &mut [f32],
    ) {
        let nd = out_shape.len();
        let n = out.len();
        // Odometer walk with incrementally-maintained operand offsets — one
        // add per dimension step instead of a full unravel per element.
        let compute = |start: usize, chunk: &mut [f32]| {
            let mut idx = vec![0usize; nd];
            crate::shape::unravel(start, out_shape, &mut idx);
            let mut off_a: usize = idx.iter().zip(sa).map(|(&i, &s)| i * s).sum();
            let mut off_b: usize = idx.iter().zip(sb).map(|(&i, &s)| i * s).sum();
            for o in chunk.iter_mut() {
                *o = op.apply(a[off_a], b[off_b]);
                for d in (0..nd).rev() {
                    idx[d] += 1;
                    off_a += sa[d];
                    off_b += sb[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    off_a -= sa[d] * out_shape[d];
                    off_b -= sb[d] * out_shape[d];
                    idx[d] = 0;
                }
            }
        };
        if self.parallel(n) {
            let chunk = n
                .div_ceil(rayon::current_num_threads().max(1) * 4)
                .max(1024);
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, c)| compute(ci * chunk, c));
        } else {
            compute(0, out);
        }
    }

    fn sum(&self, x: &[f32]) -> f64 {
        if self.parallel(x.len()) {
            // Fixed 4096-element chunk partials land in positional slots and
            // are folded serially, so the f64 add order — hence the result's
            // bits — is independent of the thread count.
            let mut partials = vec![0.0f64; x.len().div_ceil(4096)];
            partials
                .par_iter_mut()
                .zip(x.par_chunks(4096))
                .for_each(|(p, c)| *p = c.iter().map(|&v| v as f64).sum::<f64>());
            partials.iter().sum()
        } else {
            x.iter().map(|&v| v as f64).sum()
        }
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        // Lane-wise max reduction + subtraction before exp (numerical
        // stability for logits spanning ±1e4) lives in the simd kernel.
        let lv = self.simd;
        let body = move |xr: &[f32], or: &mut [f32]| simd::softmax_row(lv, xr, or);
        if self.parallel(x.len()) && x.len() > row {
            out.par_chunks_mut(row)
                .zip(x.par_chunks(row))
                .for_each(|(or, xr)| body(xr, or));
        } else {
            for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
                body(xr, or);
            }
        }
    }

    fn layernorm_rows(&self, x: &[f32], out: &mut [f32], row: usize, eps: f32) {
        if row == 0 {
            return;
        }
        let body = |xr: &[f32], or: &mut [f32]| {
            let mean = xr.iter().sum::<f32>() / row as f32;
            let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &v) in or.iter_mut().zip(xr) {
                *o = (v - mean) * inv;
            }
        };
        if self.parallel(x.len()) && x.len() > row {
            out.par_chunks_mut(row)
                .zip(x.par_chunks(row))
                .for_each(|(or, xr)| body(xr, or));
        } else {
            for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
                body(xr, or);
            }
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        let n_batch = spec.batch_offsets.len();
        let o_mat = m * n;
        if o_mat == 0 || n_batch == 0 {
            return; // degenerate output; chunks_mut(0) below would panic
        }
        let flops = 2 * n_batch * m * n * k;
        let threads = rayon::current_num_threads();

        if flops < MIN_PAR_FLOPS || threads <= 1 {
            for (bi, o) in out.chunks_mut(o_mat).enumerate() {
                let (ao, bo) = spec.batch_offsets[bi];
                gebp(
                    self.simd,
                    &a[ao * m * k..(ao + 1) * m * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    m,
                    k,
                    n,
                    spec.bias,
                );
            }
        } else if n_batch >= threads {
            // Many batches: one task per output matrix.
            out.par_chunks_mut(o_mat).enumerate().for_each(|(bi, o)| {
                let (ao, bo) = spec.batch_offsets[bi];
                gebp(
                    self.simd,
                    &a[ao * m * k..(ao + 1) * m * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    m,
                    k,
                    n,
                    spec.bias,
                );
            });
        } else {
            // Few batches: split row blocks within each matrix. Row blocks
            // are MR-aligned so no two tasks share a microkernel tile.
            let rows_per_task = m.div_ceil(threads.div_ceil(n_batch)).div_ceil(MR).max(1) * MR;
            let tasks: Vec<(usize, usize, usize)> = (0..n_batch)
                .flat_map(|bi| {
                    (0..m)
                        .step_by(rows_per_task)
                        .map(move |r0| (bi, r0, (r0 + rows_per_task).min(m)))
                })
                .collect();
            // Hand each task its disjoint slice of `out`.
            type RowTask<'a> = (&'a mut [f32], (usize, usize, usize));
            let mut slices: Vec<RowTask<'_>> = Vec::with_capacity(tasks.len());
            {
                let mut rest = out;
                let mut prev_end = 0usize;
                for &(bi, r0, r1) in &tasks {
                    let start = bi * o_mat + r0 * n;
                    let end = bi * o_mat + r1 * n;
                    let (_, tail) = rest.split_at_mut(start - prev_end);
                    let (mine, tail) = tail.split_at_mut(end - start);
                    rest = tail;
                    prev_end = end;
                    slices.push((mine, (bi, r0, r1)));
                }
            }
            slices.par_iter_mut().for_each(|(o, (bi, r0, r1))| {
                let (ao, bo) = spec.batch_offsets[*bi];
                let a_mat = &a[ao * m * k..(ao + 1) * m * k];
                gebp(
                    self.simd,
                    &a_mat[*r0 * k..*r1 * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    *r1 - *r0,
                    k,
                    n,
                    spec.bias,
                );
            });
        }
    }

    fn attention(&self, q: &[f32], k: &[f32], v: &[f32], out: &mut [f32], spec: &AttentionSpec) {
        let (n, d) = (spec.n, spec.d);
        let mat = n * d;
        if mat == 0 || spec.batch == 0 {
            return;
        }
        let flops = 4 * spec.batch * n * n * d;
        if flops >= MIN_PAR_FLOPS && rayon::current_num_threads() > 1 && spec.batch > 1 {
            out.par_chunks_mut(mat).enumerate().for_each(|(bh, om)| {
                attention_one(
                    self.simd,
                    &q[bh * mat..(bh + 1) * mat],
                    &k[bh * mat..(bh + 1) * mat],
                    &v[bh * mat..(bh + 1) * mat],
                    om,
                    bh,
                    spec,
                );
            });
        } else {
            for (bh, om) in out.chunks_mut(mat).enumerate() {
                attention_one(
                    self.simd,
                    &q[bh * mat..(bh + 1) * mat],
                    &k[bh * mat..(bh + 1) * mat],
                    &v[bh * mat..(bh + 1) * mat],
                    om,
                    bh,
                    spec,
                );
            }
        }
    }
}

/// Fused attention for one `(n, d)` head: blocked two-pass streaming of K
/// then V per [`QB`]-row query block; scores live in a `QB×n` scratch.
///
/// SIMD structure: each pass is one `target_feature` region per query
/// block — [`simd::attn_scores_block`] (an 8-dots-at-once `hadd` tree when
/// `d = 8`, the Swin head dim), the lane-max [`simd::softmax_row`] per
/// score row, and [`simd::attn_pv_block`] (FMA-accumulated value lanes).
fn attention_one(
    lv: SimdLevel,
    qm: &[f32],
    km: &[f32],
    vm: &[f32],
    om: &mut [f32],
    bh: usize,
    spec: &AttentionSpec,
) {
    let (n, d) = (spec.n, spec.d);
    let mut scores = vec![0.0f32; QB * n];
    let mut probs = vec![0.0f32; QB * n];
    for i0 in (0..n).step_by(QB) {
        let ib = (n - i0).min(QB);
        // Pass 1: scores = Q_block · Kᵀ · scale.
        simd::attn_scores_block(
            lv,
            &qm[i0 * d..(i0 + ib) * d],
            km,
            &mut scores[..ib * n],
            ib,
            n,
            d,
            spec.scale,
        );
        // Softmax per query row (with the additive mask).
        for r in 0..ib {
            let row = &mut scores[r * n..(r + 1) * n];
            if let Some(mr) = spec.mask_row(bh, i0 + r) {
                for (s, &mv) in row.iter_mut().zip(mr) {
                    *s += mv;
                }
            }
            simd::softmax_row(lv, row, &mut probs[r * n..(r + 1) * n]);
        }
        // Pass 2: out_block = P · V.
        simd::attn_pv_block(
            lv,
            &probs[..ib * n],
            vm,
            &mut om[i0 * d..(i0 + ib) * d],
            ib,
            n,
            d,
        );
    }
}

/// Single-matrix GEBP: C (m×n, pre-zeroed or bias-seeded) += A (m×k) · B (k×n).
#[allow(clippy::too_many_arguments)]
fn gebp(
    lv: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
) {
    // Seed the output rows.
    if let Some(bias) = bias {
        for row in c.chunks_mut(n) {
            row.copy_from_slice(bias);
        }
    }
    let panels = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; panels * KC * NR];
    let mut apack = [0.0f32; MR * KC];
    for kc0 in (0..k).step_by(KC) {
        let kc = (k - kc0).min(KC);
        // Pack B[kc0..kc0+kc, :] into NR-wide panels: panel p holds columns
        // [p·NR, p·NR+NR), laid out kk-major so the microkernel streams it
        // linearly. Ragged right edge is zero-padded.
        for p in 0..panels {
            let j0 = p * NR;
            let jw = (n - j0).min(NR);
            let dst = &mut bpack[p * KC * NR..p * KC * NR + kc * NR];
            for kk in 0..kc {
                let src = &b[(kc0 + kk) * n + j0..(kc0 + kk) * n + j0 + jw];
                let d = &mut dst[kk * NR..kk * NR + NR];
                d[..jw].copy_from_slice(src);
                d[jw..].fill(0.0);
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mi = (m - i0).min(MR);
            // Pack the A strip kk-major (zero-padding short strips).
            for kk in 0..kc {
                for r in 0..MR {
                    apack[kk * MR + r] = if r < mi {
                        a[(i0 + r) * k + kc0 + kk]
                    } else {
                        0.0
                    };
                }
            }
            for p in 0..panels {
                let j0 = p * NR;
                let jw = (n - j0).min(NR);
                // MR×NR register tile (FMA microkernel on the lane path).
                let mut acc = [[0.0f32; NR]; MR];
                simd::microkernel_4x16(lv, &apack[..kc * MR], &bpack[p * KC * NR..], kc, &mut acc);
                for r in 0..mi {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (co, &av) in crow.iter_mut().zip(&acc[r][..jw]) {
                        *co += av;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::ScalarRef;
    use super::*;

    fn fill(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn gebp_matches_reference_odd_sizes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (17, 33, 19),
            (64, 70, 48),
        ] {
            let a = fill(m * k, |i| ((i * 7 % 13) as f32) - 6.0);
            let b = fill(k * n, |i| ((i * 5 % 11) as f32) * 0.25 - 1.0);
            let spec = MatmulSpec {
                m,
                k,
                n,
                batch_offsets: &[(0, 0)],
                bias: None,
            };
            let mut fast = vec![0.0f32; m * n];
            Blocked::default().matmul(&a, &b, &mut fast, &spec);
            let mut slow = vec![0.0f32; m * n];
            ScalarRef.matmul(&a, &b, &mut slow, &spec);
            for (x, y) in fast.iter().zip(&slow) {
                assert!((x - y).abs() < 1e-3, "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_bias_seeds_rows() {
        let (m, k, n) = (5, 4, 6);
        let a = fill(m * k, |i| i as f32 * 0.1);
        let b = fill(k * n, |i| 1.0 - i as f32 * 0.05);
        let bias = fill(n, |i| 100.0 + i as f32);
        let spec = MatmulSpec {
            m,
            k,
            n,
            batch_offsets: &[(0, 0)],
            bias: Some(&bias),
        };
        let mut fast = vec![0.0f32; m * n];
        Blocked::default().matmul(&a, &b, &mut fast, &spec);
        let mut slow = vec![0.0f32; m * n];
        ScalarRef.matmul(&a, &b, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_row_split_matches_reference() {
        // Few batches + many rows exercises the row-splitting branch.
        let (m, k, n) = (133, 40, 37);
        let a = fill(2 * m * k, |i| ((i % 17) as f32 - 8.0) * 0.3);
        let b = fill(2 * k * n, |i| ((i % 7) as f32 - 3.0) * 0.5);
        let spec = MatmulSpec {
            m,
            k,
            n,
            batch_offsets: &[(0, 0), (1, 1)],
            bias: None,
        };
        let mut fast = vec![0.0f32; 2 * m * n];
        Blocked::default().matmul(&a, &b, &mut fast, &spec);
        let mut slow = vec![0.0f32; 2 * m * n];
        ScalarRef.matmul(&a, &b, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 2e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_attention_matches_reference_with_mask() {
        let (batch, heads, n, d) = (4, 2, 10, 8);
        let q = fill(batch * n * d, |i| ((i * 3 % 23) as f32 - 11.0) * 0.1);
        let k = fill(batch * n * d, |i| ((i * 5 % 19) as f32 - 9.0) * 0.1);
        let v = fill(batch * n * d, |i| ((i * 7 % 29) as f32 - 14.0) * 0.1);
        let nw = 2;
        let mask = fill(nw * n * n, |i| if i % 13 == 0 { -1e9 } else { 0.0 });
        let spec = AttentionSpec {
            batch,
            heads,
            n,
            d,
            scale: 1.0 / (d as f32).sqrt(),
            mask: Some(&mask),
            mask_windows: nw,
        };
        let mut fast = vec![0.0f32; batch * n * d];
        Blocked::default().attention(&q, &k, &v, &mut fast, &spec);
        let mut slow = vec![0.0f32; batch * n * d];
        ScalarRef.attention(&q, &k, &v, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_sized_matmul_and_attention_are_noops() {
        // m==0 / n==0 outputs must not panic (chunks_mut(0)) on any path.
        for &(m, k, n) in &[(0usize, 3usize, 4usize), (4, 3, 0), (0, 0, 0), (2, 0, 3)] {
            let a = vec![0.0f32; m * k];
            let b = vec![0.0f32; k * n];
            let spec = MatmulSpec {
                m,
                k,
                n,
                batch_offsets: &[(0, 0)],
                bias: None,
            };
            // Per the trait contract `out` is pre-zeroed.
            let mut out = vec![0.0f32; m * n];
            Blocked::default().matmul(&a, &b, &mut out, &spec);
            let mut slow = vec![0.0f32; m * n];
            ScalarRef.matmul(&a, &b, &mut slow, &spec);
            assert_eq!(out, slow, "{m}x{k}x{n}");
        }
        let spec = AttentionSpec {
            batch: 2,
            heads: 1,
            n: 0,
            d: 4,
            scale: 1.0,
            mask: None,
            mask_windows: 1,
        };
        let mut out: Vec<f32> = vec![];
        Blocked::default().attention(&[], &[], &[], &mut out, &spec);
        ScalarRef.attention(&[], &[], &[], &mut out, &spec);
        let mut empty: Vec<f32> = vec![];
        Blocked::default().softmax_rows(&[], &mut empty, 0);
        ScalarRef.softmax_rows(&[], &mut empty, 0);
    }

    #[test]
    fn env_threshold_constructor() {
        let b = Blocked::new(7);
        assert_eq!(b.par_threshold(), 7);
    }
}
