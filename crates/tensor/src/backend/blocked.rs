//! `Blocked`: the default fast backend.
//!
//! - **matmul** — GEBP-style: the B operand is packed into `NR`-wide column
//!   panels per `KC`-deep K-block, A into `MR`-tall row strips, and an
//!   `MR×NR` register-tile microkernel runs over the packed panels. Batches
//!   and row blocks parallelize over rayon.
//! - **attention** — fused `softmax(Q·Kᵀ·scale + mask)·V`: query rows are
//!   processed in blocks of [`QB`] so each K/V row streams from cache once
//!   per block, and the `(n, n)` score matrix is never materialized.
//! - **elementwise / reductions / softmax** — rayon-parallel above the
//!   runtime-tunable [`Blocked::par_threshold`] element count, with
//!   in-place variants that skip the output allocation entirely.
//!
//! # Blocked v2: SIMD lanes + thread determinism
//!
//! The transcendental elementwise kernels (`gelu`, `gelu_grad`, `exp`,
//! `tanh`), row softmax, fused attention, and the GEBP microkernel route
//! through [`crate::simd`]: 8-wide AVX2+FMA lanes when the CPU has them,
//! an exactly-libm scalar fallback otherwise (`COASTAL_SIMD=scalar`
//! forces the fallback; [`Blocked::with_simd`] pins it per instance for
//! parity tests).
//!
//! Every kernel is **bitwise thread-count invariant**: the same input
//! yields the same bits at 1, 2, 4, or any number of rayon threads.
//! - Lane/tail-structured elementwise kernels parallelize over
//!   **fixed-size** [`SIMD_CHUNK`] chunks (a multiple of
//!   [`crate::simd::LANES`]), so the lane/tail split of every element is a
//!   function of slice length alone, never of thread count.
//! - Row kernels (softmax, layernorm, attention) split on row boundaries;
//!   each row's arithmetic is self-contained.
//! - The matmul's parallel row-split is `MR`-aligned and per-element
//!   accumulation order (`KC`-block outer, packed-`kk` inner) is identical
//!   no matter which task computes a row.
//! - [`Backend::sum`] reduces fixed 4096-element chunk partials into a
//!   positionally-ordered buffer and folds that buffer serially, so even
//!   the f64 add order is thread-independent.

use rayon::prelude::*;

use super::{AttentionSpec, Backend, BinaryOp, MatmulSpec, UnaryOp};
use crate::simd::{self, SimdLevel};

/// Default parallelism threshold (elements) — overridable per instance and
/// via `COASTAL_PAR_THRESHOLD`.
pub const DEFAULT_PAR_THRESHOLD: usize = 32 * 1024;

/// Microkernel tile: MR rows of A × NR columns of B held in registers.
const MR: usize = 4;
const NR: usize = 16;
/// K-blocking depth: one packed B panel spans `KC × NR` floats (16 KiB at
/// 256×16), sized to stay L1/L2-resident under streaming.
const KC: usize = 256;
/// Query-row block of the fused attention kernel.
const QB: usize = 8;
/// Serial cutoff: problems under this many flops aren't worth fan-out.
const MIN_PAR_FLOPS: usize = 64 * 1024;
/// Fixed parallel chunk (elements) for lane-structured elementwise
/// kernels. A multiple of [`simd::LANES`], so chunk boundaries never move
/// an element between the lane and tail paths — outputs are bitwise
/// identical at any thread count.
const SIMD_CHUNK: usize = 4096;
const _: () = assert!(SIMD_CHUNK.is_multiple_of(simd::LANES));
// The packed-panel microkernel is specialized to this tile.
const _: () = assert!(MR == 4 && NR == 16);

#[derive(Debug, Clone)]
pub struct Blocked {
    par_threshold: usize,
    simd: SimdLevel,
}

impl Default for Blocked {
    fn default() -> Self {
        Self {
            par_threshold: DEFAULT_PAR_THRESHOLD,
            simd: simd::level(),
        }
    }
}

impl Blocked {
    /// Backend with an explicit parallelism threshold (elements).
    pub fn new(par_threshold: usize) -> Self {
        Self {
            par_threshold: par_threshold.max(1),
            simd: simd::level(),
        }
    }

    /// Backend with a pinned SIMD level — the kernel-parity tests use this
    /// to run the lane and fallback paths side by side in one process.
    pub fn with_simd(par_threshold: usize, level: SimdLevel) -> Self {
        Self {
            par_threshold: par_threshold.max(1),
            simd: level,
        }
    }

    /// Default threshold unless `COASTAL_PAR_THRESHOLD` overrides it.
    pub fn from_env() -> Self {
        let t = std::env::var("COASTAL_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD);
        Self::new(t)
    }

    /// The SIMD level this instance dispatches to.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    #[inline]
    fn parallel(&self, n: usize) -> bool {
        n >= self.par_threshold && rayon::current_num_threads() > 1
    }

    fn run_unary(&self, x: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32 + Sync + Send) {
        if self.parallel(out.len()) {
            out.par_iter_mut()
                .zip(x.par_iter())
                .for_each(|(o, &v)| *o = f(v));
        } else {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = f(v);
            }
        }
    }

    fn run_unary_inplace(&self, x: &mut [f32], f: impl Fn(f32) -> f32 + Sync + Send) {
        if self.parallel(x.len()) {
            x.par_iter_mut().for_each(|v| *v = f(*v));
        } else {
            for v in x.iter_mut() {
                *v = f(*v);
            }
        }
    }

    fn run_binary(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        f: impl Fn(f32, f32) -> f32 + Sync + Send,
    ) {
        if self.parallel(out.len()) {
            out.par_iter_mut()
                .zip(a.par_iter().zip(b.par_iter()))
                .for_each(|(o, (&x, &y))| *o = f(x, y));
        } else {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        }
    }

    fn run_binary_inplace(
        &self,
        acc: &mut [f32],
        b: &[f32],
        f: impl Fn(f32, f32) -> f32 + Sync + Send,
    ) {
        if self.parallel(acc.len()) {
            acc.par_iter_mut()
                .zip(b.par_iter())
                .for_each(|(x, &y)| *x = f(*x, y));
        } else {
            for (x, &y) in acc.iter_mut().zip(b) {
                *x = f(*x, y);
            }
        }
    }

    fn run_simd_unary(&self, x: &[f32], out: &mut [f32], kern: SimdMapFn) {
        if self.parallel(out.len()) {
            out.par_chunks_mut(SIMD_CHUNK)
                .zip(x.par_chunks(SIMD_CHUNK))
                .for_each(|(o, xc)| kern(self.simd, xc, o));
        } else {
            kern(self.simd, x, out);
        }
    }

    fn run_simd_unary_inplace(&self, x: &mut [f32], kern: SimdMapInplaceFn) {
        if self.parallel(x.len()) {
            x.par_chunks_mut(SIMD_CHUNK)
                .for_each(|c| kern(self.simd, c));
        } else {
            kern(self.simd, x);
        }
    }

    /// Shared driver of the two matmul adjoints: a batched `gm×gk · gk×gn`
    /// product where each operand is a *strided view* (`ars`/`acs`,
    /// `brs`/`bcs` = row/column element strides), so transposed operands run
    /// through the packed microkernel without materializing a transpose.
    /// `offs[bi]` are element offsets of batch `bi`'s operand matrices; the
    /// output is dense `gm×gn` per batch. Parallel dispatch mirrors
    /// [`Backend::matmul`]: per-batch tasks when batches are plentiful,
    /// MR-aligned row splits otherwise — accumulation order per output
    /// element is thread-count invariant either way.
    #[allow(clippy::too_many_arguments)]
    fn grad_gemm(
        &self,
        aop: &[f32],
        bop: &[f32],
        out: &mut [f32],
        gm: usize,
        gk: usize,
        gn: usize,
        ars: usize,
        acs: usize,
        brs: usize,
        bcs: usize,
        offs: &[(usize, usize)],
    ) {
        let o_mat = gm * gn;
        if o_mat == 0 || offs.is_empty() {
            return;
        }
        let n_batch = offs.len();
        let flops = 2 * n_batch * gm * gk * gn;
        let threads = rayon::current_num_threads();

        if flops < MIN_PAR_FLOPS || threads <= 1 {
            for (bi, o) in out.chunks_mut(o_mat).enumerate() {
                let (aoff, boff) = offs[bi];
                gebp_strided(
                    self.simd,
                    &aop[aoff..],
                    &bop[boff..],
                    o,
                    gm,
                    gk,
                    gn,
                    ars,
                    acs,
                    brs,
                    bcs,
                );
            }
        } else if n_batch >= threads {
            out.par_chunks_mut(o_mat).enumerate().for_each(|(bi, o)| {
                let (aoff, boff) = offs[bi];
                gebp_strided(
                    self.simd,
                    &aop[aoff..],
                    &bop[boff..],
                    o,
                    gm,
                    gk,
                    gn,
                    ars,
                    acs,
                    brs,
                    bcs,
                );
            });
        } else {
            let rows_per_task = gm.div_ceil(threads.div_ceil(n_batch)).div_ceil(MR).max(1) * MR;
            let tasks: Vec<(usize, usize, usize)> = (0..n_batch)
                .flat_map(|bi| {
                    (0..gm)
                        .step_by(rows_per_task)
                        .map(move |r0| (bi, r0, (r0 + rows_per_task).min(gm)))
                })
                .collect();
            type RowTask<'a> = (&'a mut [f32], (usize, usize, usize));
            let mut slices: Vec<RowTask<'_>> = Vec::with_capacity(tasks.len());
            {
                let mut rest = out;
                let mut prev_end = 0usize;
                for &(bi, r0, r1) in &tasks {
                    let start = bi * o_mat + r0 * gn;
                    let end = bi * o_mat + r1 * gn;
                    let (_, tail) = rest.split_at_mut(start - prev_end);
                    let (mine, tail) = tail.split_at_mut(end - start);
                    rest = tail;
                    prev_end = end;
                    slices.push((mine, (bi, r0, r1)));
                }
            }
            slices.par_iter_mut().for_each(|(o, (bi, r0, r1))| {
                let (aoff, boff) = offs[*bi];
                // Row block [r0, r1) of the A view starts r0 row-strides in.
                gebp_strided(
                    self.simd,
                    &aop[aoff + *r0 * ars..],
                    &bop[boff..],
                    o,
                    *r1 - *r0,
                    gk,
                    gn,
                    ars,
                    acs,
                    brs,
                    bcs,
                );
            });
        }
    }
}

/// Slice-level lane kernel signatures (see `ctensor::simd`).
type SimdMapFn = fn(SimdLevel, &[f32], &mut [f32]);
type SimdMapInplaceFn = fn(SimdLevel, &mut [f32]);

/// The transcendental ops with a lane implementation; everything else
/// stays on the (auto-vectorizing) per-element path.
fn simd_unary(op: UnaryOp) -> Option<SimdMapFn> {
    match op {
        UnaryOp::Exp => Some(simd::exp_slice),
        UnaryOp::Tanh => Some(simd::tanh_slice),
        UnaryOp::Gelu => Some(simd::gelu_slice),
        UnaryOp::GeluGrad => Some(simd::gelu_grad_slice),
        _ => None,
    }
}

fn simd_unary_inplace(op: UnaryOp) -> Option<SimdMapInplaceFn> {
    match op {
        UnaryOp::Exp => Some(simd::exp_slice_inplace),
        UnaryOp::Tanh => Some(simd::tanh_slice_inplace),
        UnaryOp::Gelu => Some(simd::gelu_slice_inplace),
        UnaryOp::GeluGrad => Some(simd::gelu_grad_slice_inplace),
        _ => None,
    }
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn par_threshold(&self) -> usize {
        self.par_threshold
    }

    fn unary(&self, op: UnaryOp, x: &[f32], out: &mut [f32]) {
        if let Some(kern) = simd_unary(op) {
            return self.run_simd_unary(x, out, kern);
        }
        match op {
            UnaryOp::Scale(c) => self.run_unary(x, out, move |v| v * c),
            UnaryOp::AddScalar(c) => self.run_unary(x, out, move |v| v + c),
            _ => self.run_unary(x, out, move |v| op.apply(v)),
        }
    }

    fn unary_inplace(&self, op: UnaryOp, x: &mut [f32]) {
        if let Some(kern) = simd_unary_inplace(op) {
            return self.run_simd_unary_inplace(x, kern);
        }
        match op {
            UnaryOp::Scale(c) => self.run_unary_inplace(x, move |v| v * c),
            UnaryOp::AddScalar(c) => self.run_unary_inplace(x, move |v| v + c),
            _ => self.run_unary_inplace(x, move |v| op.apply(v)),
        }
    }

    fn binary(&self, op: BinaryOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        match op {
            BinaryOp::Add => self.run_binary(a, b, out, |x, y| x + y),
            BinaryOp::Sub => self.run_binary(a, b, out, |x, y| x - y),
            BinaryOp::Mul => self.run_binary(a, b, out, |x, y| x * y),
            BinaryOp::Div => self.run_binary(a, b, out, |x, y| x / y),
        }
    }

    fn binary_inplace(&self, op: BinaryOp, acc: &mut [f32], b: &[f32]) {
        match op {
            BinaryOp::Add => self.run_binary_inplace(acc, b, |x, y| x + y),
            BinaryOp::Sub => self.run_binary_inplace(acc, b, |x, y| x - y),
            BinaryOp::Mul => self.run_binary_inplace(acc, b, |x, y| x * y),
            BinaryOp::Div => self.run_binary_inplace(acc, b, |x, y| x / y),
        }
    }

    fn binary_strided(
        &self,
        op: BinaryOp,
        a: &[f32],
        sa: &[usize],
        b: &[f32],
        sb: &[usize],
        out_shape: &[usize],
        out: &mut [f32],
    ) {
        let nd = out_shape.len();
        let n = out.len();
        // Odometer walk with incrementally-maintained operand offsets — one
        // add per dimension step instead of a full unravel per element.
        let compute = |start: usize, chunk: &mut [f32]| {
            let mut idx = vec![0usize; nd];
            crate::shape::unravel(start, out_shape, &mut idx);
            let mut off_a: usize = idx.iter().zip(sa).map(|(&i, &s)| i * s).sum();
            let mut off_b: usize = idx.iter().zip(sb).map(|(&i, &s)| i * s).sum();
            for o in chunk.iter_mut() {
                *o = op.apply(a[off_a], b[off_b]);
                for d in (0..nd).rev() {
                    idx[d] += 1;
                    off_a += sa[d];
                    off_b += sb[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    off_a -= sa[d] * out_shape[d];
                    off_b -= sb[d] * out_shape[d];
                    idx[d] = 0;
                }
            }
        };
        if self.parallel(n) {
            let chunk = n
                .div_ceil(rayon::current_num_threads().max(1) * 4)
                .max(1024);
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, c)| compute(ci * chunk, c));
        } else {
            compute(0, out);
        }
    }

    fn sum(&self, x: &[f32]) -> f64 {
        if self.parallel(x.len()) {
            // Fixed 4096-element chunk partials land in positional slots and
            // are folded serially, so the f64 add order — hence the result's
            // bits — is independent of the thread count.
            let mut partials = vec![0.0f64; x.len().div_ceil(4096)];
            partials
                .par_iter_mut()
                .zip(x.par_chunks(4096))
                .for_each(|(p, c)| *p = c.iter().map(|&v| v as f64).sum::<f64>());
            partials.iter().sum()
        } else {
            x.iter().map(|&v| v as f64).sum()
        }
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        // Lane-wise max reduction + subtraction before exp (numerical
        // stability for logits spanning ±1e4) lives in the simd kernel.
        let lv = self.simd;
        let body = move |xr: &[f32], or: &mut [f32]| simd::softmax_row(lv, xr, or);
        if self.parallel(x.len()) && x.len() > row {
            out.par_chunks_mut(row)
                .zip(x.par_chunks(row))
                .for_each(|(or, xr)| body(xr, or));
        } else {
            for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
                body(xr, or);
            }
        }
    }

    fn layernorm_rows(&self, x: &[f32], out: &mut [f32], row: usize, eps: f32) {
        if row == 0 {
            return;
        }
        let body = |xr: &[f32], or: &mut [f32]| {
            let mean = xr.iter().sum::<f32>() / row as f32;
            let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &v) in or.iter_mut().zip(xr) {
                *o = (v - mean) * inv;
            }
        };
        if self.parallel(x.len()) && x.len() > row {
            out.par_chunks_mut(row)
                .zip(x.par_chunks(row))
                .for_each(|(or, xr)| body(xr, or));
        } else {
            for (xr, or) in x.chunks(row).zip(out.chunks_mut(row)) {
                body(xr, or);
            }
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        let n_batch = spec.batch_offsets.len();
        let o_mat = m * n;
        if o_mat == 0 || n_batch == 0 {
            return; // degenerate output; chunks_mut(0) below would panic
        }
        let flops = 2 * n_batch * m * n * k;
        let threads = rayon::current_num_threads();

        if flops < MIN_PAR_FLOPS || threads <= 1 {
            for (bi, o) in out.chunks_mut(o_mat).enumerate() {
                let (ao, bo) = spec.batch_offsets[bi];
                gebp(
                    self.simd,
                    &a[ao * m * k..(ao + 1) * m * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    m,
                    k,
                    n,
                    spec.bias,
                );
            }
        } else if n_batch >= threads {
            // Many batches: one task per output matrix.
            out.par_chunks_mut(o_mat).enumerate().for_each(|(bi, o)| {
                let (ao, bo) = spec.batch_offsets[bi];
                gebp(
                    self.simd,
                    &a[ao * m * k..(ao + 1) * m * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    m,
                    k,
                    n,
                    spec.bias,
                );
            });
        } else {
            // Few batches: split row blocks within each matrix. Row blocks
            // are MR-aligned so no two tasks share a microkernel tile.
            let rows_per_task = m.div_ceil(threads.div_ceil(n_batch)).div_ceil(MR).max(1) * MR;
            let tasks: Vec<(usize, usize, usize)> = (0..n_batch)
                .flat_map(|bi| {
                    (0..m)
                        .step_by(rows_per_task)
                        .map(move |r0| (bi, r0, (r0 + rows_per_task).min(m)))
                })
                .collect();
            // Hand each task its disjoint slice of `out`.
            type RowTask<'a> = (&'a mut [f32], (usize, usize, usize));
            let mut slices: Vec<RowTask<'_>> = Vec::with_capacity(tasks.len());
            {
                let mut rest = out;
                let mut prev_end = 0usize;
                for &(bi, r0, r1) in &tasks {
                    let start = bi * o_mat + r0 * n;
                    let end = bi * o_mat + r1 * n;
                    let (_, tail) = rest.split_at_mut(start - prev_end);
                    let (mine, tail) = tail.split_at_mut(end - start);
                    rest = tail;
                    prev_end = end;
                    slices.push((mine, (bi, r0, r1)));
                }
            }
            slices.par_iter_mut().for_each(|(o, (bi, r0, r1))| {
                let (ao, bo) = spec.batch_offsets[*bi];
                let a_mat = &a[ao * m * k..(ao + 1) * m * k];
                gebp(
                    self.simd,
                    &a_mat[*r0 * k..*r1 * k],
                    &b[bo * k * n..(bo + 1) * k * n],
                    o,
                    *r1 - *r0,
                    k,
                    n,
                    spec.bias,
                );
            });
        }
    }

    fn attention(&self, q: &[f32], k: &[f32], v: &[f32], out: &mut [f32], spec: &AttentionSpec) {
        let (n, d) = (spec.n, spec.d);
        let mat = n * d;
        if mat == 0 || spec.batch == 0 {
            return;
        }
        let flops = 4 * spec.batch * n * n * d;
        if flops >= MIN_PAR_FLOPS && rayon::current_num_threads() > 1 && spec.batch > 1 {
            out.par_chunks_mut(mat).enumerate().for_each(|(bh, om)| {
                attention_one(
                    self.simd,
                    &q[bh * mat..(bh + 1) * mat],
                    &k[bh * mat..(bh + 1) * mat],
                    &v[bh * mat..(bh + 1) * mat],
                    om,
                    bh,
                    spec,
                );
            });
        } else {
            for (bh, om) in out.chunks_mut(mat).enumerate() {
                attention_one(
                    self.simd,
                    &q[bh * mat..(bh + 1) * mat],
                    &k[bh * mat..(bh + 1) * mat],
                    &v[bh * mat..(bh + 1) * mat],
                    om,
                    bh,
                    spec,
                );
            }
        }
    }

    fn matmul_grad_a(&self, dc: &[f32], b: &[f32], da: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        // dA (m×k) = dC (m×n, row-major) · Bᵀ. Bᵀ is a strided view of B:
        // element (kk∈[0,n), j∈[0,k)) lives at b[j·n + kk] → strides (1, n).
        let offs: Vec<(usize, usize)> = spec
            .batch_offsets
            .iter()
            .enumerate()
            .map(|(bi, &(_, bo))| (bi * m * n, bo * k * n))
            .collect();
        self.grad_gemm(dc, b, da, m, n, k, n, 1, 1, n, &offs);
    }

    fn matmul_grad_b(&self, a: &[f32], dc: &[f32], db: &mut [f32], spec: &MatmulSpec) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        // dB (k×n) = Aᵀ · dC. Aᵀ element (i∈[0,k), kk∈[0,m)) lives at
        // a[kk·k + i] → strides (1, k); dC is row-major (n, 1).
        let offs: Vec<(usize, usize)> = spec
            .batch_offsets
            .iter()
            .enumerate()
            .map(|(bi, &(ao, _))| (ao * m * k, bi * m * n))
            .collect();
        self.grad_gemm(a, dc, db, k, m, n, 1, k, n, 1, &offs);
    }

    fn col_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        let lv = self.simd;
        // FMA with w = 1.0 rounds exactly like a plain add, so the axpy lane
        // kernel is bitwise-equal to the serial reference; SIMD_CHUNK column
        // blocks keep lane/tail splits a function of geometry, not threads.
        if self.parallel(x.len()) && row > 1 {
            out[..row]
                .par_chunks_mut(SIMD_CHUNK)
                .enumerate()
                .for_each(|(ci, oc)| {
                    let j0 = ci * SIMD_CHUNK;
                    for r in x.chunks_exact(row) {
                        simd::axpy(lv, 1.0, &r[j0..j0 + oc.len()], oc);
                    }
                });
        } else {
            for r in x.chunks_exact(row) {
                simd::axpy(lv, 1.0, r, &mut out[..row]);
            }
        }
    }

    fn row_sums(&self, x: &[f32], out: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        let rows = x.len() / row;
        if self.parallel(x.len()) && rows > 1 {
            out[..rows]
                .par_iter_mut()
                .zip(x[..rows * row].par_chunks(row))
                .for_each(|(o, r)| *o += r.iter().sum::<f32>());
        } else {
            for (o, r) in out.iter_mut().zip(x.chunks_exact(row)) {
                *o += r.iter().sum::<f32>();
            }
        }
    }

    fn softmax_grad_rows(&self, y: &[f32], dy: &[f32], dx: &mut [f32], row: usize) {
        if row == 0 {
            return;
        }
        let lv = self.simd;
        if self.parallel(y.len()) && y.len() > row {
            dx.par_chunks_mut(row)
                .zip(y.par_chunks(row).zip(dy.par_chunks(row)))
                .for_each(|(dxr, (yr, dyr))| simd::softmax_grad_row(lv, yr, dyr, dxr));
        } else {
            for ((yr, dyr), dxr) in y.chunks(row).zip(dy.chunks(row)).zip(dx.chunks_mut(row)) {
                simd::softmax_grad_row(lv, yr, dyr, dxr);
            }
        }
    }

    fn layernorm_grad_rows(&self, x: &[f32], dy: &[f32], dx: &mut [f32], row: usize, eps: f32) {
        if row == 0 {
            return;
        }
        let lv = self.simd;
        if self.parallel(x.len()) && x.len() > row {
            dx.par_chunks_mut(row)
                .zip(x.par_chunks(row).zip(dy.par_chunks(row)))
                .for_each(|(dxr, (xr, dyr))| simd::layernorm_grad_row(lv, xr, dyr, dxr, eps));
        } else {
            for ((xr, dyr), dxr) in x.chunks(row).zip(dy.chunks(row)).zip(dx.chunks_mut(row)) {
                simd::layernorm_grad_row(lv, xr, dyr, dxr, eps);
            }
        }
    }

    fn attention_grad(
        &self,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        dout: &[f32],
        dq: &mut [f32],
        dk: &mut [f32],
        dv: &mut [f32],
        spec: &AttentionSpec,
    ) {
        let (n, d) = (spec.n, spec.d);
        let mat = n * d;
        if mat == 0 || spec.batch == 0 {
            return;
        }
        let lv = self.simd;
        // ~10 n²d flops per batch-head (recompute + four products).
        let flops = 10 * spec.batch * n * n * d;
        if flops >= MIN_PAR_FLOPS && rayon::current_num_threads() > 1 && spec.batch > 1 {
            // Each batch-head owns disjoint dq/dk/dv slices, so the three
            // gradient buffers split in lockstep.
            dq.par_chunks_mut(mat)
                .zip(dk.par_chunks_mut(mat).zip(dv.par_chunks_mut(mat)))
                .enumerate()
                .for_each(|(bh, (dqm, (dkm, dvm)))| {
                    attention_grad_one(
                        lv,
                        &q[bh * mat..(bh + 1) * mat],
                        &k[bh * mat..(bh + 1) * mat],
                        &v[bh * mat..(bh + 1) * mat],
                        &dout[bh * mat..(bh + 1) * mat],
                        dqm,
                        dkm,
                        dvm,
                        bh,
                        spec,
                    );
                });
        } else {
            for bh in 0..spec.batch {
                attention_grad_one(
                    lv,
                    &q[bh * mat..(bh + 1) * mat],
                    &k[bh * mat..(bh + 1) * mat],
                    &v[bh * mat..(bh + 1) * mat],
                    &dout[bh * mat..(bh + 1) * mat],
                    &mut dq[bh * mat..(bh + 1) * mat],
                    &mut dk[bh * mat..(bh + 1) * mat],
                    &mut dv[bh * mat..(bh + 1) * mat],
                    bh,
                    spec,
                );
            }
        }
    }

    fn adam_step(
        &self,
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &super::AdamStepSpec,
    ) {
        let lv = self.simd;
        if self.parallel(p.len()) {
            p.par_chunks_mut(SIMD_CHUNK)
                .zip(
                    g.par_chunks(SIMD_CHUNK).zip(
                        m.par_chunks_mut(SIMD_CHUNK)
                            .zip(v.par_chunks_mut(SIMD_CHUNK)),
                    ),
                )
                .for_each(|(pc, (gc, (mc, vc)))| simd::adam_step_slice(lv, pc, gc, mc, vc, s));
        } else {
            simd::adam_step_slice(lv, p, g, m, v, s);
        }
    }

    fn sgd_step(&self, p: &mut [f32], g: &[f32], vel: Option<&mut [f32]>, lr: f32, momentum: f32) {
        let lv = self.simd;
        if self.parallel(p.len()) {
            match vel {
                Some(vel) => {
                    p.par_chunks_mut(SIMD_CHUNK)
                        .zip(g.par_chunks(SIMD_CHUNK).zip(vel.par_chunks_mut(SIMD_CHUNK)))
                        .for_each(|(pc, (gc, vc))| {
                            simd::sgd_step_slice(lv, pc, gc, Some(vc), lr, momentum)
                        });
                }
                None => {
                    p.par_chunks_mut(SIMD_CHUNK)
                        .zip(g.par_chunks(SIMD_CHUNK))
                        .for_each(|(pc, gc)| simd::sgd_step_slice(lv, pc, gc, None, lr, momentum));
                }
            }
        } else {
            simd::sgd_step_slice(lv, p, g, vel, lr, momentum);
        }
    }

    fn qlinear_i8(
        &self,
        acts: &crate::quant::QuantActs,
        w: &crate::quant::QuantizedTensor,
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        let flops = 2 * acts.m * w.kp * w.np;
        let parallel = flops >= MIN_PAR_FLOPS && rayon::current_num_threads() > 1;
        crate::quant::qgemm(self.simd, acts, w, bias, out, parallel);
    }
}

/// Fused attention for one `(n, d)` head: blocked two-pass streaming of K
/// then V per [`QB`]-row query block; scores live in a `QB×n` scratch.
///
/// SIMD structure: each pass is one `target_feature` region per query
/// block — [`simd::attn_scores_block`] (an 8-dots-at-once `hadd` tree when
/// `d = 8`, the Swin head dim), the lane-max [`simd::softmax_row`] per
/// score row, and [`simd::attn_pv_block`] (FMA-accumulated value lanes).
fn attention_one(
    lv: SimdLevel,
    qm: &[f32],
    km: &[f32],
    vm: &[f32],
    om: &mut [f32],
    bh: usize,
    spec: &AttentionSpec,
) {
    let (n, d) = (spec.n, spec.d);
    let mut scores = vec![0.0f32; QB * n];
    let mut probs = vec![0.0f32; QB * n];
    for i0 in (0..n).step_by(QB) {
        let ib = (n - i0).min(QB);
        // Pass 1: scores = Q_block · Kᵀ · scale.
        simd::attn_scores_block(
            lv,
            &qm[i0 * d..(i0 + ib) * d],
            km,
            &mut scores[..ib * n],
            ib,
            n,
            d,
            spec.scale,
        );
        // Softmax per query row (with the additive mask).
        for r in 0..ib {
            let row = &mut scores[r * n..(r + 1) * n];
            if let Some(mr) = spec.mask_row(bh, i0 + r) {
                for (s, &mv) in row.iter_mut().zip(mr) {
                    *s += mv;
                }
            }
            simd::softmax_row(lv, row, &mut probs[r * n..(r + 1) * n]);
        }
        // Pass 2: out_block = P · V.
        simd::attn_pv_block(
            lv,
            &probs[..ib * n],
            vm,
            &mut om[i0 * d..(i0 + ib) * d],
            ib,
            n,
            d,
        );
    }
}

/// Single-matrix GEBP: C (m×n, pre-zeroed or bias-seeded) += A (m×k) · B (k×n).
#[allow(clippy::too_many_arguments)]
fn gebp(
    lv: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
) {
    // Seed the output rows.
    if let Some(bias) = bias {
        for row in c.chunks_mut(n) {
            row.copy_from_slice(bias);
        }
    }
    let panels = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; panels * KC * NR];
    let mut apack = [0.0f32; MR * KC];
    for kc0 in (0..k).step_by(KC) {
        let kc = (k - kc0).min(KC);
        // Pack B[kc0..kc0+kc, :] into NR-wide panels: panel p holds columns
        // [p·NR, p·NR+NR), laid out kk-major so the microkernel streams it
        // linearly. Ragged right edge is zero-padded.
        for p in 0..panels {
            let j0 = p * NR;
            let jw = (n - j0).min(NR);
            let dst = &mut bpack[p * KC * NR..p * KC * NR + kc * NR];
            for kk in 0..kc {
                let src = &b[(kc0 + kk) * n + j0..(kc0 + kk) * n + j0 + jw];
                let d = &mut dst[kk * NR..kk * NR + NR];
                d[..jw].copy_from_slice(src);
                d[jw..].fill(0.0);
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mi = (m - i0).min(MR);
            // Pack the A strip kk-major (zero-padding short strips).
            for kk in 0..kc {
                for r in 0..MR {
                    apack[kk * MR + r] = if r < mi {
                        a[(i0 + r) * k + kc0 + kk]
                    } else {
                        0.0
                    };
                }
            }
            for p in 0..panels {
                let j0 = p * NR;
                let jw = (n - j0).min(NR);
                // MR×NR register tile (FMA microkernel on the lane path).
                let mut acc = [[0.0f32; NR]; MR];
                simd::microkernel_4x16(lv, &apack[..kc * MR], &bpack[p * KC * NR..], kc, &mut acc);
                for r in 0..mi {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (co, &av) in crow.iter_mut().zip(&acc[r][..jw]) {
                        *co += av;
                    }
                }
            }
        }
    }
}

/// Strided-operand GEBP: C (dense m×n) += A·B where A element `(i, kk)` is
/// `a[i·ars + kk·acs]` and B element `(kk, j)` is `b[kk·brs + j·bcs]`.
///
/// With `(ars, acs) = (k, 1)` / `(brs, bcs) = (n, 1)` this is the forward
/// [`gebp`]; the matmul adjoints pass stride pairs that read a transposed
/// view directly out of the untransposed buffer, so `dC·Bᵀ` and `Aᵀ·dC`
/// reuse the same packed panels + 4×16 FMA microkernel as the forward pass.
/// Accumulation order per output element (KC-block outer, packed-kk inner)
/// is identical to [`gebp`] and independent of any parallel row split.
#[allow(clippy::too_many_arguments)]
fn gebp_strided(
    lv: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ars: usize,
    acs: usize,
    brs: usize,
    bcs: usize,
) {
    let panels = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; panels * KC * NR];
    let mut apack = [0.0f32; MR * KC];
    for kc0 in (0..k).step_by(KC) {
        let kc = (k - kc0).min(KC);
        for p in 0..panels {
            let j0 = p * NR;
            let jw = (n - j0).min(NR);
            let dst = &mut bpack[p * KC * NR..p * KC * NR + kc * NR];
            for kk in 0..kc {
                let base = (kc0 + kk) * brs + j0 * bcs;
                let d = &mut dst[kk * NR..kk * NR + NR];
                if bcs == 1 {
                    d[..jw].copy_from_slice(&b[base..base + jw]);
                } else {
                    for (jj, slot) in d[..jw].iter_mut().enumerate() {
                        *slot = b[base + jj * bcs];
                    }
                }
                d[jw..].fill(0.0);
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mi = (m - i0).min(MR);
            for kk in 0..kc {
                for r in 0..MR {
                    apack[kk * MR + r] = if r < mi {
                        a[(i0 + r) * ars + (kc0 + kk) * acs]
                    } else {
                        0.0
                    };
                }
            }
            for p in 0..panels {
                let j0 = p * NR;
                let jw = (n - j0).min(NR);
                let mut acc = [[0.0f32; NR]; MR];
                simd::microkernel_4x16(lv, &apack[..kc * MR], &bpack[p * KC * NR..], kc, &mut acc);
                for r in 0..mi {
                    let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (co, &av) in crow.iter_mut().zip(&acc[r][..jw]) {
                        *co += av;
                    }
                }
            }
        }
    }
}

/// Attention backward for one `(n, d)` batch-head. P is recomputed exactly
/// as [`attention_one`] does (QB-blocked scores + mask + lane softmax), then
/// the four adjoint products run on SIMD kernels:
/// `dP = dO·Vᵀ` via [`simd::attn_scores_block`] (scale 1),
/// `dS = (dP − rowsum(dP⊙P))⊙P·scale` via [`simd::softmax_grad_row`],
/// and `dV += Pᵀ·dO`, `dQ += dS·K`, `dK += dSᵀ·Q` via [`gebp_strided`]
/// (transposed views by stride, nothing materialized). Scratch is `O(n²)`
/// per batch-head, matching the reference contract.
#[allow(clippy::too_many_arguments)]
fn attention_grad_one(
    lv: SimdLevel,
    qm: &[f32],
    km: &[f32],
    vm: &[f32],
    dom: &[f32],
    dqm: &mut [f32],
    dkm: &mut [f32],
    dvm: &mut [f32],
    bh: usize,
    spec: &AttentionSpec,
) {
    let (n, d) = (spec.n, spec.d);
    let mut scores = vec![0.0f32; QB * n];
    let mut probs = vec![0.0f32; n * n];
    for i0 in (0..n).step_by(QB) {
        let ib = (n - i0).min(QB);
        simd::attn_scores_block(
            lv,
            &qm[i0 * d..(i0 + ib) * d],
            km,
            &mut scores[..ib * n],
            ib,
            n,
            d,
            spec.scale,
        );
        for r in 0..ib {
            let row = &mut scores[r * n..(r + 1) * n];
            if let Some(mr) = spec.mask_row(bh, i0 + r) {
                for (s, &mv) in row.iter_mut().zip(mr) {
                    *s += mv;
                }
            }
            simd::softmax_row(lv, row, &mut probs[(i0 + r) * n..(i0 + r + 1) * n]);
        }
    }
    // dP[i·n + j] = dO_i · V_j — the score kernel against V with scale 1.
    let mut dp = vec![0.0f32; n * n];
    simd::attn_scores_block(lv, dom, vm, &mut dp, n, n, d, 1.0);
    let mut dsm = vec![0.0f32; n * n];
    for i in 0..n {
        simd::softmax_grad_row(
            lv,
            &probs[i * n..(i + 1) * n],
            &dp[i * n..(i + 1) * n],
            &mut dsm[i * n..(i + 1) * n],
        );
    }
    if spec.scale != 1.0 {
        for x in dsm.iter_mut() {
            *x *= spec.scale;
        }
    }
    // dV += Pᵀ·dO ; dQ += dS·K ; dK += dSᵀ·Q.
    gebp_strided(lv, &probs, dom, dvm, n, n, d, 1, n, d, 1);
    gebp_strided(lv, &dsm, km, dqm, n, n, d, n, 1, d, 1);
    gebp_strided(lv, &dsm, qm, dkm, n, n, d, 1, n, d, 1);
}

#[cfg(test)]
mod tests {
    use super::super::ScalarRef;
    use super::*;

    fn fill(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn gebp_matches_reference_odd_sizes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (17, 33, 19),
            (64, 70, 48),
        ] {
            let a = fill(m * k, |i| ((i * 7 % 13) as f32) - 6.0);
            let b = fill(k * n, |i| ((i * 5 % 11) as f32) * 0.25 - 1.0);
            let spec = MatmulSpec {
                m,
                k,
                n,
                batch_offsets: &[(0, 0)],
                bias: None,
            };
            let mut fast = vec![0.0f32; m * n];
            Blocked::default().matmul(&a, &b, &mut fast, &spec);
            let mut slow = vec![0.0f32; m * n];
            ScalarRef.matmul(&a, &b, &mut slow, &spec);
            for (x, y) in fast.iter().zip(&slow) {
                assert!((x - y).abs() < 1e-3, "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_bias_seeds_rows() {
        let (m, k, n) = (5, 4, 6);
        let a = fill(m * k, |i| i as f32 * 0.1);
        let b = fill(k * n, |i| 1.0 - i as f32 * 0.05);
        let bias = fill(n, |i| 100.0 + i as f32);
        let spec = MatmulSpec {
            m,
            k,
            n,
            batch_offsets: &[(0, 0)],
            bias: Some(&bias),
        };
        let mut fast = vec![0.0f32; m * n];
        Blocked::default().matmul(&a, &b, &mut fast, &spec);
        let mut slow = vec![0.0f32; m * n];
        ScalarRef.matmul(&a, &b, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_row_split_matches_reference() {
        // Few batches + many rows exercises the row-splitting branch.
        let (m, k, n) = (133, 40, 37);
        let a = fill(2 * m * k, |i| ((i % 17) as f32 - 8.0) * 0.3);
        let b = fill(2 * k * n, |i| ((i % 7) as f32 - 3.0) * 0.5);
        let spec = MatmulSpec {
            m,
            k,
            n,
            batch_offsets: &[(0, 0), (1, 1)],
            bias: None,
        };
        let mut fast = vec![0.0f32; 2 * m * n];
        Blocked::default().matmul(&a, &b, &mut fast, &spec);
        let mut slow = vec![0.0f32; 2 * m * n];
        ScalarRef.matmul(&a, &b, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 2e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_attention_matches_reference_with_mask() {
        let (batch, heads, n, d) = (4, 2, 10, 8);
        let q = fill(batch * n * d, |i| ((i * 3 % 23) as f32 - 11.0) * 0.1);
        let k = fill(batch * n * d, |i| ((i * 5 % 19) as f32 - 9.0) * 0.1);
        let v = fill(batch * n * d, |i| ((i * 7 % 29) as f32 - 14.0) * 0.1);
        let nw = 2;
        let mask = fill(nw * n * n, |i| if i % 13 == 0 { -1e9 } else { 0.0 });
        let spec = AttentionSpec {
            batch,
            heads,
            n,
            d,
            scale: 1.0 / (d as f32).sqrt(),
            mask: Some(&mask),
            mask_windows: nw,
        };
        let mut fast = vec![0.0f32; batch * n * d];
        Blocked::default().attention(&q, &k, &v, &mut fast, &spec);
        let mut slow = vec![0.0f32; batch * n * d];
        ScalarRef.attention(&q, &k, &v, &mut slow, &spec);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_sized_matmul_and_attention_are_noops() {
        // m==0 / n==0 outputs must not panic (chunks_mut(0)) on any path.
        for &(m, k, n) in &[(0usize, 3usize, 4usize), (4, 3, 0), (0, 0, 0), (2, 0, 3)] {
            let a = vec![0.0f32; m * k];
            let b = vec![0.0f32; k * n];
            let spec = MatmulSpec {
                m,
                k,
                n,
                batch_offsets: &[(0, 0)],
                bias: None,
            };
            // Per the trait contract `out` is pre-zeroed.
            let mut out = vec![0.0f32; m * n];
            Blocked::default().matmul(&a, &b, &mut out, &spec);
            let mut slow = vec![0.0f32; m * n];
            ScalarRef.matmul(&a, &b, &mut slow, &spec);
            assert_eq!(out, slow, "{m}x{k}x{n}");
        }
        let spec = AttentionSpec {
            batch: 2,
            heads: 1,
            n: 0,
            d: 4,
            scale: 1.0,
            mask: None,
            mask_windows: 1,
        };
        let mut out: Vec<f32> = vec![];
        Blocked::default().attention(&[], &[], &[], &mut out, &spec);
        ScalarRef.attention(&[], &[], &[], &mut out, &spec);
        let mut empty: Vec<f32> = vec![];
        Blocked::default().softmax_rows(&[], &mut empty, 0);
        ScalarRef.softmax_rows(&[], &mut empty, 0);
    }

    #[test]
    fn env_threshold_constructor() {
        let b = Blocked::new(7);
        assert_eq!(b.par_threshold(), 7);
    }

    #[test]
    fn matmul_grads_match_reference() {
        // Shapes cover the serial, per-batch-parallel, and row-split paths.
        for &(m, k, n, nb) in &[
            (3usize, 5usize, 7usize, 1usize),
            (33, 20, 17, 4),
            (133, 40, 37, 2),
        ] {
            let a = fill(nb * m * k, |i| ((i * 7 % 13) as f32 - 6.0) * 0.3);
            let b = fill(nb * k * n, |i| ((i * 5 % 11) as f32 - 5.0) * 0.25);
            let dc = fill(nb * m * n, |i| ((i * 3 % 17) as f32 - 8.0) * 0.2);
            let offsets: Vec<(usize, usize)> = (0..nb).map(|bi| (bi, bi)).collect();
            let spec = MatmulSpec {
                m,
                k,
                n,
                batch_offsets: &offsets,
                bias: None,
            };
            let fast = Blocked::new(1);
            let mut da_f = vec![0.0f32; nb * m * k];
            let mut db_f = vec![0.0f32; nb * k * n];
            fast.matmul_grad_a(&dc, &b, &mut da_f, &spec);
            fast.matmul_grad_b(&a, &dc, &mut db_f, &spec);
            let mut da_s = vec![0.0f32; nb * m * k];
            let mut db_s = vec![0.0f32; nb * k * n];
            ScalarRef.matmul_grad_a(&dc, &b, &mut da_s, &spec);
            ScalarRef.matmul_grad_b(&a, &dc, &mut db_s, &spec);
            for (x, y) in da_f.iter().zip(&da_s) {
                assert!((x - y).abs() < 2e-2, "dA {m}x{k}x{n}x{nb}: {x} vs {y}");
            }
            for (x, y) in db_f.iter().zip(&db_s) {
                assert!((x - y).abs() < 2e-2, "dB {m}x{k}x{n}x{nb}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn attention_grad_matches_reference_with_mask() {
        let (batch, heads, n, d) = (4, 2, 10, 8);
        let q = fill(batch * n * d, |i| ((i * 3 % 23) as f32 - 11.0) * 0.1);
        let k = fill(batch * n * d, |i| ((i * 5 % 19) as f32 - 9.0) * 0.1);
        let v = fill(batch * n * d, |i| ((i * 7 % 29) as f32 - 14.0) * 0.1);
        let dout = fill(batch * n * d, |i| ((i * 11 % 31) as f32 - 15.0) * 0.05);
        let nw = 2;
        let mask = fill(nw * n * n, |i| if i % 13 == 0 { -1e9 } else { 0.0 });
        let spec = AttentionSpec {
            batch,
            heads,
            n,
            d,
            scale: 1.0 / (d as f32).sqrt(),
            mask: Some(&mask),
            mask_windows: nw,
        };
        let sz = batch * n * d;
        let (mut dq_f, mut dk_f, mut dv_f) = (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
        Blocked::new(1).attention_grad(&q, &k, &v, &dout, &mut dq_f, &mut dk_f, &mut dv_f, &spec);
        let (mut dq_s, mut dk_s, mut dv_s) = (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
        ScalarRef.attention_grad(&q, &k, &v, &dout, &mut dq_s, &mut dk_s, &mut dv_s, &spec);
        for (name, f, s) in [
            ("dq", &dq_f, &dq_s),
            ("dk", &dk_f, &dk_s),
            ("dv", &dv_f, &dv_s),
        ] {
            for (x, y) in f.iter().zip(s.iter()) {
                assert!((x - y).abs() < 1e-4, "{name}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn reductions_and_row_grads_match_reference() {
        let (rows, row) = (37, 29);
        let x = fill(rows * row, |i| ((i * 7 % 23) as f32 - 11.0) * 0.17);
        let dy = fill(rows * row, |i| ((i * 5 % 19) as f32 - 9.0) * 0.13);
        let fast = Blocked::new(1);

        let mut cs_f = vec![0.1f32; row];
        let mut cs_s = vec![0.1f32; row];
        fast.col_sums(&x, &mut cs_f, row);
        ScalarRef.col_sums(&x, &mut cs_s, row);
        // axpy(w=1) is a plain add on every path — bitwise equal.
        assert_eq!(cs_f, cs_s);

        let mut rs_f = vec![0.2f32; rows];
        let mut rs_s = vec![0.2f32; rows];
        fast.row_sums(&x, &mut rs_f, row);
        ScalarRef.row_sums(&x, &mut rs_s, row);
        assert_eq!(rs_f, rs_s);

        let mut y = vec![0.0f32; rows * row];
        fast.softmax_rows(&x, &mut y, row);
        let mut sg_f = vec![0.0f32; rows * row];
        let mut sg_s = vec![0.0f32; rows * row];
        fast.softmax_grad_rows(&y, &dy, &mut sg_f, row);
        ScalarRef.softmax_grad_rows(&y, &dy, &mut sg_s, row);
        for (a, b) in sg_f.iter().zip(&sg_s) {
            assert!((a - b).abs() < 1e-5, "softmax grad: {a} vs {b}");
        }

        let mut lg_f = vec![0.0f32; rows * row];
        let mut lg_s = vec![0.0f32; rows * row];
        fast.layernorm_grad_rows(&x, &dy, &mut lg_f, row, 1e-5);
        ScalarRef.layernorm_grad_rows(&x, &dy, &mut lg_s, row, 1e-5);
        for (a, b) in lg_f.iter().zip(&lg_s) {
            assert!((a - b).abs() < 1e-4, "layernorm grad: {a} vs {b}");
        }
    }

    #[test]
    fn fused_optimizer_steps_match_reference() {
        let n = 10_000; // crosses the par threshold with chunked lanes
        let g = fill(n, |i| ((i * 13 % 37) as f32 - 18.0) * 0.02);
        let spec = super::super::AdamStepSpec {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            bc1: 0.1,
            bc2: 1e-3,
        };
        let fast = Blocked::new(1);
        let (mut p_f, mut m_f, mut v_f) = (
            fill(n, |i| (i % 7) as f32 * 0.1),
            vec![0.01; n],
            vec![0.02; n],
        );
        let (mut p_s, mut m_s, mut v_s) = (p_f.clone(), m_f.clone(), v_f.clone());
        fast.adam_step(&mut p_f, &g, &mut m_f, &mut v_f, &spec);
        ScalarRef.adam_step(&mut p_s, &g, &mut m_s, &mut v_s, &spec);
        for (a, b) in p_f.iter().zip(&p_s) {
            assert!((a - b).abs() < 1e-6, "adam p: {a} vs {b}");
        }

        let (mut p_f, mut vel_f) = (fill(n, |i| (i % 5) as f32 * 0.2), vec![0.05f32; n]);
        let (mut p_s, mut vel_s) = (p_f.clone(), vel_f.clone());
        fast.sgd_step(&mut p_f, &g, Some(&mut vel_f), 0.01, 0.9);
        ScalarRef.sgd_step(&mut p_s, &g, Some(&mut vel_s), 0.01, 0.9);
        for (a, b) in p_f.iter().zip(&p_s) {
            assert!((a - b).abs() < 1e-6, "sgd p: {a} vs {b}");
        }
        // Plain SGD (no velocity) path.
        fast.sgd_step(&mut p_f, &g, None, 0.01, 0.0);
        ScalarRef.sgd_step(&mut p_s, &g, None, 0.01, 0.0);
        for (a, b) in p_f.iter().zip(&p_s) {
            assert!((a - b).abs() < 1e-6, "sgd plain p: {a} vs {b}");
        }
    }
}
