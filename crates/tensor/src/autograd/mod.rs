//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records one forward pass; [`Graph::backward`] sweeps the tape
//! in reverse, invoking each node's backward closure once its output
//! gradient is complete (tape order is a topological order, so a single
//! reverse sweep suffices).
//!
//! The tape also meters live activation bytes ([`MemMeter`]) — this is the
//! instrument behind the paper's Table II / Fig. 9 / Fig. 10 memory
//! analysis, and what [`Graph::checkpoint`] trades against recompute.

mod checkpoint;
mod ops;

use std::cell::RefCell;
use std::rc::Rc;

use crate::quant::{Precision, QuantWeight};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Gradient accumulator indexed by tape position.
///
/// Gradients routed at constants (nodes without a backward closure) are
/// dropped — nothing differentiable lies behind them.
pub struct GradBuf {
    grads: Vec<Option<Tensor>>,
    grad_enabled: Vec<bool>,
}

impl GradBuf {
    fn new(grad_enabled: Vec<bool>) -> Self {
        Self {
            grads: (0..grad_enabled.len()).map(|_| None).collect(),
            grad_enabled,
        }
    }

    /// Add `g` into the gradient slot for `v` (no-op for constants).
    pub fn accum(&mut self, v: Var, g: Tensor) {
        if !self.grad_enabled[v.idx()] {
            return;
        }
        let slot = &mut self.grads[v.idx()];
        *slot = Some(match slot.take() {
            Some(mut prev) => {
                // In-place accumulate through the backend — the gradient
                // hot path allocates nothing when `prev` owns its buffer.
                prev.add_assign(&g);
                prev
            }
            None => g,
        });
    }

    /// Gradient of `v`, if any was propagated.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.idx()].as_ref()
    }

    /// Remove and return the gradient of `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads[v.idx()].take()
    }
}

type BackFn = Box<dyn Fn(&Tensor, &mut GradBuf)>;

struct Node {
    value: Tensor,
    back: Option<BackFn>,
}

/// Activation-memory meter: bytes currently held by a tape plus the peak.
#[derive(Copy, Clone, Debug, Default)]
pub struct MemMeter {
    pub current: usize,
    pub peak: usize,
}

impl MemMeter {
    fn add(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Fold a transient peak (e.g. a checkpoint replay) into this meter.
    pub fn observe_transient(&mut self, extra_peak: usize) {
        self.peak = self.peak.max(self.current + extra_peak);
    }
}

/// A recording of one forward pass.
pub struct Graph {
    nodes: Vec<Node>,
    /// When false, ops still compute values but record no backward closures
    /// (inference mode / inner forward of a checkpoint).
    recording: bool,
    /// Training-mode flag consumed by layers like BatchNorm.
    pub training: bool,
    /// Numeric precision of this forward pass. Only consulted by
    /// non-recording graphs: layers with a quantized fast path (Linear)
    /// route through it when the graph is in inference mode and the
    /// precision is below f32.
    precision: Precision,
    meter: MemMeter,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Fresh recording graph (training mode off).
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(256),
            recording: true,
            training: false,
            precision: Precision::F32,
            meter: MemMeter::default(),
        }
    }

    /// Fresh non-recording graph (inference).
    pub fn inference() -> Self {
        let mut g = Self::new();
        g.recording = false;
        g
    }

    /// Fresh non-recording graph running at a reduced numeric precision:
    /// `Linear` layers dequantize through the int8 / f16 weight tiers
    /// instead of the f32 matmul. `Precision::F32` is identical to
    /// [`Graph::inference`].
    pub fn inference_with_precision(p: Precision) -> Self {
        let mut g = Self::inference();
        g.precision = p;
        g
    }

    /// Numeric precision of this graph's forward pass.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Whether backward closures are being recorded.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Activation-memory meter for this tape.
    pub fn meter(&self) -> MemMeter {
        self.meter
    }

    pub(crate) fn meter_mut(&mut self) -> &mut MemMeter {
        &mut self.meter
    }

    /// Push a node; returns its handle.
    pub(crate) fn push(&mut self, value: Tensor, back: Option<BackFn>) -> Var {
        self.meter.add(value.nbytes());
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            value,
            back: if self.recording { back } else { None },
        });
        Var(id)
    }

    /// Value of a node.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.idx()].value
    }

    /// Insert a constant (no gradient flows into it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, None)
    }

    /// Insert a differentiable leaf; its gradient is retrievable from the
    /// [`GradBuf`] returned by [`Graph::backward`].
    pub fn leaf(&mut self, t: Tensor) -> Var {
        // A leaf has no parents; an empty closure marks it as
        // gradient-bearing without doing work.
        self.push(t, Some(Box::new(|_, _| {})))
    }

    /// Insert a parameter leaf. Gradients reaching it are accumulated into
    /// the parameter's grad slot during [`Graph::backward`].
    pub fn param(&mut self, p: &Param) -> Var {
        let value = p.value();
        if self.recording {
            let p2 = p.clone();
            self.push(
                value,
                Some(Box::new(move |g, _| {
                    p2.accum_grad(g);
                })),
            )
        } else {
            self.push(value, None)
        }
    }

    /// Reverse sweep seeding `d(loss)/d(loss) = 1` (loss must be scalar).
    pub fn backward(&mut self, loss: Var) -> GradBuf {
        assert_eq!(
            self.value(loss).numel(),
            1,
            "backward() needs a scalar loss; use backward_seeded for tensors"
        );
        let seed = Tensor::ones(self.value(loss).shape());
        self.backward_seeded(loss, seed)
    }

    /// Reverse sweep with an explicit output gradient.
    pub fn backward_seeded(&mut self, out: Var, seed: Tensor) -> GradBuf {
        assert!(self.recording, "backward on a non-recording graph");
        assert_eq!(self.value(out).shape(), seed.shape(), "seed shape mismatch");
        let enabled: Vec<bool> = self.nodes.iter().map(|n| n.back.is_some()).collect();
        let mut buf = GradBuf::new(enabled);
        buf.accum(out, seed);
        for i in (0..=out.idx()).rev() {
            let Some(g) = buf.grads[i].clone() else {
                continue;
            };
            if let Some(back) = &self.nodes[i].back {
                back(&g, &mut buf);
            }
        }
        buf
    }
}

/// A trainable parameter: a named tensor plus an accumulated gradient.
///
/// Cloning a `Param` shares storage (modules clone into checkpoint
/// closures and the same parameter may be used at several tape positions —
/// all gradients accumulate into the one slot).
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Option<Tensor>,
    /// Lazily-built quantized weight for reduced-precision inference,
    /// keyed by the precision it was built for. Invalidated whenever the
    /// value is replaced ([`Param::set_value`] — the single mutation
    /// path used by optimizers and state loading).
    quant: Option<(Precision, Rc<QuantWeight>)>,
}

impl Param {
    /// New parameter with a diagnostic name.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Self {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad: None,
                quant: None,
            })),
        }
    }

    /// Parameter name (used by state dicts).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Current value (cheap `Arc` clone).
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Replace the value (used by optimizers and state loading). Drops
    /// any cached quantized representation — it was built from the old
    /// bits.
    pub fn set_value(&self, t: Tensor) {
        let mut inner = self.inner.borrow_mut();
        inner.value = t;
        inner.quant = None;
    }

    /// The quantized representation of this parameter at `precision`,
    /// building (and caching) it on first use. `shape` is the expected
    /// `[k, n]` of the weight.
    ///
    /// `Precision::Int8` runs the per-layer calibration gate and may
    /// return the f16 tier (see [`crate::quant::select_tier`]).
    pub fn quantized(&self, precision: Precision, k: usize, n: usize) -> Rc<QuantWeight> {
        assert_ne!(precision, Precision::F32, "f32 has no quantized form");
        {
            let inner = self.inner.borrow();
            if let Some((p, q)) = &inner.quant {
                if *p == precision {
                    return Rc::clone(q);
                }
            }
        }
        let value = self.value();
        assert_eq!(
            value.shape(),
            [k, n],
            "param '{}': quantized() expects a [k, n] weight",
            self.name()
        );
        let qw = Rc::new(QuantWeight::build(value.as_slice(), k, n, precision));
        self.inner.borrow_mut().quant = Some((precision, Rc::clone(&qw)));
        qw
    }

    /// Accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.borrow().grad.clone()
    }

    /// Add `g` into the gradient slot.
    pub fn accum_grad(&self, g: &Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.value.shape(),
            g.shape(),
            "param '{}' grad shape mismatch",
            inner.name
        );
        inner.grad = Some(match inner.grad.take() {
            Some(mut prev) => {
                prev.add_assign(g);
                prev
            }
            None => g.clone(),
        });
    }

    /// Clear the gradient slot.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_grad_through_add_mul() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let xy = g.mul(x, y);
        let s = g.sum_all(xy);
        let grads = g.backward(s);
        // d(sum x*y)/dx = y
        assert_eq!(grads.get(x).unwrap().as_slice(), &[3.0, 4.0]);
        assert_eq!(grads.get(y).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn param_accumulates_across_uses() {
        let mut g = Graph::new();
        let p = Param::new("w", Tensor::from_vec(vec![2.0], &[1]));
        let a = g.param(&p);
        let b = g.param(&p); // same param inserted twice
        let s1 = g.add(a, b);
        let s = g.sum_all(s1);
        let _ = g.backward(s);
        // d(a+b)/dp = 2
        assert_eq!(p.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn constants_get_no_grad() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::from_vec(vec![5.0], &[1]));
        let x = g.leaf(Tensor::from_vec(vec![3.0], &[1]));
        let y = g.mul(c, x);
        let s = g.sum_all(y);
        let grads = g.backward(s);
        assert!(grads.get(c).is_none());
        assert_eq!(grads.get(x).unwrap().as_slice(), &[5.0]);
    }

    #[test]
    fn inference_graph_records_nothing() {
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::ones(&[4]));
        let y = g.gelu(x);
        assert_eq!(g.value(y).numel(), 4);
        assert!(!g.is_recording());
    }

    #[test]
    fn meter_counts_bytes() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[100]));
        let _y = g.scale(x, 2.0);
        assert_eq!(g.meter().current, 2 * 100 * 4);
        assert_eq!(g.meter().peak, 2 * 100 * 4);
    }

    #[test]
    fn param_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2]));
        p.accum_grad(&Tensor::ones(&[2]));
        assert!(p.grad().is_some());
        p.zero_grad();
        assert!(p.grad().is_none());
    }
}
