//! Differentiable operations on the tape.
//!
//! Each op computes its value eagerly and (when recording) pushes a backward
//! closure capturing cheap `Arc` clones of whatever tensors the gradient
//! needs. Gradients of broadcast operands are reduced with
//! [`Tensor::sum_to`], the adjoint of broadcasting.
//!
//! Backward closures run on the same [`crate::backend::Backend`] kernels as
//! the forward pass: matmul/linear adjoints go through the strided-GEBP
//! `matmul_grad_a`/`matmul_grad_b` + `col_sums`, activations through the
//! `GeluGrad`/`TanhGrad`/`ReluGrad` unary kernels (SIMD lanes under
//! `Blocked`), and softmax / layer-norm / attention through their dedicated
//! fused row/block backward kernels — the `(B, H, N, N)` attention score
//! tensor is never materialized on the tape.

use super::{Graph, Var};
use crate::backend::{self, AttentionSpec, UnaryOp};
use crate::tensor::{matmul_grads, Tensor};

impl Graph {
    // ---------------------------------------------------------------- binary

    /// Elementwise `a + b` with broadcasting.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let out = va.add(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.sum_to(&sa));
                buf.accum(b, g.sum_to(&sb));
            })),
        )
    }

    /// Elementwise `a - b` with broadcasting.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let out = va.sub(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.sum_to(&sa));
                buf.accum(b, g.neg().sum_to(&sb));
            })),
        )
    }

    /// Elementwise `a * b` with broadcasting.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let out = va.mul(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.mul(&vb).sum_to(&sa));
                buf.accum(b, g.mul(&va).sum_to(&sb));
            })),
        )
    }

    /// Elementwise `a / b` with broadcasting.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        let out = va.div(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.div(&vb).sum_to(&sa));
                let gb = g.mul(&va).div(&vb.square()).neg();
                buf.accum(b, gb.sum_to(&sb));
            })),
        )
    }

    /// Batched matrix multiplication (see [`Tensor::matmul`]).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a).clone();
        let vb = self.value(b).clone();
        assert!(
            va.ndim() >= 2 && vb.ndim() >= 2,
            "autograd matmul requires ndim >= 2 operands"
        );
        let out = va.matmul(&vb);
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // dA = g·Bᵀ, dB = Aᵀ·g on the backend's strided-GEBP adjoint
                // kernels (broadcast batch dims reduced inside).
                let (da, db) = matmul_grads(&va, &vb, g);
                buf.accum(a, da);
                buf.accum(b, db);
            })),
        )
    }

    // ----------------------------------------------------------------- unary

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let out = self.value(a).scale(c);
        self.push(out, Some(Box::new(move |g, buf| buf.accum(a, g.scale(c)))))
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let out = self.value(a).add_scalar(c);
        self.push(out, Some(Box::new(move |g, buf| buf.accum(a, g.clone()))))
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let out = self.value(a).neg();
        self.push(out, Some(Box::new(move |g, buf| buf.accum(a, g.neg()))))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let va = self.value(a).clone();
        let out = va.square();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.mul(&va).scale(2.0));
            })),
        )
    }

    /// Elementwise reciprocal square root.
    pub fn rsqrt(&mut self, a: Var) -> Var {
        let out = self.value(a).rsqrt();
        let y = out.clone();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // d/dx x^-1/2 = -1/2 x^-3/2 = -y^3 / 2
                let dy = y.square().mul(&y).scale(-0.5);
                buf.accum(a, g.mul(&dy));
            })),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).exp();
        let y = out.clone();
        self.push(out, Some(Box::new(move |g, buf| buf.accum(a, g.mul(&y)))))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.value(a).tanh();
        let y = out.clone();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // 1 − y² through the named kernel (y = tanh(x) is saved, so
                // backward never re-evaluates the transcendental).
                let d = y.unary_op(UnaryOp::TanhGrad);
                buf.accum(a, g.mul(&d));
            })),
        )
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let va = self.value(a).clone();
        let out = va.gelu();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // The GeluGrad kernel — simd::gelu_grad lanes under Blocked.
                let d = va.unary_op(UnaryOp::GeluGrad);
                buf.accum(a, g.mul(&d));
            })),
        )
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let va = self.value(a).clone();
        let out = va.relu();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let d = va.unary_op(UnaryOp::ReluGrad);
                buf.accum(a, g.mul(&d));
            })),
        )
    }

    // ---------------------------------------------------------------- layout

    /// Reshape (element count preserved, zero copy forward).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let out = self.value(a).reshaped(shape);
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.reshaped(&in_shape));
            })),
        )
    }

    /// Permute axes; backward applies the inverse permutation.
    pub fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let out = self.value(a).permute(axes);
        let mut inv = vec![0usize; axes.len()];
        for (i, &ax) in axes.iter().enumerate() {
            inv[ax] = i;
        }
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.permute(&inv));
            })),
        )
    }

    /// Zero-pad; backward narrows the gradient back out.
    pub fn pad(&mut self, a: Var, pads: &[(usize, usize)]) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let out = self.value(a).pad(pads);
        let pads = pads.to_vec();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let mut ga = g.clone();
                for (d, &(before, _)) in pads.iter().enumerate() {
                    ga = ga.narrow(d, before, in_shape[d]);
                }
                buf.accum(a, ga);
            })),
        )
    }

    /// Slice `[start, start+len)` along `axis`; backward zero-pads back.
    pub fn narrow(&mut self, a: Var, axis: usize, start: usize, len: usize) -> Var {
        let in_dim = self.value(a).shape()[axis];
        let out = self.value(a).narrow(axis, start, len);
        let nd = self.value(a).ndim();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let mut pads = vec![(0, 0); nd];
                pads[axis] = (start, in_dim - start - len);
                buf.accum(a, g.pad(&pads));
            })),
        )
    }

    /// Concatenate along `axis`; backward splits the gradient.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        let vals: Vec<Tensor> = parts.iter().map(|&p| self.value(p).clone()).collect();
        let refs: Vec<&Tensor> = vals.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let lens: Vec<usize> = vals.iter().map(|v| v.shape()[axis]).collect();
        let parts = parts.to_vec();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let mut off = 0;
                for (&p, &len) in parts.iter().zip(&lens) {
                    buf.accum(p, g.narrow(axis, off, len));
                    off += len;
                }
            })),
        )
    }

    /// Cyclic shift; backward rolls the opposite way.
    pub fn roll(&mut self, a: Var, shifts: &[isize]) -> Var {
        let out = self.value(a).roll(shifts);
        let inv: Vec<isize> = shifts.iter().map(|&s| -s).collect();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.roll(&inv));
            })),
        )
    }

    // ------------------------------------------------------------ reductions

    /// Sum over `axes`, keeping them as size-1 dims.
    pub fn sum_axes_keepdims(&mut self, a: Var, axes: &[usize]) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let out = self.value(a).sum_axes_keepdims(axes);
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.broadcast_to(&in_shape));
            })),
        )
    }

    /// Mean over `axes`, keeping them as size-1 dims.
    pub fn mean_axes_keepdims(&mut self, a: Var, axes: &[usize]) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let count: usize = axes.iter().map(|&ax| in_shape[ax]).product();
        let out = self.value(a).mean_axes_keepdims(axes);
        let inv = 1.0 / count as f32;
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, g.broadcast_to(&in_shape).scale(inv));
            })),
        )
    }

    /// Scalar sum of all elements.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let out = Tensor::scalar(self.value(a).sum_all());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, Tensor::full(&in_shape, g.item()));
            })),
        )
    }

    /// Scalar mean of all elements.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let in_shape = self.value(a).shape().to_vec();
        let n = self.value(a).numel() as f32;
        let out = Tensor::scalar(self.value(a).mean_all());
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                buf.accum(a, Tensor::full(&in_shape, g.item() / n));
            })),
        )
    }

    // ------------------------------------------------------------- softmax &c

    /// Softmax over the last axis.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let out = self.value(a).softmax_last();
        let y = out.clone();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // dx = (g − Σ g⊙y) ⊙ y per row — one fused kernel pass
                // instead of the mul/sum/sub/mul composite.
                let row = *y.shape().last().expect("softmax output is ndim >= 1");
                let mut dx = vec![0.0f32; y.numel()];
                backend::current().softmax_grad_rows(y.as_slice(), g.as_slice(), &mut dx, row);
                buf.accum(a, Tensor::from_vec(dx, y.shape()));
            })),
        )
    }

    // ------------------------------------------------------------- composites

    /// Fused linear layer `x @ w + bias` — forward goes through the
    /// backend's bias-seeded matmul kernel (one pass, no separate
    /// broadcast-add); backward shares the standard matmul adjoints.
    ///
    /// `x`: `(rows, in)`, `w`: `(in, out)`, `bias`: `(out)`.
    pub fn linear(&mut self, x: Var, w: Var, bias: Option<Var>) -> Var {
        let Some(bvar) = bias else {
            return self.matmul(x, w);
        };
        let vx = self.value(x).clone();
        let vw = self.value(w).clone();
        let vb = self.value(bvar).clone();
        let out = vx.matmul_bias(&vw, &vb);
        let sb = vb.shape().to_vec();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                // dX = g·Wᵀ, dW = Xᵀ·g via the strided-GEBP adjoints;
                // dB = Σ_rows g via the column-reduction kernel.
                let (dx, dw) = matmul_grads(&vx, &vw, g);
                buf.accum(x, dx);
                buf.accum(w, dw);
                let n = vb.numel();
                let mut dbias = vec![0.0f32; n];
                backend::current().col_sums(g.as_slice(), &mut dbias, n);
                buf.accum(bvar, Tensor::from_vec(dbias, &sb));
            })),
        )
    }

    /// Linear layer with a fused activation. In inference graphs the
    /// activation runs in place on the matmul output (zero extra
    /// allocations); recording graphs fall back to the differentiable
    /// composite. Only `Gelu`/`Relu`/`Tanh`/`Exp` are accepted — checked
    /// in both modes, so a call that works in inference cannot start
    /// panicking the first time it runs on a recording graph.
    pub fn linear_act(&mut self, x: Var, w: Var, bias: Option<Var>, act: UnaryOp) -> Var {
        assert!(
            matches!(
                act,
                UnaryOp::Gelu | UnaryOp::Relu | UnaryOp::Tanh | UnaryOp::Exp
            ),
            "linear_act: unsupported differentiable activation {act:?}"
        );
        if !self.is_recording() {
            // Build the matmul output off-tape so the activation mutates a
            // uniquely-owned buffer — one kernel pass, zero extra copies.
            let mut t = match bias {
                Some(bvar) => self.value(x).matmul_bias(self.value(w), self.value(bvar)),
                None => self.value(x).matmul(self.value(w)),
            };
            t.unary_op_inplace(act);
            return self.push(t, None);
        }
        let y = self.linear(x, w, bias);
        match act {
            UnaryOp::Gelu => self.gelu(y),
            UnaryOp::Relu => self.relu(y),
            UnaryOp::Tanh => self.tanh(y),
            UnaryOp::Exp => self.exp(y),
            _ => unreachable!("validated above"),
        }
    }

    /// Multi-head attention core: `softmax(q·kᵀ·scale + mask) @ v`.
    ///
    /// `q`, `k`, `v`: `(B, H, N, hd)`; `mask`: `(num_windows, N, N)`
    /// additive, with `B` a multiple of `num_windows` (Swin layout).
    ///
    /// Both inference and recording graphs run the backend's fused kernel —
    /// the `(B, H, N, N)` score tensor is never materialized, not even on
    /// the tape. The backward closure saves only `Arc` clones of q/k/v and
    /// replays probabilities inside the backend's `attention_grad` kernel
    /// (`O(n²)` scratch per batch-head).
    pub fn attention(&mut self, q: Var, k: Var, v: Var, mask: Option<&Tensor>, scale: f32) -> Var {
        let shape = self.value(q).shape().to_vec();
        assert_eq!(shape.len(), 4, "attention expects (B, H, N, hd) operands");
        let (b, h, n, hd) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(self.value(k).shape(), &shape[..], "q/k shape mismatch");
        assert_eq!(self.value(v).shape(), &shape[..], "q/v shape mismatch");
        let nw = mask.map_or(1, |m| {
            assert_eq!(m.ndim(), 3, "mask must be (num_windows, N, N)");
            let nw = m.shape()[0];
            assert_eq!(m.shape(), &[nw, n, n], "mask must be (num_windows, N, N)");
            assert_eq!(b % nw, 0, "batch {b} not a multiple of num_windows {nw}");
            nw
        });

        let spec = AttentionSpec {
            batch: b * h,
            heads: h,
            n,
            d: hd,
            scale,
            mask: mask.map(|m| m.as_slice()),
            mask_windows: nw,
        };
        let mut out = vec![0.0f32; b * h * n * hd];
        backend::current().attention(
            self.value(q).as_slice(),
            self.value(k).as_slice(),
            self.value(v).as_slice(),
            &mut out,
            &spec,
        );
        let out = Tensor::from_vec(out, &shape);
        if !self.is_recording() {
            return self.push(out, None);
        }

        let vq = self.value(q).clone();
        let vk = self.value(k).clone();
        let vv = self.value(v).clone();
        let mask = mask.cloned();
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let spec = AttentionSpec {
                    batch: b * h,
                    heads: h,
                    n,
                    d: hd,
                    scale,
                    mask: mask.as_ref().map(|m| m.as_slice()),
                    mask_windows: nw,
                };
                let sz = b * h * n * hd;
                let mut dq = vec![0.0f32; sz];
                let mut dk = vec![0.0f32; sz];
                let mut dv = vec![0.0f32; sz];
                backend::current().attention_grad(
                    vq.as_slice(),
                    vk.as_slice(),
                    vv.as_slice(),
                    g.as_slice(),
                    &mut dq,
                    &mut dk,
                    &mut dv,
                    &spec,
                );
                buf.accum(q, Tensor::from_vec(dq, &shape));
                buf.accum(k, Tensor::from_vec(dk, &shape));
                buf.accum(v, Tensor::from_vec(dv, &shape));
            })),
        )
    }

    /// Layer normalization over the last axis (no affine; compose with
    /// `mul`/`add` for gamma/beta).
    ///
    /// Both inference and recording graphs use the backend's fused row
    /// kernel; the backward closure re-derives the per-row statistics from
    /// the saved input inside `layernorm_grad_rows` — the six-node
    /// mean/sub/square/rsqrt composite never lands on the tape.
    pub fn layer_norm(&mut self, x: Var, eps: f32) -> Var {
        let vx = self.value(x).clone();
        let row = *vx.shape().last().expect("layer_norm needs ndim >= 1");
        let mut out = vec![0.0f32; vx.numel()];
        backend::current().layernorm_rows(vx.as_slice(), &mut out, row, eps);
        let shape = vx.shape().to_vec();
        let out = Tensor::from_vec(out, &shape);
        if !self.is_recording() {
            return self.push(out, None);
        }
        self.push(
            out,
            Some(Box::new(move |g, buf| {
                let mut dx = vec![0.0f32; vx.numel()];
                backend::current().layernorm_grad_rows(
                    vx.as_slice(),
                    g.as_slice(),
                    &mut dx,
                    row,
                    eps,
                );
                buf.accum(x, Tensor::from_vec(dx, &shape));
            })),
        )
    }

    /// Mean squared error between `pred` and `target`.
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let d2 = self.square(d);
        self.mean_all(d2)
    }

    /// Masked MSE: `sum(mask * (pred - target)^2) / sum(mask)`.
    ///
    /// `mask` should be a constant 0/1 tensor (e.g. the water mask — land
    /// cells carry no loss).
    pub fn masked_mse_loss(&mut self, pred: Var, target: Var, mask: Var) -> Var {
        let mask_sum = self.value(mask).sum_all().max(1.0);
        let d = self.sub(pred, target);
        let d2 = self.square(d);
        let md = self.mul(d2, mask);
        let s = self.sum_all(md);
        self.scale(s, 1.0 / mask_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::GradBuf;

    /// Central finite-difference check of `d out/d x` for a scalar-valued
    /// composite built by `f`.
    fn check_grad(build: impl Fn(&mut Graph, Var) -> Var, x0: Tensor, tol: f32) {
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let out = build(&mut g, x);
        assert_eq!(g.value(out).numel(), 1, "check_grad needs scalar output");
        let grads: GradBuf = g.backward(out);
        let analytic = grads.get(x).expect("no grad reached x").clone();

        // Finite differences.
        let h = 1e-2f32;
        for i in 0..x0.numel() {
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= h;
            let fp = {
                let mut g = Graph::inference();
                let x = g.leaf(xp);
                let o = build(&mut g, x);
                g.value(o).item()
            };
            let fm = {
                let mut g = Graph::inference();
                let x = g.leaf(xm);
                let o = build(&mut g, x);
                g.value(o).item()
            };
            let fd = (fp - fm) / (2.0 * h);
            let an = analytic.as_slice()[i];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "grad mismatch at {i}: analytic {an} vs fd {fd}"
            );
        }
    }

    fn test_input(n: usize) -> Tensor {
        Tensor::from_vec(
            (0..n)
                .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.31 + 0.05)
                .collect(),
            &[n],
        )
    }

    #[test]
    fn grad_add_mul_chain() {
        check_grad(
            |g, x| {
                let y = g.mul(x, x);
                let z = g.add(y, x);
                g.sum_all(z)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_sub_div() {
        check_grad(
            |g, x| {
                let c = g.constant(Tensor::full(&[6], 2.5));
                let y = g.div(x, c);
                let z = g.sub(y, x);
                let w = g.square(z);
                g.sum_all(w)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        check_grad(
            |g, x| {
                let xm = g.reshape(x, &[2, 3]);
                let w = g.constant(Tensor::from_vec(
                    vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1],
                    &[3, 2],
                ));
                let y = g.matmul(xm, w);
                let y2 = g.square(y);
                g.sum_all(y2)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["gelu", "tanh", "relu", "exp"] {
            check_grad(
                move |g, x| {
                    let y = match act {
                        "gelu" => g.gelu(x),
                        "tanh" => g.tanh(x),
                        "relu" => g.relu(x),
                        _ => g.exp(x),
                    };
                    let y2 = g.square(y);
                    g.sum_all(y2)
                },
                test_input(5),
                2e-2,
            );
        }
    }

    #[test]
    fn grad_softmax() {
        check_grad(
            |g, x| {
                let xm = g.reshape(x, &[2, 3]);
                let s = g.softmax_last(xm);
                let w = g.constant(Tensor::from_vec(
                    vec![1.0, -2.0, 0.5, 3.0, 0.1, -1.0],
                    &[2, 3],
                ));
                let sw = g.mul(s, w);
                g.sum_all(sw)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_layout_ops() {
        check_grad(
            |g, x| {
                let xm = g.reshape(x, &[2, 3]);
                let p = g.permute(xm, &[1, 0]);
                let padded = g.pad(p, &[(1, 0), (0, 1)]);
                let rolled = g.roll(padded, &[1, -1]);
                let n = g.narrow(rolled, 0, 1, 3);
                let sq = g.square(n);
                g.sum_all(sq)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_concat() {
        check_grad(
            |g, x| {
                let a = g.narrow(x, 0, 0, 3);
                let b = g.narrow(x, 0, 3, 3);
                let sq = g.square(b);
                let c = g.concat(&[a, sq], 0);
                let c2 = g.square(c);
                g.sum_all(c2)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_reductions() {
        check_grad(
            |g, x| {
                let xm = g.reshape(x, &[2, 3]);
                let m = g.mean_axes_keepdims(xm, &[1]);
                let s = g.sum_axes_keepdims(xm, &[0]);
                let ms = g.matmul(m, s); // (2,1)@(1,3) -> (2,3)
                let sq = g.square(ms);
                g.mean_all(sq)
            },
            test_input(6),
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_grad(
            |g, x| {
                let xm = g.reshape(x, &[2, 4]);
                let ln = g.layer_norm(xm, 1e-5);
                let w = g.constant(Tensor::from_vec(
                    (0..8).map(|i| (i as f32 - 3.5) * 0.3).collect(),
                    &[2, 4],
                ));
                let y = g.mul(ln, w);
                g.sum_all(y)
            },
            test_input(8),
            3e-2,
        );
    }

    #[test]
    fn grad_broadcast_add() {
        // x [3] broadcast against constant [2,3]
        check_grad(
            |g, x| {
                let c = g.constant(Tensor::from_vec(
                    vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                    &[2, 3],
                ));
                let y = g.add(x, c);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            test_input(3),
            1e-2,
        );
    }

    #[test]
    fn grad_rsqrt() {
        let x0 = Tensor::from_vec(vec![0.5, 1.0, 2.0, 4.0], &[4]);
        check_grad(
            |g, x| {
                let y = g.rsqrt(x);
                g.sum_all(y)
            },
            x0,
            2e-2,
        );
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let t = g.constant(Tensor::from_vec(vec![0.0, 0.0], &[2]));
        let loss = g.mse_loss(x, t);
        assert!((g.value(loss).item() - 2.5).abs() < 1e-6);
        let grads = g.backward(loss);
        // d/dx mean((x-t)^2) = 2(x-t)/n = [1.0, 2.0]
        assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn masked_mse_ignores_masked_cells() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 100.0], &[2]));
        let t = g.constant(Tensor::zeros(&[2]));
        let m = g.constant(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        let loss = g.masked_mse_loss(x, t, m);
        assert!((g.value(loss).item() - 1.0).abs() < 1e-6);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().as_slice()[1], 0.0);
    }
}
