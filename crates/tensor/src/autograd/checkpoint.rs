//! Activation checkpointing: trade recompute for peak activation memory.
//!
//! The paper (§III-D) keeps SW-MSA activations but discards everything else,
//! recomputing discarded activations during backward. Here the same idea is
//! a generic tape op: `checkpoint` runs a sub-forward on a scratch
//! (non-recording) tape so intermediate activations are never retained on
//! the main tape; backward replays the sub-forward with recording on and
//! back-propagates through the replay.
//!
//! Parameters used inside the checkpointed closure are re-inserted on the
//! replay tape by the module's own `forward`, so their gradients flow into
//! the shared [`super::Param`] slots exactly as in the un-checkpointed case.

use std::rc::Rc;

use super::{Graph, Var};

impl Graph {
    /// Run `f` as a checkpointed segment over `inputs`.
    ///
    /// Forward: `f` executes on a scratch non-recording graph; only the
    /// segment inputs and output land on this tape. Backward: `f` is
    /// replayed on a fresh recording graph seeded with the incoming
    /// gradient, and input gradients are routed back to `inputs`.
    ///
    /// `f` must be pure given its inputs and any captured parameters (no
    /// interior mutation), since it runs once or twice depending on whether
    /// backward is reached.
    pub fn checkpoint<F>(&mut self, inputs: &[Var], f: F) -> Var
    where
        F: Fn(&mut Graph, &[Var]) -> Var + 'static,
    {
        let in_vals: Vec<_> = inputs.iter().map(|&v| self.value(v).clone()).collect();
        let training = self.training;

        // Forward on a scratch tape: no backward closures, activations die
        // with the scratch graph.
        let mut scratch = Graph::inference();
        scratch.training = training;
        let scratch_inputs: Vec<Var> = in_vals.iter().map(|t| scratch.leaf(t.clone())).collect();
        let scratch_out = f(&mut scratch, &scratch_inputs);
        let out_val = scratch.value(scratch_out).clone();
        // The transient forward peak still happened; record it so the meter
        // reflects the true high-water mark of this step.
        let transient = scratch.meter().peak;
        self.meter_mut().observe_transient(transient);

        if !self.is_recording() {
            return self.push(out_val, None);
        }

        let f = Rc::new(f);
        let inputs_main: Vec<Var> = inputs.to_vec();
        self.push(
            out_val,
            Some(Box::new(move |g_out, buf| {
                // Replay with recording on.
                let mut replay = Graph::new();
                replay.training = training;
                let replay_inputs: Vec<Var> =
                    in_vals.iter().map(|t| replay.leaf(t.clone())).collect();
                let out = f(&mut replay, &replay_inputs);
                let mut inner = replay.backward_seeded(out, g_out.clone());
                for (&main_var, &replay_var) in inputs_main.iter().zip(&replay_inputs) {
                    if let Some(gi) = inner.take(replay_var) {
                        buf.accum(main_var, gi);
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Param;
    use crate::tensor::Tensor;

    #[test]
    fn checkpoint_matches_plain_gradients() {
        let x0 = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.05], &[4]);
        let w = Tensor::from_vec(vec![1.5, -0.5, 0.8, 2.0], &[4]);

        // Plain.
        let (plain_loss, plain_gx, plain_gp) = {
            let p = Param::new("w", w.clone());
            let mut g = Graph::new();
            let x = g.leaf(x0.clone());
            let pw = g.param(&p);
            let y = g.mul(x, pw);
            let z = g.gelu(y);
            let loss = g.sum_all(z);
            let grads = g.backward(loss);
            (
                g.value(loss).item(),
                grads.get(x).unwrap().clone(),
                p.grad().unwrap(),
            )
        };

        // Checkpointed.
        let (ck_loss, ck_gx, ck_gp) = {
            let p = Param::new("w", w.clone());
            let p2 = p.clone();
            let mut g = Graph::new();
            let x = g.leaf(x0.clone());
            let y = g.checkpoint(&[x], move |g, ins| {
                let pw = g.param(&p2);
                let m = g.mul(ins[0], pw);
                g.gelu(m)
            });
            let loss = g.sum_all(y);
            let grads = g.backward(loss);
            (
                g.value(loss).item(),
                grads.get(x).unwrap().clone(),
                p.grad().unwrap(),
            )
        };

        assert!((plain_loss - ck_loss).abs() < 1e-6);
        assert!(plain_gx.allclose(&ck_gx, 1e-6));
        assert!(plain_gp.allclose(&ck_gp, 1e-6));
    }

    #[test]
    fn checkpoint_reduces_tape_bytes() {
        let x0 = Tensor::ones(&[1000]);
        // Plain: 6 intermediate tensors on tape.
        let mut g_plain = Graph::new();
        let x = g_plain.leaf(x0.clone());
        let mut cur = x;
        for _ in 0..6 {
            cur = g_plain.gelu(cur);
        }
        let _ = g_plain.sum_all(cur);
        let plain_bytes = g_plain.meter().current;

        // Checkpointed: the 6 intermediates live only on the scratch tape.
        let mut g_ck = Graph::new();
        let x = g_ck.leaf(x0);
        let y = g_ck.checkpoint(&[x], |g, ins| {
            let mut cur = ins[0];
            for _ in 0..6 {
                cur = g.gelu(cur);
            }
            cur
        });
        let _ = g_ck.sum_all(y);
        let ck_bytes = g_ck.meter().current;

        assert!(
            ck_bytes * 2 < plain_bytes,
            "checkpointing should shrink the live tape: {ck_bytes} vs {plain_bytes}"
        );
        // But the transient peak was still observed.
        assert!(g_ck.meter().peak >= 6 * 1000 * 4);
    }

    #[test]
    fn nested_checkpoints() {
        let x0 = Tensor::from_vec(vec![0.5, -0.25], &[2]);
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let y = g.checkpoint(&[x], |g, ins| {
            let inner = g.checkpoint(&[ins[0]], |g, ins2| {
                let s = g.square(ins2[0]);
                g.gelu(s)
            });
            g.scale(inner, 3.0)
        });
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap().clone();

        // Compare with plain composition.
        let mut g2 = Graph::new();
        let x2 = g2.leaf(x0);
        let s = g2.square(x2);
        let ge = g2.gelu(s);
        let sc = g2.scale(ge, 3.0);
        let loss2 = g2.sum_all(sc);
        let grads2 = g2.backward(loss2);
        assert!(gx.allclose(grads2.get(x2).unwrap(), 1e-6));
    }

    #[test]
    fn checkpoint_in_inference_mode_is_transparent() {
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::ones(&[3]));
        let y = g.checkpoint(&[x], |g, ins| g.scale(ins[0], 2.0));
        assert_eq!(g.value(y).as_slice(), &[2.0, 2.0, 2.0]);
    }
}
