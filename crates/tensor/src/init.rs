//! Weight initializers (deterministic, seeded).
//!
//! [`defer`] suppresses the (expensive, rejection-sampling) random fills
//! for code paths that construct a module skeleton only to overwrite every
//! parameter immediately — e.g. rebuilding a model from a snapshot on a
//! serve-pool worker, where the wasted init work used to land inside the
//! serving-latency window.

use std::cell::Cell;

use rand::rngs::StdRng;
use rand::Rng;

use crate::tensor::Tensor;

thread_local! {
    static DEFER_INIT: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard from [`defer`]; initializers fill with zeros while it lives.
pub struct DeferGuard {
    prev: bool,
}

impl Drop for DeferGuard {
    fn drop(&mut self) {
        DEFER_INIT.with(|f| f.set(self.prev));
    }
}

/// Suppress random weight initialization on this thread until the returned
/// guard drops: [`randn`], [`trunc_normal`], [`xavier_uniform`] and
/// [`uniform`] return zero tensors of the right shape (the RNG is not
/// advanced). Only sound when every produced parameter is overwritten
/// before use — `load_state_dict` asserts it covers every param, which is
/// what makes the snapshot-restore path safe.
pub fn defer() -> DeferGuard {
    DEFER_INIT.with(|f| {
        let prev = f.get();
        f.set(true);
        DeferGuard { prev }
    })
}

#[inline]
fn deferred() -> bool {
    DEFER_INIT.with(|f| f.get())
}

/// Standard normal sample via Box-Muller (rand 0.8 has no Normal distr
/// without rand_distr; two uniforms suffice here).
pub fn sample_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Tensor of N(0, std²) samples.
pub fn randn(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    if deferred() {
        return Tensor::zeros(shape);
    }
    let n = crate::shape::numel(shape);
    Tensor::from_vec((0..n).map(|_| sample_normal(rng) * std).collect(), shape)
}

/// Truncated normal in ±2 std (re-sample outside), the ViT/Swin default.
pub fn trunc_normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    if deferred() {
        return Tensor::zeros(shape);
    }
    let n = crate::shape::numel(shape);
    let data = (0..n)
        .map(|_| loop {
            let v = sample_normal(rng);
            if v.abs() <= 2.0 {
                return v * std;
            }
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    if deferred() {
        return Tensor::zeros(&[fan_in, fan_out]);
    }
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n = fan_in * fan_out;
    Tensor::from_vec(
        (0..n)
            .map(|_| rng.gen::<f32>() * 2.0 * bound - bound)
            .collect(),
        &[fan_in, fan_out],
    )
}

/// Uniform in [lo, hi).
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    if deferred() {
        return Tensor::zeros(shape);
    }
    let n = crate::shape::numel(shape);
    Tensor::from_vec(
        (0..n).map(|_| rng.gen::<f32>() * (hi - lo) + lo).collect(),
        shape,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean_all();
        let var = t.square().mean_all() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn trunc_normal_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = trunc_normal(&[5000], 0.02, &mut rng);
        assert!(t.max_all() <= 0.04 + 1e-6);
        assert!(t.min_all() >= -0.04 - 1e-6);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.max_all() <= bound);
        assert!(t.min_all() >= -bound);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn defer_guard_zeroes_without_advancing_rng() {
        let mut rng = StdRng::seed_from_u64(9);
        {
            let _g = defer();
            assert!(randn(&[8], 1.0, &mut rng)
                .as_slice()
                .iter()
                .all(|&v| v == 0.0));
            assert!(trunc_normal(&[8], 1.0, &mut rng)
                .as_slice()
                .iter()
                .all(|&v| v == 0.0));
            {
                let _inner = defer(); // nesting keeps the outer guard live
            }
            assert!(uniform(&[4], 1.0, 2.0, &mut rng)
                .as_slice()
                .iter()
                .all(|&v| v == 0.0));
            assert!(xavier_uniform(3, 2, &mut rng)
                .as_slice()
                .iter()
                .all(|&v| v == 0.0));
        }
        // Guard dropped: sampling resumes, and because deferred calls never
        // touched the RNG, the stream matches a fresh seed-9 generator.
        let fresh = randn(&[8], 1.0, &mut StdRng::seed_from_u64(9));
        let after = randn(&[8], 1.0, &mut rng);
        assert_eq!(fresh.as_slice(), after.as_slice());
    }
}
