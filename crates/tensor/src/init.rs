//! Weight initializers (deterministic, seeded).

use rand::rngs::StdRng;
use rand::Rng;

use crate::tensor::Tensor;

/// Standard normal sample via Box-Muller (rand 0.8 has no Normal distr
/// without rand_distr; two uniforms suffice here).
pub fn sample_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Tensor of N(0, std²) samples.
pub fn randn(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n = crate::shape::numel(shape);
    Tensor::from_vec((0..n).map(|_| sample_normal(rng) * std).collect(), shape)
}

/// Truncated normal in ±2 std (re-sample outside), the ViT/Swin default.
pub fn trunc_normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n = crate::shape::numel(shape);
    let data = (0..n)
        .map(|_| loop {
            let v = sample_normal(rng);
            if v.abs() <= 2.0 {
                return v * std;
            }
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n = fan_in * fan_out;
    Tensor::from_vec(
        (0..n)
            .map(|_| rng.gen::<f32>() * 2.0 * bound - bound)
            .collect(),
        &[fan_in, fan_out],
    )
}

/// Uniform in [lo, hi).
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let n = crate::shape::numel(shape);
    Tensor::from_vec(
        (0..n).map(|_| rng.gen::<f32>() * (hi - lo) + lo).collect(),
        shape,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean_all();
        let var = t.square().mean_all() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn trunc_normal_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = trunc_normal(&[5000], 0.02, &mut rng);
        assert!(t.max_all() <= 0.04 + 1e-6);
        assert!(t.min_all() >= -0.04 - 1e-6);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.max_all() <= bound);
        assert!(t.min_all() >= -bound);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
