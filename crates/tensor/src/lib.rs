//! # coastal-tensor
//!
//! A self-contained tensor / autograd / neural-network library powering the
//! 4D Swin Transformer surrogate of this repository.
//!
//! Components:
//! - [`tensor::Tensor`]: dense row-major `f32` tensors with cheap `Arc`
//!   cloning and rayon-parallel kernels (batched matmul, softmax,
//!   broadcasting elementwise ops, layout ops).
//! - [`autograd::Graph`]: tape-based reverse-mode autodiff with activation
//!   memory metering and generic activation checkpointing
//!   ([`autograd::Graph::checkpoint`]).
//! - [`nn`]: Linear / LayerNorm / BatchNorm / MLP / multi-head attention
//!   modules sharing parameters through [`autograd::Param`] handles.
//! - [`optim`]: SGD, Adam, AdamW, gradient clipping.
//! - [`f16`]: software IEEE binary16 used as the snapshot storage dtype
//!   (the paper compresses its FP64 ROMS archive to FP16 for training).
//!
//! ```
//! use ctensor::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layer = Linear::new("demo", 4, 2, true, &mut rng);
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&mut g, x);
//! let loss = g.mean_all(y);
//! g.backward(loss);
//! assert!(layer.weight.grad().is_some());
//! ```

pub mod autograd;
pub mod backend;
pub mod f16;
pub mod init;
pub mod nn;
pub mod optim;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;

/// Convenient glob import.
pub mod prelude {
    pub use crate::autograd::{GradBuf, Graph, MemMeter, Param, Var};
    pub use crate::backend::{Backend, BackendChoice, Blocked, ScalarRef, ShapeError};
    pub use crate::f16::F16;
    pub use crate::nn::{
        average_states, load_state_dict, state_dict, BatchNorm, LayerNorm, Linear, Mlp, Module,
        MultiHeadAttention,
    };
    pub use crate::optim::{clip_grad_norm, zero_grads, Adam, Sgd};
    pub use crate::quant::Precision;
    pub use crate::tensor::Tensor;
}
