//! Shape and stride arithmetic for row-major dense tensors.
//!
//! Shapes are plain `Vec<usize>`; tensors in this crate are always stored
//! contiguously in row-major (C) order, so strides are derived, never stored.

/// Number of elements implied by a shape. The empty shape is a scalar (1).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Convert a flat row-major offset into a multi-index for `shape`.
pub fn unravel(mut offset: usize, shape: &[usize], out: &mut [usize]) {
    debug_assert_eq!(shape.len(), out.len());
    for i in (0..shape.len()).rev() {
        out[i] = offset % shape[i];
        offset /= shape[i];
    }
}

/// Convert a multi-index into a flat row-major offset.
pub fn ravel(index: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(index.len(), shape.len());
    let mut offset = 0;
    for (&i, &d) in index.iter().zip(shape.iter()) {
        debug_assert!(i < d, "index {i} out of bounds for dim {d}");
        offset = offset * d + i;
    }
    offset
}

/// NumPy-style broadcast of two shapes.
///
/// Returns the broadcast shape, or `None` if the shapes are incompatible.
/// Dimensions are aligned from the right; a dimension of 1 stretches.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let n = a.len().max(b.len());
    let mut out = vec![0; n];
    for i in 0..n {
        let da = if i < n - a.len() {
            1
        } else {
            a[i - (n - a.len())]
        };
        let db = if i < n - b.len() {
            1
        } else {
            b[i - (n - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// True if `from` can broadcast to exactly `to` (right-aligned).
pub fn broadcastable_to(from: &[usize], to: &[usize]) -> bool {
    if from.len() > to.len() {
        return false;
    }
    let off = to.len() - from.len();
    from.iter().zip(&to[off..]).all(|(&f, &t)| f == t || f == 1)
}

/// Strides to iterate a tensor of shape `from` as if it had shape `to`
/// (broadcast dims get stride 0). Panics if not broadcastable.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    assert!(
        broadcastable_to(from, to),
        "cannot broadcast {from:?} to {to:?}"
    );
    let base = strides_for(from);
    let off = to.len() - from.len();
    let mut out = vec![0; to.len()];
    for i in 0..from.len() {
        out[off + i] = if from[i] == 1 { 0 } else { base[i] };
    }
    out
}

/// Normalize a (possibly negative-like) axis list: checks bounds, sorts,
/// dedups. Axes here are always non-negative `usize`.
pub fn normalize_axes(axes: &[usize], ndim: usize) -> Vec<usize> {
    let mut v: Vec<usize> = axes.to_vec();
    for &a in &v {
        assert!(a < ndim, "axis {a} out of range for ndim {ndim}");
    }
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [3, 4, 5];
        let mut idx = [0; 3];
        for off in 0..numel(&shape) {
            unravel(off, &shape, &mut idx);
            assert_eq!(ravel(&idx, &shape), off);
        }
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]), Some(vec![3, 4]));
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
        assert_eq!(broadcast_shapes(&[], &[2, 2]), Some(vec![2, 2]));
    }

    #[test]
    fn broadcast_strides_zeroes_stretched_dims() {
        let s = broadcast_strides(&[3, 1], &[2, 3, 4]);
        assert_eq!(s, vec![0, 1, 0]);
    }

    #[test]
    fn broadcastable_to_checks() {
        assert!(broadcastable_to(&[1, 4], &[3, 4]));
        assert!(broadcastable_to(&[4], &[3, 4]));
        assert!(!broadcastable_to(&[2, 4], &[3, 4]));
        assert!(!broadcastable_to(&[3, 4, 5], &[4, 5]));
    }
}
