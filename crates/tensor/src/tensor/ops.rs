//! Elementwise and reduction operations.
//!
//! Every *named* op (add/mul/…, exp/tanh/…, softmax, sums) dispatches
//! through the active [`crate::backend::Backend`] — one virtual call per
//! kernel, shared by forward and backward passes. The generic [`Tensor::map`]
//! / [`Tensor::zip`] closures remain for one-off derivatives that have no
//! named kernel.

use rayon::prelude::*;

use super::{par_threshold, Tensor};
use crate::backend::{self, BinaryOp, ShapeError, UnaryOp};
use crate::shape::{broadcast_shapes, broadcast_strides, normalize_axes, numel, strides_for};

impl Tensor {
    /// Apply `f` elementwise, producing a new tensor.
    ///
    /// For the named elementwise kernels prefer the dedicated methods
    /// (`exp`, `tanh`, …) — those dispatch through the compute backend.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = vec![0.0f32; self.numel()];
        if self.numel() >= par_threshold() {
            out.par_iter_mut()
                .zip(self.as_slice().par_iter())
                .for_each(|(o, &x)| *o = f(x));
        } else {
            for (o, &x) in out.iter_mut().zip(self.as_slice()) {
                *o = f(x);
            }
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Named unary kernel through the active backend.
    pub fn unary_op(&self, op: UnaryOp) -> Tensor {
        let mut out = vec![0.0f32; self.numel()];
        backend::current().unary(op, self.as_slice(), &mut out);
        Tensor::from_vec(out, self.shape())
    }

    /// Named unary kernel in place (copy-on-write; allocation-free when
    /// this tensor owns its buffer).
    pub fn unary_op_inplace(&mut self, op: UnaryOp) {
        backend::current().unary_inplace(op, self.as_mut_slice());
    }

    /// Apply `f(self[i], other[j])` with NumPy broadcasting.
    ///
    /// # Panics
    /// If the shapes don't broadcast; use [`Tensor::try_zip`] to handle the
    /// mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        self.try_zip(other, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Broadcasting `zip` with a typed shape error.
    pub fn try_zip(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor, ShapeError> {
        let out_shape =
            broadcast_shapes(self.shape(), other.shape()).ok_or_else(|| ShapeError::Broadcast {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            })?;
        // Fast path: identical shapes — straight zip, no index math.
        if self.shape() == other.shape() {
            let mut out = vec![0.0f32; self.numel()];
            if self.numel() >= par_threshold() {
                out.par_iter_mut()
                    .zip(self.as_slice().par_iter().zip(other.as_slice().par_iter()))
                    .for_each(|(o, (&a, &b))| *o = f(a, b));
            } else {
                for ((o, &a), &b) in out.iter_mut().zip(self.as_slice()).zip(other.as_slice()) {
                    *o = f(a, b);
                }
            }
            return Ok(Tensor::from_vec(out, &out_shape));
        }
        let sa = broadcast_strides(self.shape(), &out_shape);
        let sb = broadcast_strides(other.shape(), &out_shape);
        let n = numel(&out_shape);
        let da = self.as_slice();
        let db = other.as_slice();
        let nd = out_shape.len();
        let compute = |start: usize, chunk: &mut [f32]| {
            let mut idx = vec![0usize; nd];
            crate::shape::unravel(start, &out_shape, &mut idx);
            let mut off_a: usize = idx.iter().zip(&sa).map(|(&i, &s)| i * s).sum();
            let mut off_b: usize = idx.iter().zip(&sb).map(|(&i, &s)| i * s).sum();
            for o in chunk.iter_mut() {
                *o = f(da[off_a], db[off_b]);
                // Increment the multi-index (row-major odometer), updating
                // both offsets incrementally.
                for d in (0..nd).rev() {
                    idx[d] += 1;
                    off_a += sa[d];
                    off_b += sb[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    off_a -= sa[d] * out_shape[d];
                    off_b -= sb[d] * out_shape[d];
                    idx[d] = 0;
                }
            }
        };
        let mut out = vec![0.0f32; n];
        if n >= par_threshold() {
            let chunk = n
                .div_ceil(rayon::current_num_threads().max(1) * 4)
                .max(1024);
            out.par_chunks_mut(chunk).enumerate().for_each(|(ci, c)| {
                compute(ci * chunk, c);
            });
        } else {
            compute(0, &mut out);
        }
        Ok(Tensor::from_vec(out, &out_shape))
    }

    /// Named binary kernel with broadcasting through the active backend.
    pub fn try_binary_op(&self, other: &Tensor, op: BinaryOp) -> Result<Tensor, ShapeError> {
        let out_shape =
            broadcast_shapes(self.shape(), other.shape()).ok_or_else(|| ShapeError::Broadcast {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            })?;
        let be = backend::current();
        let mut out = vec![0.0f32; numel(&out_shape)];
        if self.shape() == other.shape() {
            be.binary(op, self.as_slice(), other.as_slice(), &mut out);
        } else {
            let sa = broadcast_strides(self.shape(), &out_shape);
            let sb = broadcast_strides(other.shape(), &out_shape);
            be.binary_strided(
                op,
                self.as_slice(),
                &sa,
                other.as_slice(),
                &sb,
                &out_shape,
                &mut out,
            );
        }
        Ok(Tensor::from_vec(out, &out_shape))
    }

    fn binary_op(&self, other: &Tensor, op: BinaryOp) -> Tensor {
        self.try_binary_op(other, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// In-place `self = op(self, other)` for equal shapes; falls back to an
    /// allocating broadcast op otherwise.
    pub fn binary_assign(&mut self, other: &Tensor, op: BinaryOp) {
        if self.shape() == other.shape() {
            backend::current().binary_inplace(op, self.as_mut_slice(), other.as_slice());
        } else {
            *self = self.binary_op(other, op);
        }
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, BinaryOp::Add)
    }

    /// In-place addition (the gradient-accumulation hot path).
    pub fn add_assign(&mut self, other: &Tensor) {
        self.binary_assign(other, BinaryOp::Add);
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, BinaryOp::Sub)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, BinaryOp::Mul)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary_op(other, BinaryOp::Div)
    }

    /// Multiply by a scalar.
    pub fn scale(&self, c: f32) -> Tensor {
        self.unary_op(UnaryOp::Scale(c))
    }

    /// Add a scalar.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.unary_op(UnaryOp::AddScalar(c))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.unary_op(UnaryOp::Neg)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.unary_op(UnaryOp::Square)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.unary_op(UnaryOp::Sqrt)
    }

    /// Elementwise reciprocal square root.
    pub fn rsqrt(&self) -> Tensor {
        self.unary_op(UnaryOp::Rsqrt)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.unary_op(UnaryOp::Exp)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.unary_op(UnaryOp::Abs)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.unary_op(UnaryOp::Tanh)
    }

    /// Elementwise ReLU.
    pub fn relu(&self) -> Tensor {
        self.unary_op(UnaryOp::Relu)
    }

    /// GELU activation (tanh approximation, matching common DL frameworks).
    pub fn gelu(&self) -> Tensor {
        self.unary_op(UnaryOp::Gelu)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum_all(&self) -> f32 {
        backend::current().sum(self.as_slice()) as f32
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        self.sum_all() / self.numel() as f32
    }

    /// Maximum element.
    pub fn max_all(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min_all(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Sum over the given axes, keeping them as size-1 dims.
    pub fn sum_axes_keepdims(&self, axes: &[usize]) -> Tensor {
        let axes = normalize_axes(axes, self.ndim());
        let mut out_shape = self.shape().to_vec();
        for &a in &axes {
            out_shape[a] = 1;
        }
        let n_out = numel(&out_shape);
        let mut out = vec![0.0f32; n_out];
        let in_shape = self.shape().to_vec();
        let nd = in_shape.len();

        // Fast path: reductions over a leading prefix and/or trailing suffix
        // of axes (bias gradients, broadcast adjoints, batch-norm statistics
        // — every backward-pass reduction in practice) route through the
        // backend's parallel column/row-sum kernels. Anything else falls to
        // the serial odometer below.
        if !axes.is_empty() && self.numel() > 0 {
            let p = (0..nd).take_while(|d| axes.contains(d)).count();
            let s = (0..nd - p)
                .take_while(|i| axes.contains(&(nd - 1 - i)))
                .count();
            if axes.len() == p + s {
                let lead: usize = in_shape[..p].iter().product();
                let tail: usize = in_shape[nd - s..].iter().product();
                let rest = self.numel() / lead; // mid·tail
                let be = backend::current();
                let colled: std::borrow::Cow<'_, [f32]> = if p > 0 && lead > 1 {
                    let mut tmp = vec![0.0f32; rest];
                    be.col_sums(self.as_slice(), &mut tmp, rest);
                    tmp.into()
                } else {
                    self.as_slice().into()
                };
                if s > 0 && tail > 1 {
                    be.row_sums(&colled, &mut out, tail);
                } else {
                    out.copy_from_slice(&colled);
                }
                return Tensor::from_vec(out, &out_shape);
            }
        }

        let out_strides = strides_for(&out_shape);
        let data = self.as_slice();
        // Serial odometer walk over the input, accumulating into the output.
        // Reductions here are small relative to matmuls; keep it simple.
        let mut idx = vec![0usize; nd];
        let mut out_off = 0usize;
        for &v in data {
            out[out_off] += v;
            for d in (0..nd).rev() {
                idx[d] += 1;
                if out_shape[d] != 1 {
                    out_off += out_strides[d];
                }
                if idx[d] < in_shape[d] {
                    break;
                }
                if out_shape[d] != 1 {
                    out_off -= out_strides[d] * in_shape[d];
                }
                idx[d] = 0;
            }
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Mean over the given axes, keeping them as size-1 dims.
    pub fn mean_axes_keepdims(&self, axes: &[usize]) -> Tensor {
        let axes = normalize_axes(axes, self.ndim());
        let count: usize = axes.iter().map(|&a| self.shape()[a]).product();
        let mut out = self.sum_axes_keepdims(&axes);
        out.unary_op_inplace(UnaryOp::Scale(1.0 / count as f32));
        out
    }

    /// Reduce this tensor (by summation) down to `target` shape — the adjoint
    /// of broadcasting. `target` must be broadcastable to `self.shape()`.
    pub fn sum_to(&self, target: &[usize]) -> Tensor {
        if self.shape() == target {
            return self.clone();
        }
        let nd = self.ndim();
        let off = nd - target.len();
        // Sum away leading dims plus any stretched (size-1-in-target) dims.
        let mut axes: Vec<usize> = (0..off).collect();
        for (i, &t) in target.iter().enumerate() {
            if t == 1 && self.shape()[off + i] != 1 {
                axes.push(off + i);
            }
        }
        let r = self.sum_axes_keepdims(&axes);
        r.reshaped(target)
    }

    /// Materialize this tensor broadcast to `target` shape.
    pub fn broadcast_to(&self, target: &[usize]) -> Tensor {
        if self.shape() == target {
            return self.clone();
        }
        let strides = broadcast_strides(self.shape(), target);
        let n = numel(target);
        let data = self.as_slice();
        let nd = target.len();
        let mut out = vec![0.0f32; n];
        let mut idx = vec![0usize; nd];
        let mut src = 0usize;
        for o in out.iter_mut() {
            *o = data[src];
            for d in (0..nd).rev() {
                idx[d] += 1;
                src += strides[d];
                if idx[d] < target[d] {
                    break;
                }
                src -= strides[d] * target[d];
                idx[d] = 0;
            }
        }
        Tensor::from_vec(out, target)
    }

    /// Softmax over the last axis, numerically stabilized.
    pub fn softmax_last(&self) -> Tensor {
        let n = *self.shape().last().expect("softmax needs ndim >= 1");
        let mut out = vec![0.0f32; self.numel()];
        backend::current().softmax_rows(self.as_slice(), &mut out, n);
        Tensor::from_vec(out, self.shape())
    }
}

/// GELU (tanh approximation) on a scalar.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![10., 20., 30.], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33.]);
    }

    #[test]
    fn broadcast_row_and_col() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3, 1]);
        let b = Tensor::from_vec(vec![10., 20.], &[1, 2]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[11., 21., 12., 22., 13., 23.]);
    }

    #[test]
    fn broadcast_scalar_like() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]);
        let s = Tensor::scalar(5.0);
        assert_eq!(a.mul(&s).as_slice(), &[5., 10.]);
    }

    #[test]
    fn incompatible_shapes_error_is_typed() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4]);
        match a.try_binary_op(&b, BinaryOp::Add) {
            Err(ShapeError::Broadcast { lhs, rhs }) => {
                assert_eq!(lhs, vec![2, 3]);
                assert_eq!(rhs, vec![4]);
            }
            other => panic!("expected Broadcast error, got {other:?}"),
        }
        assert!(a.try_zip(&b, |x, y| x + y).is_err());
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn incompatible_add_panics() {
        let _ = Tensor::ones(&[2, 3]).add(&Tensor::ones(&[4]));
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]);
        let expect = a.add(&b);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), expect.as_slice());
        // Broadcasting fallback still works in place.
        let mut c = Tensor::ones(&[2, 3]);
        c.add_assign(&Tensor::from_vec(vec![1., 2., 3.], &[3]));
        assert_eq!(c.as_slice(), &[2., 3., 4., 2., 3., 4.]);
    }

    #[test]
    fn inplace_unary_copy_on_write() {
        let mut a = Tensor::from_vec(vec![1., 4., 9.], &[3]);
        let shared = a.clone();
        a.unary_op_inplace(UnaryOp::Sqrt);
        assert_eq!(a.as_slice(), &[1., 2., 3.]);
        assert_eq!(
            shared.as_slice(),
            &[1., 4., 9.],
            "clone must not observe mutation"
        );
    }

    #[test]
    fn sum_axes_keepdims_matrix() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let rows = a.sum_axes_keepdims(&[1]);
        assert_eq!(rows.shape(), &[2, 1]);
        assert_eq!(rows.as_slice(), &[3., 12.]);
        let cols = a.sum_axes_keepdims(&[0]);
        assert_eq!(cols.shape(), &[1, 3]);
        assert_eq!(cols.as_slice(), &[3., 5., 7.]);
        let all = a.sum_axes_keepdims(&[0, 1]);
        assert_eq!(all.as_slice(), &[15.]);
    }

    #[test]
    fn sum_to_inverts_broadcast() {
        let a = Tensor::ones(&[2, 3, 4]);
        let r = a.sum_to(&[3, 1]);
        assert_eq!(r.shape(), &[3, 1]);
        assert!(r.as_slice().iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1., 2., 3., 1., 1., 1.], &[2, 3]);
        let s = a.softmax_last();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // uniform row -> uniform softmax
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![100., 101., 102.], &[3]);
        let b = Tensor::from_vec(vec![0., 1., 2.], &[3]);
        assert!(a.softmax_last().allclose(&b.softmax_last(), 1e-6));
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841192).abs() < 1e-4);
        assert!((gelu_scalar(-1.0) + 0.158808).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_diff() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad_scalar(x) - fd).abs() < 1e-3,
                "x={x}: {} vs {}",
                gelu_grad_scalar(x),
                fd
            );
        }
    }

    #[test]
    fn mean_all_matches() {
        let a = Tensor::arange(5);
        assert!((a.mean_all() - 2.0).abs() < 1e-6);
    }
}
