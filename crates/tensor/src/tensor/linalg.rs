//! Batched matrix multiplication, the dominant kernel of the surrogate.
//!
//! `matmul` treats the trailing two axes as matrices and broadcasts the
//! leading (batch) axes NumPy-style. Shape/stride resolution happens here;
//! the flat kernel itself is the active [`crate::backend::Backend`]'s
//! `matmul` (cache-blocked + panel-packed + rayon-parallel under
//! [`crate::backend::Blocked`], a naive triple loop under
//! [`crate::backend::ScalarRef`]).

use super::Tensor;
use crate::backend::{self, MatmulSpec, ShapeError};
use crate::shape::{broadcast_shapes, broadcast_strides, numel, unravel};

impl Tensor {
    /// Batched matrix product with broadcasting over leading dims.
    ///
    /// Shapes: `(..., m, k) @ (..., k, n) -> (broadcast(...), m, n)`.
    /// 1-D operands are promoted like NumPy (`[k] @ [k, n]`, `[m, k] @ [k]`).
    ///
    /// # Panics
    /// On shape mismatch; use [`Tensor::try_matmul`] for a typed error.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.try_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Tensor::matmul`] with a typed [`ShapeError`] instead of a panic.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        // Promote 1-D operands.
        let a = if self.ndim() == 1 {
            self.reshaped(&[1, self.shape()[0]])
        } else {
            self.clone()
        };
        let b = if other.ndim() == 1 {
            other.reshaped(&[other.shape()[0], 1])
        } else {
            other.clone()
        };
        let out = try_matmul_nd(&a, &b, None)?;
        // Undo promotion.
        Ok(match (self.ndim(), other.ndim()) {
            (1, 1) => out.reshaped(&[]),
            (1, _) => {
                let mut s = out.shape().to_vec();
                s.remove(s.len() - 2);
                out.reshaped(&s)
            }
            (_, 1) => {
                let mut s = out.shape().to_vec();
                s.pop();
                out.reshaped(&s)
            }
            _ => out,
        })
    }

    /// Fused `self @ other + bias` (bias broadcast over rows) — the linear
    /// layer's kernel, saving the separate broadcast-add pass.
    pub fn matmul_bias(&self, other: &Tensor, bias: &Tensor) -> Tensor {
        self.try_matmul_bias(other, bias)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Tensor::matmul_bias`] with a typed error.
    pub fn try_matmul_bias(&self, other: &Tensor, bias: &Tensor) -> Result<Tensor, ShapeError> {
        if self.ndim() < 2 || other.ndim() < 2 {
            return Err(ShapeError::Rank {
                op: "matmul_bias",
                shape: if self.ndim() < 2 {
                    self.shape().to_vec()
                } else {
                    other.shape().to_vec()
                },
                min_ndim: 2,
            });
        }
        let n = other.shape()[other.ndim() - 1];
        if bias.shape() != [n] {
            return Err(ShapeError::Broadcast {
                lhs: bias.shape().to_vec(),
                rhs: vec![n],
            });
        }
        try_matmul_nd(self, other, Some(bias))
    }
}

/// Adjoints of [`Tensor::matmul`] / [`Tensor::matmul_bias`]: given the
/// forward operands and the upstream gradient `g` of shape
/// `(batch..., m, n)`, returns `(dA, dB)` already sum-reduced onto the
/// operand shapes (the adjoint of batch broadcasting).
///
/// The per-batch products `dA = g·Bᵀ` and `dB = Aᵀ·g` run on the backend's
/// dedicated [`crate::backend::Backend::matmul_grad_a`] /
/// [`crate::backend::Backend::matmul_grad_b`] kernels — transposed operands
/// are read by stride, never materialized. Both operands must be ≥ 2-D
/// (the autograd layer enforces this before recording).
pub(crate) fn matmul_grads(a: &Tensor, b: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    let (m, k) = (a.shape()[a.ndim() - 2], a.shape()[a.ndim() - 1]);
    let n = b.shape()[b.ndim() - 1];
    let a_batch = &a.shape()[..a.ndim() - 2];
    let b_batch = &b.shape()[..b.ndim() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .expect("matmul_grads: operands already multiplied in the forward pass");
    let n_batch = numel(&batch_shape);
    let a_bstrides = broadcast_strides(a_batch, &batch_shape);
    let b_bstrides = broadcast_strides(b_batch, &batch_shape);
    let nd = batch_shape.len();
    let batch_offsets: Vec<(usize, usize)> = (0..n_batch)
        .map(|bi| {
            let mut idx = vec![0usize; nd];
            unravel(bi, &batch_shape, &mut idx);
            let ao: usize = idx.iter().zip(&a_bstrides).map(|(&i, &s)| i * s).sum();
            let bo: usize = idx.iter().zip(&b_bstrides).map(|(&i, &s)| i * s).sum();
            (ao, bo)
        })
        .collect();
    let spec = MatmulSpec {
        m,
        k,
        n,
        batch_offsets: &batch_offsets,
        bias: None,
    };
    let be = backend::current();
    let mut da = vec![0.0f32; n_batch * m * k];
    be.matmul_grad_a(g.as_slice(), b.as_slice(), &mut da, &spec);
    let mut db = vec![0.0f32; n_batch * k * n];
    be.matmul_grad_b(a.as_slice(), g.as_slice(), &mut db, &spec);
    let mut da_shape = batch_shape.clone();
    da_shape.extend([m, k]);
    let mut db_shape = batch_shape;
    db_shape.extend([k, n]);
    (
        Tensor::from_vec(da, &da_shape).sum_to(a.shape()),
        Tensor::from_vec(db, &db_shape).sum_to(b.shape()),
    )
}

fn try_matmul_nd(a: &Tensor, b: &Tensor, bias: Option<&Tensor>) -> Result<Tensor, ShapeError> {
    let (am, ak) = (a.shape()[a.ndim() - 2], a.shape()[a.ndim() - 1]);
    let (bk, bn) = (b.shape()[b.ndim() - 2], b.shape()[b.ndim() - 1]);
    if ak != bk {
        return Err(ShapeError::MatmulInner {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let a_batch = &a.shape()[..a.ndim() - 2];
    let b_batch = &b.shape()[..b.ndim() - 2];
    let batch_shape =
        broadcast_shapes(a_batch, b_batch).ok_or_else(|| ShapeError::MatmulBatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        })?;
    let n_batch = numel(&batch_shape);

    // Per-batch matrix indices honoring broadcast.
    let a_bstrides = broadcast_strides(a_batch, &batch_shape);
    let b_bstrides = broadcast_strides(b_batch, &batch_shape);
    let nd = batch_shape.len();
    let batch_offsets: Vec<(usize, usize)> = (0..n_batch)
        .map(|bi| {
            let mut idx = vec![0usize; nd];
            unravel(bi, &batch_shape, &mut idx);
            let ao: usize = idx.iter().zip(&a_bstrides).map(|(&i, &s)| i * s).sum();
            let bo: usize = idx.iter().zip(&b_bstrides).map(|(&i, &s)| i * s).sum();
            (ao, bo)
        })
        .collect();

    let mut out_shape = batch_shape.clone();
    out_shape.push(am);
    out_shape.push(bn);
    let mut out = vec![0.0f32; n_batch * am * bn];
    let spec = MatmulSpec {
        m: am,
        k: ak,
        n: bn,
        batch_offsets: &batch_offsets,
        bias: bias.map(|t| t.as_slice()),
    };
    backend::current().matmul(a.as_slice(), b.as_slice(), &mut out, &spec);
    Ok(Tensor::from_vec(out, &out_shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let b = Tensor::arange(12).reshaped(&[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 4]);
        // row 0: [0,1,2] . cols of b
        assert_eq!(c.at(&[0, 0]), 0. * 0. + 1. * 4. + 2. * 8.);
        assert_eq!(c.at(&[1, 3]), 3. * 3. + 4. * 7. + 5. * 11.);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::arange(2 * 2 * 3).reshaped(&[2, 2, 3]);
        let b = Tensor::arange(2 * 3 * 2).reshaped(&[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Batch 1 must equal standalone product of its matrices.
        let a1 = a.narrow(0, 1, 1).reshaped(&[2, 3]);
        let b1 = b.narrow(0, 1, 1).reshaped(&[3, 2]);
        let c1 = a1.matmul(&b1);
        assert_eq!(
            c.narrow(0, 1, 1).reshaped(&[2, 2]).as_slice(),
            c1.as_slice()
        );
    }

    #[test]
    fn matmul_broadcast_batch() {
        // (1,2,2) @ (3,2,2) broadcasts to (3,2,2)
        let a = Tensor::arange(4).reshaped(&[1, 2, 2]);
        let b = Tensor::ones(&[3, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 2]);
        for bi in 0..3 {
            assert_eq!(c.at(&[bi, 0, 0]), 1.0);
            assert_eq!(c.at(&[bi, 1, 1]), 5.0);
        }
    }

    #[test]
    fn matmul_vec_promotions() {
        let v = Tensor::from_vec(vec![1., 2.], &[2]);
        let m = Tensor::arange(6).reshaped(&[2, 3]);
        let r = v.matmul(&m);
        assert_eq!(r.shape(), &[3]);
        // m = [[0,1,2],[3,4,5]]; v @ m = [1*0+2*3, 1*1+2*4, 1*2+2*5]
        assert_eq!(r.as_slice(), &[6., 9., 12.]);
        let r2 = m.transpose_last().matmul(&v);
        assert_eq!(r2.shape(), &[3]);
        assert_eq!(r2.as_slice(), r.as_slice());
        let dot = v.matmul(&v);
        assert_eq!(dot.shape(), &[] as &[usize]);
        assert_eq!(dot.item(), 5.0);
    }

    #[test]
    fn matmul_identity() {
        let n = 17;
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let a = Tensor::arange(n * n).reshaped(&[n, n]);
        assert!(a.matmul(&eye).allclose(&a, 1e-5));
        assert!(eye.matmul(&a).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_large_parallel_matches_serial_small_blocks() {
        // Compose a large product from per-batch small products.
        let b = 9;
        let a = Tensor::from_vec(
            (0..b * 40 * 30).map(|i| ((i % 13) as f32) - 6.0).collect(),
            &[b, 40, 30],
        );
        let w = Tensor::from_vec(
            (0..b * 30 * 20).map(|i| ((i % 7) as f32) - 3.0).collect(),
            &[b, 30, 20],
        );
        let full = a.matmul(&w);
        for bi in 0..b {
            let ai = a.narrow(0, bi, 1).reshaped(&[40, 30]);
            let wi = w.narrow(0, bi, 1).reshaped(&[30, 20]);
            let ci = ai.matmul(&wi);
            assert!(full
                .narrow(0, bi, 1)
                .reshaped(&[40, 20])
                .allclose(&ci, 1e-4));
        }
    }

    #[test]
    fn zero_row_matmul_yields_empty_output() {
        let a = Tensor::from_vec(vec![], &[0, 3]);
        let b = Tensor::ones(&[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[0, 4]);
        assert_eq!(c.numel(), 0);
    }

    #[test]
    fn try_matmul_reports_typed_errors() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 5]);
        match a.try_matmul(&b) {
            Err(ShapeError::MatmulInner { lhs, rhs }) => {
                assert_eq!(lhs, vec![2, 3]);
                assert_eq!(rhs, vec![4, 5]);
            }
            other => panic!("expected MatmulInner, got {other:?}"),
        }
        // Incompatible batch dims.
        let a = Tensor::ones(&[2, 3, 4]);
        let b = Tensor::ones(&[5, 4, 6]);
        assert!(matches!(
            a.try_matmul(&b),
            Err(ShapeError::MatmulBatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "matmul inner dim mismatch")]
    fn matmul_mismatch_panics_with_message() {
        let _ = Tensor::ones(&[2, 3]).matmul(&Tensor::ones(&[4, 5]));
    }

    #[test]
    fn matmul_bias_matches_unfused() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let w = Tensor::arange(12).reshaped(&[3, 4]);
        let bias = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let fused = a.matmul_bias(&w, &bias);
        let unfused = a.matmul(&w).add(&bias);
        assert!(fused.allclose(&unfused, 1e-5));
        // Bad bias length is a typed error.
        assert!(a.try_matmul_bias(&w, &Tensor::ones(&[3])).is_err());
    }
}
