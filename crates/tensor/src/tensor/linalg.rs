//! Batched matrix multiplication, the dominant kernel of the surrogate.
//!
//! `matmul` treats the trailing two axes as matrices and broadcasts the
//! leading (batch) axes NumPy-style. The inner kernel is a cache-friendly
//! i-k-j loop parallelized with rayon over (batch × row-block) tasks.

use rayon::prelude::*;

use super::Tensor;
use crate::shape::{broadcast_shapes, broadcast_strides, numel, unravel};

impl Tensor {
    /// Batched matrix product with broadcasting over leading dims.
    ///
    /// Shapes: `(..., m, k) @ (..., k, n) -> (broadcast(...), m, n)`.
    /// 1-D operands are promoted like NumPy (`[k] @ [k, n]`, `[m, k] @ [k]`).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        // Promote 1-D operands.
        let a = if self.ndim() == 1 {
            self.reshaped(&[1, self.shape()[0]])
        } else {
            self.clone()
        };
        let b = if other.ndim() == 1 {
            other.reshaped(&[other.shape()[0], 1])
        } else {
            other.clone()
        };
        let out = matmul_nd(&a, &b);
        // Undo promotion.
        match (self.ndim(), other.ndim()) {
            (1, 1) => out.reshaped(&[]),
            (1, _) => {
                let mut s = out.shape().to_vec();
                s.remove(s.len() - 2);
                out.reshaped(&s)
            }
            (_, 1) => {
                let mut s = out.shape().to_vec();
                s.pop();
                out.reshaped(&s)
            }
            _ => out,
        }
    }
}

fn matmul_nd(a: &Tensor, b: &Tensor) -> Tensor {
    let (am, ak) = (a.shape()[a.ndim() - 2], a.shape()[a.ndim() - 1]);
    let (bk, bn) = (b.shape()[b.ndim() - 2], b.shape()[b.ndim() - 1]);
    assert_eq!(
        ak, bk,
        "matmul inner dim mismatch: {:?} @ {:?}",
        a.shape(),
        b.shape()
    );
    let a_batch = &a.shape()[..a.ndim() - 2];
    let b_batch = &b.shape()[..b.ndim() - 2];
    let batch_shape = broadcast_shapes(a_batch, b_batch)
        .unwrap_or_else(|| panic!("matmul batch broadcast {:?} vs {:?}", a_batch, b_batch));
    let n_batch = numel(&batch_shape);

    // Per-batch element offsets honoring broadcast.
    let a_bstrides = broadcast_strides(a_batch, &batch_shape);
    let b_bstrides = broadcast_strides(b_batch, &batch_shape);
    let a_mat = am * ak;
    let b_mat = bk * bn;
    let o_mat = am * bn;

    let mut out_shape = batch_shape.clone();
    out_shape.push(am);
    out_shape.push(bn);
    let mut out = vec![0.0f32; n_batch * o_mat];

    let ad = a.as_slice();
    let bd = b.as_slice();
    let nd = batch_shape.len();

    // Offsets (in matrices) for each flat batch index.
    let batch_offsets: Vec<(usize, usize)> = (0..n_batch)
        .map(|bi| {
            let mut idx = vec![0usize; nd];
            unravel(bi, &batch_shape, &mut idx);
            let ao: usize = idx.iter().zip(&a_bstrides).map(|(&i, &s)| i * s).sum();
            let bo: usize = idx.iter().zip(&b_bstrides).map(|(&i, &s)| i * s).sum();
            (ao, bo)
        })
        .collect();

    let kernel = |bi: usize, rows: std::ops::Range<usize>, out_chunk: &mut [f32]| {
        let (ao, bo) = batch_offsets[bi];
        let a_sub = &ad[ao * a_mat..ao * a_mat + a_mat];
        let b_sub = &bd[bo * b_mat..bo * b_mat + b_mat];
        for (local_i, i) in rows.enumerate() {
            let out_row = &mut out_chunk[local_i * bn..(local_i + 1) * bn];
            let a_row = &a_sub[i * ak..(i + 1) * ak];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b_sub[kk * bn..(kk + 1) * bn];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    };

    let total_flops = n_batch * am * bn * ak;
    if total_flops < 64 * 1024 {
        // Small problem: run serially.
        for bi in 0..n_batch {
            let o = &mut out[bi * o_mat..(bi + 1) * o_mat];
            kernel(bi, 0..am, o);
        }
    } else if n_batch >= rayon::current_num_threads() {
        // Many batches: one task per batch matrix.
        out.par_chunks_mut(o_mat).enumerate().for_each(|(bi, o)| {
            kernel(bi, 0..am, o);
        });
    } else {
        // Few batches: split rows within each matrix.
        let row_block = am.div_ceil(rayon::current_num_threads().max(1)).max(8);
        out.par_chunks_mut(row_block * bn)
            .enumerate()
            .for_each(|(ci, o)| {
                // Chunks run through batches back-to-back: chunk ci covers
                // rows [ci*row_block, …) of batch (ci*row_block)/am when
                // o_mat is a multiple of the chunk — ensured by construction
                // only when am % row_block == 0; handle the general case by
                // recomputing from the flat row index.
                let flat_row = ci * row_block;
                let bi = flat_row / am;
                let r0 = flat_row % am;
                let nrows = o.len() / bn;
                if r0 + nrows <= am {
                    kernel(bi, r0..r0 + nrows, o);
                } else {
                    // Chunk straddles a batch boundary: split it.
                    let first = am - r0;
                    let (o1, o2) = o.split_at_mut(first * bn);
                    kernel(bi, r0..am, o1);
                    kernel(bi + 1, 0..nrows - first, o2);
                }
            });
    }
    Tensor::from_vec(out, &out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let b = Tensor::arange(12).reshaped(&[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 4]);
        // row 0: [0,1,2] . cols of b
        assert_eq!(c.at(&[0, 0]), 0. * 0. + 1. * 4. + 2. * 8.);
        assert_eq!(c.at(&[1, 3]), 3. * 3. + 4. * 7. + 5. * 11.);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::arange(2 * 2 * 3).reshaped(&[2, 2, 3]);
        let b = Tensor::arange(2 * 3 * 2).reshaped(&[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Batch 1 must equal standalone product of its matrices.
        let a1 = a.narrow(0, 1, 1).reshaped(&[2, 3]);
        let b1 = b.narrow(0, 1, 1).reshaped(&[3, 2]);
        let c1 = a1.matmul(&b1);
        assert_eq!(c.narrow(0, 1, 1).reshaped(&[2, 2]).as_slice(), c1.as_slice());
    }

    #[test]
    fn matmul_broadcast_batch() {
        // (1,2,2) @ (3,2,2) broadcasts to (3,2,2)
        let a = Tensor::arange(4).reshaped(&[1, 2, 2]);
        let b = Tensor::ones(&[3, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 2]);
        for bi in 0..3 {
            assert_eq!(c.at(&[bi, 0, 0]), 1.0);
            assert_eq!(c.at(&[bi, 1, 1]), 5.0);
        }
    }

    #[test]
    fn matmul_vec_promotions() {
        let v = Tensor::from_vec(vec![1., 2.], &[2]);
        let m = Tensor::arange(6).reshaped(&[2, 3]);
        let r = v.matmul(&m);
        assert_eq!(r.shape(), &[3]);
        // m = [[0,1,2],[3,4,5]]; v @ m = [1*0+2*3, 1*1+2*4, 1*2+2*5]
        assert_eq!(r.as_slice(), &[6., 9., 12.]);
        let r2 = m.transpose_last().matmul(&v);
        assert_eq!(r2.shape(), &[3]);
        assert_eq!(r2.as_slice(), r.as_slice());
        let dot = v.matmul(&v);
        assert_eq!(dot.shape(), &[] as &[usize]);
        assert_eq!(dot.item(), 5.0);
    }

    #[test]
    fn matmul_identity() {
        let n = 17;
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let a = Tensor::arange(n * n).reshaped(&[n, n]);
        assert!(a.matmul(&eye).allclose(&a, 1e-5));
        assert!(eye.matmul(&a).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_large_parallel_matches_serial_small_blocks() {
        // Compose a large product from per-batch small products.
        let b = 9;
        let a = Tensor::from_vec(
            (0..b * 40 * 30).map(|i| ((i % 13) as f32) - 6.0).collect(),
            &[b, 40, 30],
        );
        let w = Tensor::from_vec(
            (0..b * 30 * 20).map(|i| ((i % 7) as f32) - 3.0).collect(),
            &[b, 30, 20],
        );
        let full = a.matmul(&w);
        for bi in 0..b {
            let ai = a.narrow(0, bi, 1).reshaped(&[40, 30]);
            let wi = w.narrow(0, bi, 1).reshaped(&[30, 20]);
            let ci = ai.matmul(&wi);
            assert!(full
                .narrow(0, bi, 1)
                .reshaped(&[40, 20])
                .allclose(&ci, 1e-4));
        }
    }
}
