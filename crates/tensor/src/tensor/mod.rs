//! Dense row-major `f32` tensor with cheap (`Arc`) cloning.
//!
//! All tensors are contiguous; layout-changing ops (`permute`, `pad`, …)
//! materialize a new contiguous buffer. Mutation goes through
//! [`Tensor::as_mut_slice`], which copies-on-write when the buffer is shared.

mod layout;
mod linalg;
pub mod ops;

pub(crate) use linalg::matmul_grads;

use std::fmt;
use std::sync::Arc;

use crate::shape::{self, numel};

/// Element count above which elementwise/layout kernels switch to rayon —
/// resolved from the active backend, so it is runtime-tunable (the
/// [`crate::backend::Blocked`] constructor / `COASTAL_PAR_THRESHOLD`) and
/// `usize::MAX` (never parallel) under [`crate::backend::ScalarRef`].
#[inline]
pub(crate) fn par_threshold() -> usize {
    crate::backend::current().par_threshold()
}

/// A dense, contiguous, row-major tensor of `f32`.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Build a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(vec![v], &[])
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::from_vec(vec![0.0; numel(shape)], shape)
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Self::from_vec(vec![v; numel(shape)], shape)
    }

    /// `0, 1, 2, …` as f32, shaped `[n]`.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of the buffer in bytes (used by the activation-memory meter).
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Read-only view of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer; clones the storage if shared.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Value of a rank-0 or single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elems",
            self.numel()
        );
        self.data[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[shape::ravel(index, &self.shape)]
    }

    /// Set element at a multi-index (copy-on-write).
    pub fn set(&mut self, index: &[usize], v: f32) {
        let off = shape::ravel(index, &self.shape);
        self.as_mut_slice()[off] = v;
    }

    /// Reinterpret with a new shape of identical element count (no copy).
    pub fn reshaped(&self, new_shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            numel(new_shape),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            new_shape
        );
        Tensor {
            data: Arc::clone(&self.data),
            shape: new_shape.to_vec(),
        }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference against another tensor of equal shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Approximate equality within `tol` (absolute, elementwise).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?}", self.as_slice())?;
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1]
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    fn clone_is_shallow_until_mutated() {
        let mut a = Tensor::zeros(&[4]);
        let b = a.clone();
        a.set(&[0], 7.0);
        assert_eq!(a.at(&[0]), 7.0);
        assert_eq!(b.at(&[0]), 0.0, "clone must not observe mutation");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshaped(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic]
    fn bad_reshape_panics() {
        let _ = Tensor::arange(6).reshaped(&[4, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }
}
