//! Layout-changing operations: permute, pad, narrow, concat, roll.
//!
//! All of these materialize a new contiguous buffer (tensors in this crate
//! are always contiguous), so each op is its own gather/scatter kernel.

use rayon::prelude::*;

use super::{par_threshold, Tensor};
use crate::shape::{numel, strides_for, unravel};

impl Tensor {
    /// Permute axes: `out[i0,…] = self[i_axes[0],…]`. `axes` must be a
    /// permutation of `0..ndim`.
    pub fn permute(&self, axes: &[usize]) -> Tensor {
        let nd = self.ndim();
        assert_eq!(axes.len(), nd, "permute axes length mismatch");
        let mut seen = vec![false; nd];
        for &a in axes {
            assert!(a < nd && !seen[a], "invalid permutation {axes:?}");
            seen[a] = true;
        }
        let in_strides = strides_for(self.shape());
        let out_shape: Vec<usize> = axes.iter().map(|&a| self.shape()[a]).collect();
        // Stride in the *input* for each output axis.
        let gather_strides: Vec<usize> = axes.iter().map(|&a| in_strides[a]).collect();
        let n = self.numel();
        let data = self.as_slice();
        let nd_out = out_shape.len();
        let fill = |start: usize, chunk: &mut [f32]| {
            let mut idx = vec![0usize; nd_out];
            unravel(start, &out_shape, &mut idx);
            let mut src: usize = idx.iter().zip(&gather_strides).map(|(&i, &s)| i * s).sum();
            for o in chunk.iter_mut() {
                *o = data[src];
                for d in (0..nd_out).rev() {
                    idx[d] += 1;
                    src += gather_strides[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    src -= gather_strides[d] * out_shape[d];
                    idx[d] = 0;
                }
            }
        };
        let mut out = vec![0.0f32; n];
        if n >= par_threshold() {
            let chunk = n
                .div_ceil(rayon::current_num_threads().max(1) * 4)
                .max(1024);
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, c)| fill(ci * chunk, c));
        } else {
            fill(0, &mut out);
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Swap the last two axes (matrix transpose over batched dims).
    pub fn transpose_last(&self) -> Tensor {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last needs ndim >= 2");
        let mut axes: Vec<usize> = (0..nd).collect();
        axes.swap(nd - 1, nd - 2);
        self.permute(&axes)
    }

    /// Zero-pad: `pads[d] = (before, after)` per dimension.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Tensor {
        assert_eq!(pads.len(), self.ndim(), "pad spec length mismatch");
        if pads.iter().all(|&(b, a)| b == 0 && a == 0) {
            return self.clone();
        }
        let out_shape: Vec<usize> = self
            .shape()
            .iter()
            .zip(pads)
            .map(|(&d, &(b, a))| d + b + a)
            .collect();
        let mut out = vec![0.0f32; numel(&out_shape)];
        let out_strides = strides_for(&out_shape);
        let in_shape = self.shape();
        let nd = in_shape.len();
        let data = self.as_slice();
        // Walk the input; scatter into the padded output.
        let mut idx = vec![0usize; nd];
        let base: usize = pads
            .iter()
            .zip(&out_strides)
            .map(|(&(b, _), &s)| b * s)
            .sum();
        let mut dst = base;
        for &v in data {
            out[dst] = v;
            for d in (0..nd).rev() {
                idx[d] += 1;
                dst += out_strides[d];
                if idx[d] < in_shape[d] {
                    break;
                }
                dst -= out_strides[d] * in_shape[d];
                idx[d] = 0;
            }
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Slice out `[start, start+len)` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.ndim(), "narrow axis out of range");
        assert!(
            start + len <= self.shape()[axis],
            "narrow [{start}, {}) exceeds dim {} of {:?}",
            start + len,
            axis,
            self.shape()
        );
        let in_shape = self.shape();
        let mut out_shape = in_shape.to_vec();
        out_shape[axis] = len;
        // View the tensor as (outer, dim, inner); copy contiguous inner runs.
        let outer: usize = in_shape[..axis].iter().product();
        let inner: usize = in_shape[axis + 1..].iter().product();
        let dim = in_shape[axis];
        let data = self.as_slice();
        let mut out = vec![0.0f32; outer * len * inner];
        let run = len * inner;
        for o in 0..outer {
            let src = (o * dim + start) * inner;
            out[o * run..(o + 1) * run].copy_from_slice(&data[src..src + run]);
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Concatenate tensors along `axis`. All other dims must agree.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let nd = parts[0].ndim();
        assert!(axis < nd);
        for p in parts {
            assert_eq!(p.ndim(), nd, "concat rank mismatch");
            for d in 0..nd {
                if d != axis {
                    assert_eq!(p.shape()[d], parts[0].shape()[d], "concat dim {d} mismatch");
                }
            }
        }
        let total: usize = parts.iter().map(|p| p.shape()[axis]).sum();
        let mut out_shape = parts[0].shape().to_vec();
        out_shape[axis] = total;
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut out = vec![0.0f32; numel(&out_shape)];
        let out_run = total * inner;
        let mut off_in_axis = 0usize;
        for p in parts {
            let plen = p.shape()[axis];
            let prun = plen * inner;
            let pdata = p.as_slice();
            for o in 0..outer {
                let dst = o * out_run + off_in_axis * inner;
                out[dst..dst + prun].copy_from_slice(&pdata[o * prun..(o + 1) * prun]);
            }
            off_in_axis += plen;
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Cyclic shift along each axis: element at index `i` moves to
    /// `(i + shift) mod dim` (positive shifts move content "right/down",
    /// matching `torch.roll`). Shifts may be negative.
    pub fn roll(&self, shifts: &[isize]) -> Tensor {
        assert_eq!(shifts.len(), self.ndim(), "roll shift length mismatch");
        if shifts.iter().all(|&s| s == 0) {
            return self.clone();
        }
        let shape = self.shape().to_vec();
        let nd = shape.len();
        // Normalized non-negative shifts.
        let norm: Vec<usize> = shifts
            .iter()
            .zip(&shape)
            .map(|(&s, &d)| {
                let d = d as isize;
                (((s % d) + d) % d) as usize
            })
            .collect();
        let strides = strides_for(&shape);
        let data = self.as_slice();
        let n = self.numel();
        let mut out = vec![0.0f32; n];
        // For each output position, the source index is (i - shift) mod dim.
        let fill = |start: usize, chunk: &mut [f32]| {
            let mut idx = vec![0usize; nd];
            unravel(start, &shape, &mut idx);
            for (k, o) in chunk.iter_mut().enumerate() {
                let _ = k;
                let mut src = 0usize;
                for d in 0..nd {
                    let s = (idx[d] + shape[d] - norm[d]) % shape[d];
                    src += s * strides[d];
                }
                *o = data[src];
                for d in (0..nd).rev() {
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        };
        if n >= par_threshold() {
            let chunk = n
                .div_ceil(rayon::current_num_threads().max(1) * 4)
                .max(1024);
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, c)| fill(ci * chunk, c));
        } else {
            fill(0, &mut out);
        }
        Tensor::from_vec(out, &shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_matrix_transpose() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let t = a.permute(&[1, 0]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice(), &[0., 3., 1., 4., 2., 5.]);
    }

    #[test]
    fn permute_3d_roundtrip() {
        let a = Tensor::arange(24).reshaped(&[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        // inverse permutation of [2,0,1] is [1,2,0]
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn pad_then_narrow_roundtrip() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let p = a.pad(&[(1, 1), (0, 2)]);
        assert_eq!(p.shape(), &[4, 5]);
        assert_eq!(p.at(&[0, 0]), 0.0); // padded row
        assert_eq!(p.at(&[1, 0]), 0.0); // a[0,0]
        assert_eq!(p.at(&[1, 1]), 1.0); // a[0,1]; columns only padded on the right
        assert_eq!(p.at(&[1, 4]), 0.0); // padded col
        let back = p.narrow(0, 1, 2).narrow(1, 0, 3);
        assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn narrow_middle_axis() {
        let a = Tensor::arange(24).reshaped(&[2, 3, 4]);
        let n = a.narrow(1, 1, 2);
        assert_eq!(n.shape(), &[2, 2, 4]);
        assert_eq!(n.at(&[0, 0, 0]), a.at(&[0, 1, 0]));
        assert_eq!(n.at(&[1, 1, 3]), a.at(&[1, 2, 3]));
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::arange(4).reshaped(&[2, 2]);
        let b = Tensor::full(&[2, 1], 9.0);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[0., 1., 9., 2., 3., 9.]);
    }

    #[test]
    fn concat_then_narrow_recovers_parts() {
        let a = Tensor::arange(6).reshaped(&[2, 3]);
        let b = Tensor::arange(4).reshaped(&[2, 2]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.narrow(1, 0, 3).as_slice(), a.as_slice());
        assert_eq!(c.narrow(1, 3, 2).as_slice(), b.as_slice());
    }

    #[test]
    fn roll_matches_torch_semantics() {
        let a = Tensor::arange(4); // [0,1,2,3]
        let r = a.roll(&[1]);
        assert_eq!(r.as_slice(), &[3., 0., 1., 2.]);
        let r2 = a.roll(&[-1]);
        assert_eq!(r2.as_slice(), &[1., 2., 3., 0.]);
    }

    #[test]
    fn roll_inverse_is_negative_shift() {
        let a = Tensor::arange(24).reshaped(&[2, 3, 4]);
        let r = a.roll(&[1, -2, 3]).roll(&[-1, 2, -3]);
        assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn transpose_last_batched() {
        let a = Tensor::arange(12).reshaped(&[2, 2, 3]);
        let t = a.transpose_last();
        assert_eq!(t.shape(), &[2, 3, 2]);
        assert_eq!(t.at(&[1, 2, 0]), a.at(&[1, 0, 2]));
    }
}
