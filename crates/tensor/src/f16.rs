//! Software IEEE 754 binary16 ("half") type.
//!
//! The paper stores its 2.6 TB training archive in FP16 (ROMS itself runs in
//! FP64); this module supplies the same compression step for our snapshot
//! store. Conversion uses round-to-nearest-even, matching hardware
//! `f32 -> f16` casts. Arithmetic is not implemented — values are widened to
//! `f32` for compute, exactly as mixed-precision training does.

/// IEEE 754 binary16 value stored as its bit pattern.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct F16(pub u16);

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3C00);
    pub const INFINITY: F16 = F16(0x7C00);
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite f16 (65504.0).
    pub const MAX: F16 = F16(0x7BFF);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value.to_bits()))
    }

    /// Widen to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits(f16_bits_to_f32(self.0))
    }

    /// True for either signed infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True for NaN payloads.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

/// Bit-level f32 -> f16 conversion with round-to-nearest-even.
fn f32_to_f16_bits(x: u32) -> u16 {
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xFF) as i32;
    let frac = x & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN. Preserve NaN-ness with a quiet bit.
        return if frac == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow -> infinity.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal range. 10-bit mantissa; round-to-nearest-even on bit 13.
        let mant = frac >> 13;
        let round_bit = (frac >> 12) & 1;
        let sticky = frac & 0x0FFF;
        let mut h = sign as u32 | (((e + 15) as u32) << 10) | mant;
        if round_bit == 1 && (sticky != 0 || (mant & 1) == 1) {
            h += 1; // may carry into exponent — that is correct rounding
        }
        return h as u16;
    }
    if e >= -24 {
        // Subnormal f16.
        let shift = (-14 - e) as u32; // 0..=10
        let full = frac | 0x0080_0000; // implicit leading 1
        let total_shift = 13 + shift;
        let mant = full >> total_shift;
        let round_bit = (full >> (total_shift - 1)) & 1;
        let sticky = full & ((1 << (total_shift - 1)) - 1);
        let mut h = sign as u32 | mant;
        if round_bit == 1 && (sticky != 0 || (mant & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Bit-level f16 -> f32 conversion (exact).
fn f16_bits_to_f32(h: u16) -> u32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x03FF) as u32;
    if exp == 0 {
        if frac == 0 {
            return sign; // signed zero
        }
        // Subnormal: value = (frac / 1024) * 2^-14. Normalize by shifting
        // until bit 10 is set; each shift halves the exponent.
        let mut k = 0u32;
        let mut f = frac;
        while f & 0x0400 == 0 {
            f <<= 1;
            k += 1;
        }
        let mantissa = (f & 0x03FF) << 13;
        let exp_biased = 127 - 14 - k;
        return sign | (exp_biased << 23) | mantissa;
    }
    if exp == 0x1F {
        return sign | 0x7F80_0000 | (frac << 13); // inf / nan
    }
    sign | ((exp + 127 - 15) << 23) | (frac << 13)
}

/// Compress a slice of f32 to f16 bit patterns.
pub fn compress(values: &[f32]) -> Vec<F16> {
    values.iter().map(|&v| F16::from_f32(v)).collect()
}

/// Widen a slice of f16 back to f32.
pub fn decompress(values: &[F16]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -2.5, 1024.0, 0.25] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "{v} should be exact in f16");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert_eq!(F16::from_f32(65504.0).to_f32(), 65504.0);
        // Just above MAX rounds to infinity (midpoint rule: 65520 -> inf).
        assert!(F16::from_f32(65520.0).is_infinite());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        // Half of it rounds to zero (ties to even).
        assert_eq!(F16::from_f32(tiny / 2.0).to_f32(), 0.0);
        // Smallest normal.
        let normal = 2.0f32.powi(-14);
        assert_eq!(F16::from_f32(normal).to_f32(), normal);
    }

    #[test]
    fn nan_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn rounding_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next f16 (1 + 2^-10);
        // ties-to-even picks 1.0.
        let mid = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(mid).to_f32(), 1.0);
        // Slightly above the midpoint rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_bound_normal_range() {
        // f16 has 11 significand bits: relative error <= 2^-11 in the
        // normal range (which starts at 2^-14 ≈ 6.1035e-5).
        let mut v = 7.0e-5f32;
        while v < 6.0e4 {
            let r = F16::from_f32(v).to_f32();
            let rel = ((r - v) / v).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "v={v}, r={r}, rel={rel}");
            v *= 1.3;
        }
    }

    #[test]
    fn compress_roundtrip_slice() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.37).collect();
        let back = decompress(&compress(&xs));
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-4);
        }
    }
}
