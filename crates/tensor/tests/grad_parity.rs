//! Gradient-parity harness: the tape's backward kernels against central
//! finite differences and against the scalar reference backend.
//!
//! Three layers of checks, mirroring `kernel_parity.rs` on the forward side:
//!
//! 1. **Finite-difference parity** — for every op with a hand-written
//!    backward kernel (matmul, linear+bias, gelu/relu/tanh, softmax rows,
//!    layer norm, fused attention), the tape gradient of a scalar loss is
//!    compared against central differences over hostile shapes: odd,
//!    non-lane-multiple dimensions that exercise packing tails and the
//!    ragged ends of the parallel splits.
//! 2. **Backend gradient parity** — the same backward pass run once under
//!    `Blocked` (wide SIMD, `par_threshold = 1` so every rayon path is
//!    active) and once under `ScalarRef`; gradients must agree within
//!    FMA-reassociation tolerance.
//! 3. **Thread invariance** — accumulated gradients of a composite loss
//!    (with a leaf shared by two consumers, so `GradBuf` accumulation runs)
//!    are bitwise identical at 1/2/4/8 worker threads.

use std::sync::Arc;

use ctensor::autograd::{Graph, Var};
use ctensor::backend::{self, Backend, Blocked, ScalarRef};
use ctensor::simd;
use ctensor::tensor::Tensor;
use proptest::prelude::*;

// ------------------------------------------------------------ generators

/// splitmix64 step (same stream family as `kernel_parity.rs`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Well-scaled deterministic values in roughly [-2, 2] — finite differences
/// in f32 need moderate magnitudes to resolve the slope at `h = 1e-2`.
fn values(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = mix(seed ^ mix(i as u64 ^ 0x6A09_E667));
            let unit = ((h >> 16) & 0xFFFF) as f32 / 65536.0;
            (unit * 4.0 - 2.0) * 0.9
        })
        .collect()
}

/// Values bounded away from zero (for the relu kink — FD is meaningless
/// when a perturbation crosses it).
fn values_off_kink(seed: u64, len: usize) -> Vec<f32> {
    values(seed, len)
        .into_iter()
        .map(|v| if v.abs() < 0.05 { 0.1 + v } else { v })
        .collect()
}

fn blocked_wide() -> Arc<dyn Backend> {
    Arc::new(Blocked::with_simd(1, simd::level()))
}

// ------------------------------------------------- finite-difference parity

/// Compare the tape gradient of the scalar-valued composite `build` against
/// central finite differences, elementwise:
/// `|analytic - fd| <= tol * (1 + |fd|)`.
fn check_grad_fd(build: &dyn Fn(&mut Graph, Var) -> Var, x0: &Tensor, tol: f32) {
    let mut g = Graph::new();
    let x = g.leaf(x0.clone());
    let out = build(&mut g, x);
    assert_eq!(g.value(out).numel(), 1, "check_grad_fd needs a scalar loss");
    let grads = g.backward(out);
    let analytic = grads.get(x).expect("no gradient reached the leaf").clone();

    let h = 1e-2f32;
    let eval = |xt: Tensor| {
        let mut g = Graph::inference();
        let x = g.leaf(xt);
        let o = build(&mut g, x);
        g.value(o).item()
    };
    for i in 0..x0.numel() {
        let mut xp = x0.clone();
        xp.as_mut_slice()[i] += h;
        let mut xm = x0.clone();
        xm.as_mut_slice()[i] -= h;
        let fd = (eval(xp) - eval(xm)) / (2.0 * h);
        let a = analytic.as_slice()[i];
        assert!(
            (a - fd).abs() <= tol * (1.0 + fd.abs()),
            "grad[{i}]: analytic {a} vs fd {fd} (tol {tol})"
        );
    }
}

proptest! {

    /// Matmul adjoints (dA = g·Bᵀ through the strided-GEBP path, dB = Aᵀ·g)
    /// against finite differences, for both operands, over odd shapes.
    #[test]
    fn fd_matmul_grads(m in 1usize..7, k in 1usize..9, n in 1usize..8, seed in 0u64..1_000_000) {
        let _be = backend::scoped(blocked_wide());
        let a0 = Tensor::from_vec(values(seed, m * k), &[m, k]);
        let b0 = Tensor::from_vec(values(seed ^ 0xB, k * n), &[k, n]);
        let bc = b0.clone();
        check_grad_fd(&move |g, x| {
            let w = g.constant(bc.clone());
            let y = g.matmul(x, w);
            g.sum_all(y)
        }, &a0, 2e-2);
        let ac = a0.clone();
        check_grad_fd(&move |g, x| {
            let a = g.constant(ac.clone());
            let y = g.matmul(a, x);
            g.sum_all(y)
        }, &b0, 2e-2);
    }

    /// Linear-layer bias gradient (the `col_sums` column-reduction kernel)
    /// against finite differences.
    #[test]
    fn fd_linear_bias_grad(rows in 1usize..9, k in 1usize..7, n in 1usize..9, seed in 0u64..1_000_000) {
        let _be = backend::scoped(blocked_wide());
        let x0 = Tensor::from_vec(values(seed, rows * k), &[rows, k]);
        let w0 = Tensor::from_vec(values(seed ^ 0x17, k * n), &[k, n]);
        let b0 = Tensor::from_vec(values(seed ^ 0x2F, n), &[n]);
        check_grad_fd(&move |g, bias| {
            let x = g.constant(x0.clone());
            let w = g.constant(w0.clone());
            let y = g.linear(x, w, Some(bias));
            // Square so the bias gradient depends on the output, not just
            // the (constant) row count.
            let y2 = g.square(y);
            g.sum_all(y2)
        }, &b0, 2e-2);
    }

    /// Elementwise backward kernels (GeluGrad / ReluGrad / TanhGrad routed
    /// through `UnaryOp`) against finite differences.
    #[test]
    fn fd_activation_grads(len in 1usize..40, seed in 0u64..1_000_000) {
        let _be = backend::scoped(blocked_wide());
        let x0 = Tensor::from_vec(values_off_kink(seed, len), &[len]);
        check_grad_fd(&|g, x| { let y = g.gelu(x); g.sum_all(y) }, &x0, 2e-2);
        check_grad_fd(&|g, x| { let y = g.relu(x); g.sum_all(y) }, &x0, 2e-2);
        check_grad_fd(&|g, x| { let y = g.tanh(x); let y2 = g.square(y); g.sum_all(y2) }, &x0, 2e-2);
    }

    /// Fused softmax and layer-norm row gradients against finite
    /// differences (weighted loss so every row position gets a distinct
    /// adjoint).
    #[test]
    fn fd_softmax_and_layernorm_grads(rows in 1usize..5, n in 2usize..11, seed in 0u64..1_000_000) {
        let _be = backend::scoped(blocked_wide());
        let x0 = Tensor::from_vec(values(seed, rows * n), &[rows, n]);
        let w = Tensor::from_vec(values(seed ^ 0x55AA, rows * n), &[rows, n]);
        let wc = w.clone();
        check_grad_fd(&move |g, x| {
            let y = g.softmax_last(x);
            let w = g.constant(wc.clone());
            let yw = g.mul(y, w);
            g.sum_all(yw)
        }, &x0, 3e-2);
        let wc = w.clone();
        check_grad_fd(&move |g, x| {
            let y = g.layer_norm(x, 1e-5);
            let w = g.constant(wc.clone());
            let yw = g.mul(y, w);
            g.sum_all(yw)
        }, &x0, 3e-2);
    }

    /// Fused attention backward (probability replay + three strided-GEBP
    /// adjoints) against finite differences for q, k and v, with and
    /// without an additive window mask.
    #[test]
    fn fd_attention_grads(
        b in 1usize..3,
        n in 2usize..7,
        d in 1usize..5,
        masked in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let _be = backend::scoped(blocked_wide());
        let h = 2usize;
        let shape = [b, h, n, d];
        let sz = b * h * n * d;
        let q0 = Tensor::from_vec(values(seed, sz), &shape);
        let k0 = Tensor::from_vec(values(seed ^ 0x1111, sz), &shape);
        let v0 = Tensor::from_vec(values(seed ^ 0x2222, sz), &shape);
        let mask = (masked == 1).then(|| {
            Tensor::from_vec(
                (0..n * n).map(|i| if i % 5 == 3 { -1.0e9 } else { 0.0 }).collect(),
                &[1, n, n],
            )
        });
        let scale = 1.0 / (d as f32).sqrt();
        let w = Tensor::from_vec(values(seed ^ 0x7777, sz), &shape);

        // Differentiate w.r.t. each operand in turn, holding the others.
        for leaf_idx in 0..3 {
            let (q0, k0, v0) = (q0.clone(), k0.clone(), v0.clone());
            let (mask, w) = (mask.clone(), w.clone());
            let x0 = [&q0, &k0, &v0][leaf_idx].clone();
            check_grad_fd(&move |g, x| {
                let ops: [Var; 3] = match leaf_idx {
                    0 => [x, g.constant(k0.clone()), g.constant(v0.clone())],
                    1 => [g.constant(q0.clone()), x, g.constant(v0.clone())],
                    _ => [g.constant(q0.clone()), g.constant(k0.clone()), x],
                };
                let y = g.attention(ops[0], ops[1], ops[2], mask.as_ref(), scale);
                let w = g.constant(w.clone());
                let yw = g.mul(y, w);
                g.sum_all(yw)
            }, &x0, 3e-2);
        }
    }
}

// ------------------------------------------------- backend gradient parity

/// Forward + backward of a composite touching every backward kernel; the
/// shared leaf `x` feeds two consumers so gradient accumulation runs too.
/// Returns every leaf gradient concatenated.
fn composite_grads(be: Arc<dyn Backend>, rows: usize, k: usize, n: usize) -> Vec<f32> {
    let _be = backend::scoped(be);
    let x0 = Tensor::from_vec(values(0xF00D, rows * k), &[rows, k]);
    let w0 = Tensor::from_vec(values(0xBEEF, k * n), &[k, n]);
    let b0 = Tensor::from_vec(values(0xCAFE, n), &[n]);

    let mut g = Graph::new();
    let x = g.leaf(x0);
    let w = g.leaf(w0);
    let b = g.leaf(b0);
    let lin = g.linear(x, w, Some(b));
    let act = g.gelu(lin);
    let norm = g.layer_norm(act, 1e-5);
    let probs = g.softmax_last(norm);
    // Second consumer of x: tanh branch merged in (exercises accumulation).
    let t = g.tanh(x);
    let tw = g.matmul(t, w);
    let merged = g.add(probs, tw);
    let loss = g.sum_all(merged);
    let grads = g.backward(loss);

    let mut out = Vec::new();
    for leaf in [x, w, b] {
        out.extend_from_slice(grads.get(leaf).expect("missing leaf grad").as_slice());
    }
    out
}

/// Attention gradients for fixed inputs under a given backend.
fn attention_grads(be: Arc<dyn Backend>, b: usize, n: usize, d: usize) -> Vec<f32> {
    let _be = backend::scoped(be);
    let h = 2usize;
    let sz = b * h * n * d;
    let shape = [b, h, n, d];
    let mk = |seed: u64| Tensor::from_vec(values(seed, sz), &shape);
    let mask = Tensor::from_vec(
        (0..n * n)
            .map(|i| if i % 7 == 2 { -1.0e9 } else { 0.0 })
            .collect(),
        &[1, n, n],
    );
    let mut g = Graph::new();
    let (q, k, v) = (g.leaf(mk(1)), g.leaf(mk(2)), g.leaf(mk(3)));
    let y = g.attention(q, k, v, Some(&mask), 1.0 / (d as f32).sqrt());
    let w = g.constant(mk(4));
    let yw = g.mul(y, w);
    let loss = g.sum_all(yw);
    let grads = g.backward(loss);
    let mut out = Vec::new();
    for leaf in [q, k, v] {
        out.extend_from_slice(grads.get(leaf).expect("missing grad").as_slice());
    }
    out
}

proptest! {

    /// The full backward pass under `Blocked` (SIMD kernels, every rayon
    /// path active) matches `ScalarRef` within reassociation tolerance.
    #[test]
    fn backward_matches_scalar_backend(rows in 1usize..24, k in 1usize..20, n in 1usize..24) {
        let fast = composite_grads(blocked_wide(), rows, k, n);
        let oracle = composite_grads(Arc::new(ScalarRef), rows, k, n);
        prop_assert_eq!(fast.len(), oracle.len());
        for (i, (f, o)) in fast.iter().zip(&oracle).enumerate() {
            let tol = 1e-4 + 2e-4 * o.abs();
            prop_assert!((f - o).abs() <= tol, "grad[{}]: blocked {} vs scalar {}", i, f, o);
        }
    }

    /// Attention backward under `Blocked` matches `ScalarRef`.
    #[test]
    fn attention_backward_matches_scalar_backend(b in 1usize..4, n in 2usize..16, d in 1usize..10) {
        let fast = attention_grads(blocked_wide(), b, n, d);
        let oracle = attention_grads(Arc::new(ScalarRef), b, n, d);
        prop_assert_eq!(fast.len(), oracle.len());
        for (i, (f, o)) in fast.iter().zip(&oracle).enumerate() {
            let tol = 1e-4 + 2e-4 * o.abs();
            prop_assert!((f - o).abs() <= tol, "attn grad[{}]: blocked {} vs scalar {}", i, f, o);
        }
    }
}

// ------------------------------------------------------ thread invariance

/// Accumulated gradients must be bitwise identical at 1/2/4/8 worker
/// threads — the tape's determinism guarantee: every backward kernel
/// splits work positionally and reduces in a fixed order.
#[test]
fn backward_is_thread_count_invariant() {
    let be = blocked_wide();
    // Shapes straddle the MR-aligned row split and the per-batch split.
    let grads_at = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool override");
        let mut bits: Vec<u32> = composite_grads(be.clone(), 73, 33, 65)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        bits.extend(
            attention_grads(be.clone(), 4, 18, 8)
                .iter()
                .map(|v| v.to_bits()),
        );
        bits
    };
    let reference = grads_at(1);
    for &threads in &[2usize, 4, 8] {
        let got = grads_at(threads);
        assert_eq!(got.len(), reference.len());
        for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g, w,
                "gradient bits diverged at word {i}: {threads} threads vs 1 thread"
            );
        }
    }
    rayon::ThreadPoolBuilder::new()
        .build_global()
        .expect("restore thread pool default");
}
