//! Kernel-parity harness: every SIMD kernel against the scalar oracle.
//!
//! Two layers of checks:
//!
//! 1. **Raw kernel parity** — the public `simd::*` dispatch functions run
//!    once at the detected wide level and once pinned to
//!    `SimdLevel::Scalar`, over hostile inputs: odd lengths, non-lane-
//!    multiple tails, subnormals, extreme magnitudes, signed zeros,
//!    infinities and NaNs. Agreement is bitwise-or-tolerance: a pair
//!    passes if the bit patterns match, both are NaN, or the difference
//!    is within the per-kernel bound (transcendentals are polynomial
//!    approximations, so exact equality is not the contract there).
//! 2. **Backend parity + thread invariance** — `Blocked` with
//!    `par_threshold = 1` (forcing every rayon path) against `ScalarRef`
//!    through the `Backend` trait, and a bitwise thread-invariance sweep
//!    at 1/2/4/8 worker threads: identical output bits regardless of
//!    thread count, which is the determinism guarantee Blocked v2 makes.
//!
//! On a host without the wide instruction set (or with
//! `COASTAL_SIMD=scalar`), the raw-parity properties compare scalar to
//! scalar — vacuous but harmless; the thread-invariance sweep still
//! exercises the parallel partitioning logic.

use std::sync::Arc;

use ctensor::backend::{self, AttentionSpec, Backend, Blocked, MatmulSpec, ScalarRef, UnaryOp};
use ctensor::simd::{self, SimdLevel};
use ctensor::tensor::Tensor;
use proptest::prelude::*;

// ------------------------------------------------------------ generators

/// splitmix64 step, used to derive per-element value classes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic hostile value stream: mostly moderate magnitudes, salted
/// with subnormals, huge values, signed zeros, and (optionally)
/// infinities and NaNs.
fn hostile_values(seed: u64, len: usize, nonfinite: bool) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = mix(seed ^ mix(i as u64 ^ 0x51DE_AD00));
            let sign = if h & 1 == 0 { 1.0f32 } else { -1.0 };
            let unit = ((h >> 16) & 0xFFFF) as f32 / 65536.0; // [0, 1)
            match (h >> 8) % 16 {
                0..=9 => sign * (unit * 12.0 - 6.0).abs() * sign, // [-6, 6]
                10 => sign * unit * 1.0e4,                        // extreme magnitude
                11 => sign * f32::from_bits(((h >> 24) as u32 & 0x007F_FFFF).max(1)), // subnormal
                12 => sign * 1.0e30,
                13 => sign * 0.0, // signed zero
                14 if nonfinite => sign * f32::INFINITY,
                15 if nonfinite => f32::NAN,
                _ => sign * unit * 4.0,
            }
        })
        .collect()
}

/// Well-scaled values (for reduction-heavy kernels where NaN/inf would
/// swallow the whole output and hide real divergence).
fn moderate_values(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = mix(seed ^ mix(i as u64));
            let unit = ((h >> 16) & 0xFFFF) as f32 / 65536.0;
            (unit * 8.0 - 4.0) * if h & 1 == 0 { 1.0 } else { -1.0 }
        })
        .collect()
}

// ------------------------------------------------------------ comparison

/// Bitwise-or-tolerance agreement: identical bits, both-NaN, or
/// `|fast - oracle| <= abs + rel * max(|fast|, |oracle|)`. Mismatched
/// infinities fail (difference is inf/NaN, never within tolerance).
fn assert_parity(tag: &str, fast: &[f32], oracle: &[f32], rel: f32, abs: f32) {
    assert_eq!(fast.len(), oracle.len(), "{tag}: length mismatch");
    for (i, (&f, &o)) in fast.iter().zip(oracle).enumerate() {
        if f.to_bits() == o.to_bits() || (f.is_nan() && o.is_nan()) {
            continue;
        }
        let tol = abs + rel * f.abs().max(o.abs());
        assert!(
            (f - o).abs() <= tol,
            "{tag}[{i}]: simd {f:e} vs scalar {o:e} (tol {tol:e})"
        );
    }
}

fn assert_bitwise(tag: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{tag}[{i}]: {g:e} vs {w:e} (bitwise)"
        );
    }
}

// ----------------------------------------------------- raw kernel parity

type MapFn = fn(SimdLevel, &[f32], &mut [f32]);
type MapInplaceFn = fn(SimdLevel, &mut [f32]);

/// Every elementwise kernel pair with its tolerance and whether its
/// non-finite behavior is part of the parity contract.
const ELEMENTWISE: &[(&str, MapFn, MapInplaceFn, f32, f32, bool)] = &[
    (
        "exp",
        simd::exp_slice,
        simd::exp_slice_inplace,
        2e-6,
        1e-37,
        true,
    ),
    (
        "tanh",
        simd::tanh_slice,
        simd::tanh_slice_inplace,
        2e-6,
        1e-6,
        true,
    ),
    (
        "gelu",
        simd::gelu_slice,
        simd::gelu_slice_inplace,
        1e-5,
        1e-6,
        true,
    ),
    (
        "gelu_grad",
        simd::gelu_grad_slice,
        simd::gelu_grad_slice_inplace,
        1e-5,
        1e-6,
        true,
    ),
];

proptest! {
    /// Elementwise SIMD kernels match the scalar oracle over hostile
    /// inputs (ragged tails, subnormals, extremes, NaN/inf), and the
    /// in-place variants are bitwise identical to the out-of-place ones.
    #[test]
    fn elementwise_kernels_match_scalar_oracle(len in 0usize..200, seed in 0u64..1_000_000_000) {
        let wide = simd::level();
        for &(name, map, map_inplace, rel, abs, nonfinite) in ELEMENTWISE {
            let x = hostile_values(seed, len, nonfinite);
            let mut fast = vec![0.0f32; len];
            let mut oracle = vec![0.0f32; len];
            map(wide, &x, &mut fast);
            map(SimdLevel::Scalar, &x, &mut oracle);
            assert_parity(name, &fast, &oracle, rel, abs);
            // In-place runs the same lane code over the same split.
            let mut inplace = x.clone();
            map_inplace(wide, &mut inplace);
            assert_bitwise(&format!("{name}_inplace"), &inplace, &fast);
        }
    }

    /// SIMD softmax (lane-wise max reduction) matches the scalar row
    /// kernel, stays normalized for finite rows, and survives logits
    /// spanning ±1e4.
    #[test]
    fn softmax_row_matches_scalar_oracle(
        n in 1usize..96,
        seed in 0u64..1_000_000_000,
        magnitude in 0usize..3,
    ) {
        let wide = simd::level();
        let scale = [1.0f32, 1.0e4, 1.0e4][magnitude];
        let mut x = moderate_values(seed, n);
        if magnitude > 0 {
            for v in &mut x {
                *v *= scale / 4.0; // logits spanning roughly ±1e4
            }
        }
        if magnitude == 2 && n > 1 {
            x[n / 2] = f32::NEG_INFINITY; // masked-out position
        }
        let mut fast = vec![0.0f32; n];
        let mut oracle = vec![0.0f32; n];
        simd::softmax_row(wide, &x, &mut fast);
        simd::softmax_row(SimdLevel::Scalar, &x, &mut oracle);
        assert_parity("softmax_row", &fast, &oracle, 1e-5, 1e-6);
        let sum: f32 = fast.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum} (n={n})");
        prop_assert!(fast.iter().all(|v| v.is_finite()), "non-finite prob");
    }

    /// dot / axpy / the 4x16 microkernel match naive reference loops.
    #[test]
    fn dot_axpy_microkernel_match_naive(k in 1usize..80, seed in 0u64..1_000_000_000) {
        let wide = simd::level();
        let a = moderate_values(seed, k);
        let b = moderate_values(seed ^ 0xABCD, k);
        let tol = 1e-6 * k as f32;

        let d = simd::dot(wide, &a, &b);
        let dref: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((d - dref).abs() <= tol + 1e-5 * dref.abs(), "dot {d} vs {dref}");

        let mut acc = moderate_values(seed ^ 0x5A5A, k);
        let accref: Vec<f32> = acc.iter().zip(&a).map(|(c, x)| c + 0.37 * x).collect();
        simd::axpy(wide, 0.37, &a, &mut acc);
        assert_parity("axpy", &acc, &accref, 1e-5, tol);

        // Microkernel: C[4x16] += A[k x 4] * B[k x 16] in packed layouts.
        let apack = moderate_values(seed ^ 0x77, k * 4);
        let bpack = moderate_values(seed ^ 0x99, k * 16);
        let mut acc = [[0.0f32; 16]; 4];
        simd::microkernel_4x16(wide, &apack, &bpack, k, &mut acc);
        for r in 0..4 {
            for c in 0..16 {
                let want: f32 = (0..k).map(|p| apack[p * 4 + r] * bpack[p * 16 + c]).sum();
                prop_assert!(
                    (acc[r][c] - want).abs() <= tol + 1e-5 * want.abs(),
                    "microkernel[{r}][{c}]: {} vs {want}",
                    acc[r][c]
                );
            }
        }
    }

    /// Fused attention block kernels (scores and P·V, including the d=8
    /// fast paths) match the scalar block kernels.
    #[test]
    fn attention_blocks_match_scalar_oracle(
        ib in 1usize..9,
        n in 1usize..40,
        d in 1usize..13,
        seed in 0u64..1_000_000_000,
    ) {
        let wide = simd::level();
        let q = moderate_values(seed, ib * d);
        let k = moderate_values(seed ^ 0x1111, n * d);
        let v = moderate_values(seed ^ 0x2222, n * d);
        let scale = 1.0 / (d as f32).sqrt();

        let mut fast = vec![f32::NAN; ib * n];
        let mut oracle = vec![f32::NAN; ib * n];
        simd::attn_scores_block(wide, &q, &k, &mut fast, ib, n, d, scale);
        simd::attn_scores_block(SimdLevel::Scalar, &q, &k, &mut oracle, ib, n, d, scale);
        assert_parity("attn_scores", &fast, &oracle, 1e-5, 1e-6 * d as f32);

        let probs = moderate_values(seed ^ 0x3333, ib * n);
        let mut fast = vec![f32::NAN; ib * d];
        let mut oracle = vec![f32::NAN; ib * d];
        simd::attn_pv_block(wide, &probs, &v, &mut fast, ib, n, d);
        simd::attn_pv_block(SimdLevel::Scalar, &probs, &v, &mut oracle, ib, n, d);
        assert_parity("attn_pv", &fast, &oracle, 1e-5, 1e-6 * n as f32);
    }
}

// --------------------------------------------------------- backend parity

fn blocked_wide() -> Arc<dyn Backend> {
    Arc::new(Blocked::with_simd(1, simd::level()))
}

proptest! {
    /// `Blocked` elementwise ops through the `Backend` trait (covering the
    /// fixed-chunk parallel split and its ragged tail) match `ScalarRef`.
    #[test]
    fn backend_unary_matches_scalar_ref(len in 0usize..9000, seed in 0u64..1_000_000_000) {
        let fast_be = blocked_wide();
        let x = hostile_values(seed, len, true);
        for (op, rel, abs) in [
            (UnaryOp::Exp, 2e-6f32, 1e-37f32),
            (UnaryOp::Tanh, 2e-6, 1e-6),
            (UnaryOp::Gelu, 1e-5, 1e-6),
            (UnaryOp::GeluGrad, 1e-5, 1e-6),
        ] {
            let mut fast = vec![0.0f32; len];
            let mut oracle = vec![0.0f32; len];
            fast_be.unary(op, &x, &mut fast);
            ScalarRef.unary(op, &x, &mut oracle);
            assert_parity(&format!("backend {op:?}"), &fast, &oracle, rel, abs);
            let mut inplace = x.clone();
            fast_be.unary_inplace(op, &mut inplace);
            assert_bitwise(&format!("backend {op:?} inplace"), &inplace, &fast);
        }
    }

    /// Batched matmul (+fused bias) under `Blocked` (GEBP microkernel,
    /// rayon row split) agrees with `ScalarRef` within FMA-reassociation
    /// tolerance.
    #[test]
    fn backend_matmul_matches_scalar_ref(
        m in 1usize..20,
        k in 1usize..48,
        n in 1usize..40,
        batch in 1usize..4,
        with_bias in 0usize..2,
        seed in 0u64..1_000_000_000,
    ) {
        let fast_be = blocked_wide();
        let a = moderate_values(seed, batch * m * k);
        let b = moderate_values(seed ^ 0xB00, batch * k * n);
        let bias = moderate_values(seed ^ 0xB1A5, n);
        let offsets: Vec<(usize, usize)> = (0..batch).map(|i| (i, i)).collect();
        let spec = MatmulSpec {
            m,
            k,
            n,
            batch_offsets: &offsets,
            bias: if with_bias == 1 { Some(&bias) } else { None },
        };
        // Per the trait contract `out` is pre-zeroed (gebp accumulates).
        let mut fast = vec![0.0f32; batch * m * n];
        let mut oracle = vec![0.0f32; batch * m * n];
        fast_be.matmul(&a, &b, &mut fast, &spec);
        ScalarRef.matmul(&a, &b, &mut oracle, &spec);
        assert_parity("backend matmul", &fast, &oracle, 1e-5, 1e-6 * k as f32);
    }

    /// Fused attention under `Blocked` (blocked scores + SIMD softmax +
    /// P·V, optional additive mask) agrees with `ScalarRef`.
    #[test]
    fn backend_attention_matches_scalar_ref(
        bh in 1usize..6,
        n in 1usize..24,
        d in 1usize..12,
        masked in 0usize..2,
        seed in 0u64..1_000_000_000,
    ) {
        let fast_be = blocked_wide();
        let q = moderate_values(seed, bh * n * d);
        let k = moderate_values(seed ^ 0x4444, bh * n * d);
        let v = moderate_values(seed ^ 0x5555, bh * n * d);
        // Additive mask with a few large-negative (masked-out) entries,
        // never a fully-masked row (row 0 stays open).
        let mask: Vec<f32> = (0..n * n)
            .map(|i| if masked == 1 && i % 7 == 3 && i >= n { -1.0e9 } else { 0.0 })
            .collect();
        let spec = AttentionSpec {
            batch: bh,
            heads: 1,
            n,
            d,
            scale: 1.0 / (d as f32).sqrt(),
            mask: if masked == 1 { Some(&mask) } else { None },
            mask_windows: 1,
        };
        let mut fast = vec![f32::NAN; bh * n * d];
        let mut oracle = vec![f32::NAN; bh * n * d];
        fast_be.attention(&q, &k, &v, &mut fast, &spec);
        ScalarRef.attention(&q, &k, &v, &mut oracle, &spec);
        assert_parity("backend attention", &fast, &oracle, 1e-5, 1e-5);
    }

    /// `sum` under `Blocked` (positional f64 partials) matches the serial
    /// `ScalarRef` accumulation to f64 round-off.
    #[test]
    fn backend_sum_matches_scalar_ref(len in 0usize..20_000, seed in 0u64..1_000_000_000) {
        let fast_be = blocked_wide();
        let x = moderate_values(seed, len);
        let fast = fast_be.sum(&x);
        let oracle = ScalarRef.sum(&x);
        prop_assert!(
            (fast - oracle).abs() <= 1e-9 + 1e-10 * oracle.abs(),
            "sum {fast} vs {oracle} (len {len})"
        );
    }
}

/// Softmax over rows with logits spanning ±1e4 at the tensor level: the
/// SIMD lane-wise max reduction must keep extreme rows normalized under
/// both backends (satellite: softmax numerical-stability under SIMD).
#[test]
fn softmax_extreme_logits_backend_parity() {
    let rows = 7usize;
    let n = 61usize;
    let mut data = moderate_values(0xEE, rows * n);
    for (i, v) in data.iter_mut().enumerate() {
        *v *= 2.5e3; // spread logits across roughly ±1e4
        if i % 13 == 5 {
            *v = -1.0e4;
        }
        if i % 17 == 2 {
            *v = 1.0e4;
        }
    }
    let t = Tensor::from_vec(data, &[rows, n]);
    let run = |be: Arc<dyn Backend>| {
        let _g = backend::scoped(be);
        t.softmax_last()
    };
    let fast = run(blocked_wide());
    let oracle = run(Arc::new(ScalarRef));
    assert_parity(
        "softmax_last ±1e4",
        fast.as_slice(),
        oracle.as_slice(),
        1e-5,
        1e-6,
    );
    for r in 0..rows {
        let s: f32 = fast.as_slice()[r * n..(r + 1) * n].iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "row {r} sum {s}");
        assert!(
            fast.as_slice()[r * n..(r + 1) * n]
                .iter()
                .all(|v| v.is_finite()),
            "row {r} has non-finite probabilities"
        );
    }
}

// ------------------------------------------------------ thread invariance

/// Bit patterns of every parallel-path workload under `Blocked` with
/// `par_threshold = 1` (all rayon paths active).
fn parallel_workload_bits(be: &dyn Backend) -> Vec<u64> {
    let mut bits: Vec<u64> = Vec::new();
    fn push(bits: &mut Vec<u64>, s: &[f32]) {
        bits.extend(s.iter().map(|v| u64::from(v.to_bits())));
    }

    // Elementwise: several fixed 4096-chunks plus a ragged tail, salted
    // with specials (NaN propagation must also be thread-invariant).
    let x = hostile_values(0xC0FFEE, 3 * 4096 + 123, true);
    let mut out = vec![0.0f32; x.len()];
    be.unary(UnaryOp::Gelu, &x, &mut out);
    push(&mut bits, &out);
    be.unary(UnaryOp::Exp, &x, &mut out);
    push(&mut bits, &out);

    // Reduction: positional partials must fold in a fixed order.
    let y = moderate_values(0xFACADE, 3 * 4096 + 777);
    bits.push(be.sum(&y).to_bits());

    // Row-split kernels on odd, non-lane-multiple shapes.
    let rows = 37usize;
    let cols = 61usize;
    let z = moderate_values(0x50F7, rows * cols);
    let mut out = vec![0.0f32; z.len()];
    be.softmax_rows(&z, &mut out, cols);
    push(&mut bits, &out);
    be.layernorm_rows(&z, &mut out, cols, 1e-5);
    push(&mut bits, &out);

    // Batched matmul across the row/batch split decision points.
    let (m, k, n, batch) = (13usize, 29usize, 31usize, 3usize);
    let a = moderate_values(0xA0, batch * m * k);
    let b = moderate_values(0xB0, batch * k * n);
    let bias = moderate_values(0xBB, n);
    let offsets: Vec<(usize, usize)> = (0..batch).map(|i| (i, i)).collect();
    let spec = MatmulSpec {
        m,
        k,
        n,
        batch_offsets: &offsets,
        bias: Some(&bias),
    };
    let mut out = vec![0.0f32; batch * m * n];
    be.matmul(&a, &b, &mut out, &spec);
    push(&mut bits, &out);

    // Fused attention (d=8 fast path) across the batch split.
    let (bh, an, ad) = (5usize, 33usize, 8usize);
    let q = moderate_values(0x01, bh * an * ad);
    let kk = moderate_values(0x02, bh * an * ad);
    let v = moderate_values(0x03, bh * an * ad);
    let spec = AttentionSpec {
        batch: bh,
        heads: 1,
        n: an,
        d: ad,
        scale: 1.0 / (ad as f32).sqrt(),
        mask: None,
        mask_windows: 1,
    };
    let mut out = vec![0.0f32; bh * an * ad];
    be.attention(&q, &kk, &v, &mut out, &spec);
    push(&mut bits, &out);

    bits
}

/// Blocked v2's determinism guarantee: identical output bits at 1, 2, 4
/// and 8 worker threads, for every parallel code path.
#[test]
fn parallel_paths_are_thread_count_invariant() {
    let be = blocked_wide();
    let mut reference: Option<(usize, Vec<u64>)> = None;
    for &threads in &[1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool override");
        let bits = parallel_workload_bits(be.as_ref());
        match &reference {
            None => reference = Some((threads, bits)),
            Some((t0, want)) => {
                assert_eq!(bits.len(), want.len());
                for (i, (g, w)) in bits.iter().zip(want).enumerate() {
                    assert_eq!(
                        g, w,
                        "output bit pattern diverged at word {i}: {threads} threads vs {t0} threads"
                    );
                }
            }
        }
    }
    // Restore the default pool size for the rest of the test binary.
    rayon::ThreadPoolBuilder::new()
        .build_global()
        .expect("restore thread pool default");
}
