//! Typed forecasting errors.
//!
//! A malformed request must never take down a long-lived serving worker,
//! so every validation that used to `assert!`/`unwrap()` in the forecast
//! paths surfaces here as a [`ForecastError`] instead.

use std::fmt;

/// Why a forecast request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForecastError {
    /// The episode window has the wrong length for the model horizon
    /// (needs the initial condition plus `t_out` boundary frames).
    WindowLength { needed: usize, got: usize },
    /// The reference trajectory is too short to supply boundary frames.
    ReferenceTooShort { needed: usize, got: usize },
    /// A snapshot's mesh does not match the model's configured mesh.
    MeshMismatch {
        expected: (usize, usize, usize),
        got: (usize, usize, usize),
    },
    /// A prediction or simulation produced no snapshots.
    EmptyEpisode,
    /// A batched call was handed zero episodes.
    EmptyBatch,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::WindowLength { needed, got } => {
                write!(f, "episode window needs {needed} snapshots, got {got}")
            }
            ForecastError::ReferenceTooShort { needed, got } => {
                write!(
                    f,
                    "reference trajectory needs {needed} snapshots, got {got}"
                )
            }
            ForecastError::MeshMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot mesh {got:?} does not match model mesh {expected:?} (nz, ny, nx)"
                )
            }
            ForecastError::EmptyEpisode => write!(f, "episode produced no snapshots"),
            ForecastError::EmptyBatch => write!(f, "batched forecast needs at least one episode"),
        }
    }
}

impl std::error::Error for ForecastError {}
