//! End-to-end convenience: simulate an archive, fit a surrogate, predict
//! episodes — the glue used by examples and the benchmark harness.

use cgrid::Grid;
use cocean::{OceanConfig, Roms, Snapshot, TidalForcing};
use cpipeline::{
    decode_prediction, decode_prediction_batch, encode_episode, stack_episodes, DataLoader,
    EncodeConfig, Episode, LoaderConfig, NormStats, SnapshotStore, TrainConfig, Trainer,
    WindowSpec,
};
use csurrogate::{SwinConfig, SwinSurrogate};
use ctensor::backend::BackendChoice;
use ctensor::prelude::*;
use std::sync::Arc;

use crate::error::ForecastError;

/// Scenario: the mesh, forcing, episode shape and training budget used by
/// an experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub grid_params: cgrid::GridParams,
    /// Snapshot interval (s) — the "half hour" of the paper, scaled.
    pub snapshot_interval: f64,
    /// Forecast steps per episode (paper: 24).
    pub t_out: usize,
    /// Snapshots in the training archive.
    pub train_snapshots: usize,
    /// Snapshots in the test archive (distinct forcing year).
    pub test_snapshots: usize,
    /// Spin-up seconds before recording.
    pub spinup: f64,
    pub swin: SwinConfig,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
    /// Boundary-forcing override. `None` derives the forcing from the
    /// simulation year ([`TidalForcing::for_year`]); `Some` pins an
    /// explicit parameterization — the hook ensemble perturbations use to
    /// run the same mesh/model under many forcing scenarios.
    pub forcing: Option<TidalForcing>,
}

impl Scenario {
    /// Pin every stage of this scenario (training, inference, hybrid
    /// forecasting) to one tensor compute backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.swin.backend = backend;
        self
    }

    /// Override the boundary forcing (see [`Scenario::forcing`]).
    pub fn with_forcing(mut self, forcing: TidalForcing) -> Self {
        self.forcing = Some(forcing);
        self
    }

    /// Small scenario that trains in seconds (tests/examples).
    pub fn small() -> Scenario {
        let grid_params = cgrid::GridParams {
            estuary: cgrid::EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 3,
            ..Default::default()
        };
        let swin = SwinConfig {
            ny: 24,
            nx: 20,
            nz: 3,
            t_out: 4,
            patch: [4, 4, 3],
            embed_dim: 12,
            num_heads: vec![2, 4],
            window_first: [2, 2, 2, 2],
            window_rest: [2, 2, 2, 2],
            mlp_ratio: 1.5,
            backend: BackendChoice::default(),
        };
        Scenario {
            grid_params,
            snapshot_interval: 1800.0,
            t_out: 4,
            train_snapshots: 140,
            test_snapshots: 30,
            spinup: 6.0 * 3600.0,
            swin,
            epochs: 20,
            lr: 2e-3,
            seed: 0,
            forcing: None,
        }
    }

    /// Medium scenario for the headline benchmarks.
    pub fn medium() -> Scenario {
        let mut s = Scenario::small();
        s.grid_params.estuary.ny = 48;
        s.grid_params.estuary.nx = 32;
        s.grid_params.nz = 4;
        s.swin.ny = 48;
        s.swin.nx = 32;
        s.swin.nz = 4;
        s.swin.t_out = 6;
        s.swin.patch = [4, 4, 2];
        s.t_out = 6;
        s.train_snapshots = 120;
        s.test_snapshots = 60;
        s
    }

    pub fn grid(&self) -> Grid {
        Grid::build(&self.grid_params)
    }

    /// The forcing this scenario runs under for `year`: the pinned
    /// override when one is set, else the year-derived parameterization.
    /// The single resolution rule shared by the solver configuration and
    /// the ensemble engine (perturbation bases, window synthesis) — they
    /// must never disagree on what the base forcing is.
    pub fn base_forcing(&self, year: u32) -> TidalForcing {
        self.forcing
            .clone()
            .unwrap_or_else(|| TidalForcing::for_year(year))
    }

    /// Ocean config with year-specific forcing (or the scenario's
    /// explicit override when one is pinned).
    pub fn ocean_config(&self, grid: &Grid, year: u32) -> OceanConfig {
        let mut cfg = OceanConfig::for_grid(grid);
        cfg.forcing = self.base_forcing(year);
        // Keep the slow step a divisor of the snapshot interval.
        let per = (self.snapshot_interval / cfg.dt_slow()).round().max(1.0);
        cfg.phys.dt_fast = self.snapshot_interval / per / cfg.ndtfast as f64;
        cfg
    }

    /// Simulate one "year" (scaled) of archive data with the given forcing
    /// year.
    pub fn simulate_archive(&self, grid: &Grid, year: u32, n: usize) -> Vec<Snapshot> {
        let cfg = self.ocean_config(grid, year);
        let mut model = Roms::new(grid, cfg);
        model.spinup(self.spinup);
        model.record(n, self.snapshot_interval)
    }
}

/// End-to-end parity gates for the reduced-precision inference tiers:
/// maximum allowed `max |Δζ|` (meters) of an int8 / f16 forecast against
/// the f32 forward of the same trained model on the standard verification
/// scenarios. Enforced by `tests/quant_parity.rs`; reported per mode by
/// `bench_load`. ζ on these scenarios spans O(1 m) of tidal range, so the
/// int8 gate is ~1% of signal and the f16 gate ~0.1%.
pub const ZETA_TOL_INT8: f32 = 2e-2;
/// See [`ZETA_TOL_INT8`].
pub const ZETA_TOL_F16: f32 = 2e-3;

/// A trained surrogate bundle.
pub struct TrainedSurrogate {
    pub model: SwinSurrogate,
    pub stats: NormStats,
    pub mask: Tensor,
    pub encode: EncodeConfig,
    pub snapshot_interval: f64,
    /// Final training-epoch statistics.
    pub last_epoch: cpipeline::EpochStats,
    /// Numeric precision of the inference forward: every `predict_*`
    /// builds its graph at this precision. Training always runs f32;
    /// reduced tiers quantize `Linear` weights lazily (cached on the
    /// params) on first predict.
    pub precision: Precision,
}

/// Everything needed to reconstruct a [`TrainedSurrogate`] in another
/// thread or process: the model config, its parameter tensors, and the
/// encode/decode context.
///
/// Unlike the live model (whose parameters are `Rc`-shared and therefore
/// thread-local), a spec is `Send + Sync` — tensors are immutable
/// `Arc`-backed buffers — so replica pools can ship one spec to every
/// worker and rebuild identical models locally.
#[derive(Clone)]
pub struct SurrogateSpec {
    pub swin: SwinConfig,
    /// Parameter tensors in `state_dict` order.
    pub state: Vec<Tensor>,
    /// Non-trainable buffers (BatchNorm running statistics) — without
    /// these a rebuilt model normalizes with fresh stats and drifts from
    /// the trained one.
    pub buffers: Vec<Tensor>,
    pub stats: NormStats,
    pub mask: Tensor,
    pub encode: EncodeConfig,
    pub snapshot_interval: f64,
    /// Precision the instantiated surrogate serves at.
    pub precision: Precision,
}

impl SurrogateSpec {
    /// Same spec at a different serving precision (replica pools use this
    /// to run heterogeneous-precision workers from one trained model).
    pub fn with_precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Forecast steps per episode.
    pub fn t_out(&self) -> usize {
        self.swin.t_out
    }

    /// Expected mesh `(nz, ny, nx)` of request snapshots.
    pub fn mesh(&self) -> (usize, usize, usize) {
        (self.swin.nz, self.swin.ny, self.swin.nx)
    }

    /// Rebuild a live surrogate from this spec (e.g. inside a worker
    /// thread). The reconstruction is exact: parameters are loaded from
    /// the recorded state, not re-initialized.
    pub fn instantiate(&self) -> TrainedSurrogate {
        let model = SwinSurrogate::from_state(self.swin.clone(), &self.state);
        model.load_buffers(&self.buffers);
        if self.precision != Precision::F32 {
            // Warm the per-param quantized-weight caches now, at load
            // time, so the first request doesn't pay for quantizing every
            // layer. Only 2-D params (Linear weights) have a quantized
            // form; the tier gate may still keep individual layers at f16.
            let mut params = Vec::new();
            model.collect_params(&mut params);
            for p in &params {
                let shape = p.value().shape().to_vec();
                if let [k, n] = shape[..] {
                    let _ = p.quantized(self.precision, k, n);
                }
            }
        }
        TrainedSurrogate {
            model,
            stats: self.stats,
            mask: self.mask.clone(),
            encode: self.encode.clone(),
            snapshot_interval: self.snapshot_interval,
            last_epoch: cpipeline::EpochStats::default(),
            precision: self.precision,
        }
    }
}

/// The single source of truth for what a valid episode window is: the
/// initial condition plus `t_out` boundary frames, every snapshot on the
/// `(nz, ny, nx)` mesh. Shared by [`TrainedSurrogate`] and the serving
/// front end so admission and execution can never disagree.
pub fn validate_episode_window(
    t_out: usize,
    mesh: (usize, usize, usize),
    window: &[Snapshot],
) -> Result<(), ForecastError> {
    let needed = t_out + 1;
    if window.len() != needed {
        return Err(ForecastError::WindowLength {
            needed,
            got: window.len(),
        });
    }
    for s in window {
        let got = (s.nz, s.ny, s.nx);
        if got != mesh {
            return Err(ForecastError::MeshMismatch {
                expected: mesh,
                got,
            });
        }
    }
    Ok(())
}

/// Train a surrogate on a snapshot archive.
pub fn train_surrogate(scenario: &Scenario, grid: &Grid, archive: &[Snapshot]) -> TrainedSurrogate {
    let mask_vec: Vec<f64> = (0..grid.ny)
        .flat_map(|j| (0..grid.nx).map(move |i| (j, i)))
        .map(|(j, i)| grid.mask_rho.get(j as isize, i as isize))
        .collect();
    let stats = NormStats::from_snapshots(archive, &mask_vec);
    let mask = Tensor::from_vec(
        mask_vec.iter().map(|&v| v as f32).collect(),
        &[grid.ny, grid.nx],
    );

    let store = Arc::new(SnapshotStore::build(archive));
    let starts = WindowSpec::train(scenario.t_out).starts(archive.len());
    let encode = EncodeConfig::default();
    let loader = DataLoader::new(
        store,
        starts,
        scenario.t_out,
        stats,
        encode.clone(),
        LoaderConfig {
            shuffle_seed: Some(scenario.seed),
            ..Default::default()
        },
    );

    let model = SwinSurrogate::new(scenario.swin.clone(), scenario.seed);
    let mut trainer = Trainer::new(
        model,
        mask.clone(),
        TrainConfig {
            lr: scenario.lr,
            backend: scenario.swin.backend,
            ..Default::default()
        },
    );
    let mut last = cpipeline::EpochStats::default();
    for e in 0..scenario.epochs {
        last = trainer.train_epoch(&loader, e as u64);
    }
    TrainedSurrogate {
        model: trainer.model,
        stats,
        mask,
        encode,
        snapshot_interval: scenario.snapshot_interval,
        last_epoch: last,
        precision: Precision::F32,
    }
}

impl TrainedSurrogate {
    /// Extract the `Send + Sync` spec that reconstructs this surrogate in
    /// another thread (cheap: tensors are `Arc` clones).
    pub fn spec(&self) -> SurrogateSpec {
        SurrogateSpec {
            swin: self.model.cfg.clone(),
            state: state_dict(&self.model),
            buffers: self.model.buffers(),
            stats: self.stats,
            mask: self.mask.clone(),
            encode: self.encode.clone(),
            snapshot_interval: self.snapshot_interval,
            precision: self.precision,
        }
    }

    /// Validate that `window` is a well-formed episode for this model:
    /// the initial condition plus `t_out` boundary frames, all on the
    /// configured mesh.
    pub fn validate_window(&self, window: &[Snapshot]) -> Result<(), ForecastError> {
        validate_episode_window(
            self.model.cfg.t_out,
            (self.model.cfg.nz, self.model.cfg.ny, self.model.cfg.nx),
            window,
        )
    }

    /// Predict one episode: `window[0]` is the initial condition; the
    /// boundary conditions are taken from `window[1..]` (as the paper
    /// feeds future lateral BCs). Returns the predicted snapshots.
    pub fn predict_episode(&self, window: &[Snapshot]) -> Vec<Snapshot> {
        let ep = encode_episode(window, &self.stats, &self.encode);
        self.predict_encoded(&ep)
    }

    /// Fallible [`Self::predict_episode`]: window validation surfaces as a
    /// typed error instead of a panic deeper in the encode/forward path.
    pub fn try_predict_episode(&self, window: &[Snapshot]) -> Result<Vec<Snapshot>, ForecastError> {
        self.validate_window(window)?;
        Ok(self.predict_episode(window))
    }

    /// Predict a batch of episodes in one forward pass.
    ///
    /// The episodes are stacked along the batch axis (the Table I timing
    /// path promoted to a first-class API), so the batched matmul /
    /// attention kernels amortize per-op overhead across requests —
    /// serving throughput scales with batch size, not request count.
    /// Results match per-episode [`Self::predict_episode`] calls within
    /// numerical tolerance.
    pub fn predict_batch(
        &self,
        windows: &[&[Snapshot]],
    ) -> Result<Vec<Vec<Snapshot>>, ForecastError> {
        if windows.is_empty() {
            return Err(ForecastError::EmptyBatch);
        }
        for w in windows {
            self.validate_window(w)?;
        }
        let eps: Vec<Episode> = windows
            .iter()
            .map(|w| encode_episode(w, &self.stats, &self.encode))
            .collect();
        let t0s: Vec<f64> = eps.iter().map(|e| e.t0).collect();
        let batch = stack_episodes(&eps);
        let mut g = Graph::inference_with_precision(self.precision);
        let x3 = g.constant(batch.x3d);
        let x2 = g.constant(batch.x2d);
        let (p3, p2) = self.model.forward(&mut g, x3, x2);
        let mut out = decode_prediction_batch(
            g.value(p3),
            g.value(p2),
            &self.stats,
            &t0s,
            self.snapshot_interval,
        );
        for snaps in &mut out {
            self.mask_land(snaps);
        }
        Ok(out)
    }

    /// Predict from an already-encoded episode.
    pub fn predict_encoded(&self, ep: &Episode) -> Vec<Snapshot> {
        let mut g = Graph::inference_with_precision(self.precision);
        let x3 = g.constant(ep.x3d.clone());
        let x2 = g.constant(ep.x2d.clone());
        let (p3, p2) = self.model.forward(&mut g, x3, x2);
        let mut snaps = decode_prediction(
            g.value(p3),
            g.value(p2),
            &self.stats,
            ep.t0,
            self.snapshot_interval,
        );
        self.mask_land(&mut snaps);
        snaps
    }

    /// Zero land cells (the model is only trained on water).
    fn mask_land(&self, snaps: &mut [Snapshot]) {
        for s in snaps.iter_mut() {
            for j in 0..s.ny {
                for i in 0..s.nx {
                    if self.mask.at(&[j, i]) < 0.5 {
                        let i2 = s.idx2(j, i);
                        s.zeta[i2] = 0.0;
                        for k in 0..s.nz {
                            let i3 = s.idx3(k, j, i);
                            s.u[i3] = 0.0;
                            s.v[i3] = 0.0;
                            s.w[i3] = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// Wall-clock one batched inference (Table I / IV timing).
    pub fn time_inference(&self, windows: &[&[Snapshot]]) -> f64 {
        let eps: Vec<Episode> = windows
            .iter()
            .map(|w| encode_episode(w, &self.stats, &self.encode))
            .collect();
        let batch = stack_episodes(&eps);
        let t0 = std::time::Instant::now();
        let mut g = Graph::inference_with_precision(self.precision);
        let x3 = g.constant(batch.x3d.clone());
        let x2 = g.constant(batch.x2d.clone());
        let _ = self.model.forward(&mut g, x3, x2);
        t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_end_to_end() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 12);
        assert_eq!(archive.len(), 12);
        let mut sc2 = sc.clone();
        sc2.epochs = 1;
        let trained = train_surrogate(&sc2, &grid, &archive);
        assert!(trained.last_epoch.mean_loss.is_finite());
        assert!(trained.last_epoch.instances > 0);

        // Predict the first episode and compare shapes.
        let pred = trained.predict_episode(&archive[..sc.t_out + 1]);
        assert_eq!(pred.len(), sc.t_out);
        assert_eq!(pred[0].ny, grid.ny);
        assert!(pred.iter().all(|s| s.zeta.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn predict_batch_matches_sequential() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 24);
        let mut sc1 = sc.clone();
        sc1.epochs = 1;
        let trained = train_surrogate(&sc1, &grid, &archive);

        let len = sc.t_out + 1;
        let windows: Vec<&[Snapshot]> = archive.chunks_exact(len).collect();
        assert!(windows.len() >= 3);
        let batched = trained.predict_batch(&windows).unwrap();
        assert_eq!(batched.len(), windows.len());
        for (w, b) in windows.iter().zip(&batched) {
            let seq = trained.predict_episode(w);
            assert_eq!(seq.len(), b.len());
            for (s, p) in seq.iter().zip(b) {
                assert_eq!(s.time, p.time);
                for (field_s, field_p) in
                    [(&s.zeta, &p.zeta), (&s.u, &p.u), (&s.v, &p.v), (&s.w, &p.w)]
                {
                    for (a, c) in field_s.iter().zip(field_p.iter()) {
                        assert!((a - c).abs() < 1e-5, "batched {c} vs sequential {a}");
                    }
                }
            }
        }
    }

    #[test]
    fn predict_batch_rejects_malformed_windows() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 12);
        let mut sc1 = sc.clone();
        sc1.epochs = 1;
        let trained = train_surrogate(&sc1, &grid, &archive);

        assert!(matches!(
            trained.predict_batch(&[]),
            Err(crate::error::ForecastError::EmptyBatch)
        ));
        let short = &archive[..sc.t_out]; // missing one boundary frame
        assert!(matches!(
            trained.predict_batch(&[short]),
            Err(crate::error::ForecastError::WindowLength { .. })
        ));
    }

    #[test]
    fn spec_roundtrip_reproduces_predictions() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 12);
        let mut sc1 = sc.clone();
        sc1.epochs = 1;
        let trained = train_surrogate(&sc1, &grid, &archive);
        let rebuilt = trained.spec().instantiate();

        let window = &archive[..sc.t_out + 1];
        let a = trained.predict_episode(window);
        let b = rebuilt.predict_episode(window);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.zeta, y.zeta, "spec roundtrip must be exact");
            assert_eq!(x.u, y.u);
        }
    }

    #[test]
    fn forcing_override_changes_archive_deterministically() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let base = sc.simulate_archive(&grid, 0, 4);
        let mut f = cocean::TidalForcing::for_year(0);
        for c in &mut f.constituents {
            c.amplitude *= 1.5;
        }
        let pert = sc.clone().with_forcing(f).simulate_archive(&grid, 0, 4);
        assert!(
            base.iter().zip(&pert).any(|(a, b)| a.zeta != b.zeta),
            "forcing override must change the simulated archive"
        );
        let again = sc.simulate_archive(&grid, 0, 4);
        assert_eq!(base[0].zeta, again[0].zeta, "no-override rerun is exact");
    }

    #[test]
    fn training_reduces_loss_across_epochs() {
        let sc = Scenario::small();
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 20);
        let mut sc1 = sc.clone();
        sc1.epochs = 1;
        let one = train_surrogate(&sc1, &grid, &archive);
        let mut sc4 = sc;
        sc4.epochs = 4;
        let four = train_surrogate(&sc4, &grid, &archive);
        assert!(
            four.last_epoch.mean_loss < one.last_epoch.mean_loss,
            "{} !< {}",
            four.last_epoch.mean_loss,
            one.last_epoch.mean_loss
        );
    }
}
