//! The hybrid AI+ROMS workflow (paper Fig. 1 / Fig. 8): surrogate
//! inference, physics verification, and automatic fallback to the
//! simulator when a prediction violates mass conservation.

use std::time::Instant;

use cgrid::Grid;
use cocean::{OceanConfig, Roms, Snapshot};
use cphysics::{Verifier, VerifierConfig};

use crate::error::ForecastError;
use crate::train::TrainedSurrogate;

/// Outcome of a hybrid forecast.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// The forecast trajectory (episode-concatenated).
    pub snapshots: Vec<Snapshot>,
    pub episodes_total: usize,
    pub episodes_ai: usize,
    pub episodes_fallback: usize,
    pub ai_seconds: f64,
    pub roms_seconds: f64,
    pub verify_seconds: f64,
}

impl HybridOutcome {
    /// Total wall time of the forecast.
    pub fn total_seconds(&self) -> f64 {
        self.ai_seconds + self.roms_seconds + self.verify_seconds
    }
}

/// Hybrid forecaster over a fixed grid.
pub struct HybridForecaster<'a> {
    pub grid: &'a Grid,
    pub surrogate: &'a TrainedSurrogate,
    pub ocean: OceanConfig,
    pub verifier_cfg: VerifierConfig,
}

impl<'a> HybridForecaster<'a> {
    pub fn new(
        grid: &'a Grid,
        surrogate: &'a TrainedSurrogate,
        ocean: OceanConfig,
        verifier_cfg: VerifierConfig,
    ) -> Self {
        Self {
            grid,
            surrogate,
            ocean,
            verifier_cfg,
        }
    }

    /// Forecast `n_episodes` of `t_out` steps each, starting from
    /// `reference[start]`. Boundary conditions for each episode are read
    /// from the reference trajectory (in deployment they come from tide
    /// tables / a parent model); the reference also never leaks interior
    /// state into the surrogate input beyond the initial condition.
    ///
    /// Each episode is verified; on failure, the episode is recomputed
    /// with the simulator initialized from the last accepted state (the
    /// paper's "switch back to ROMS" arm), and the forecast continues.
    ///
    /// A reference trajectory too short to supply boundary frames is a
    /// typed [`ForecastError`], not a panic — serving workers stay up.
    pub fn forecast(
        &self,
        reference: &[Snapshot],
        start: usize,
        n_episodes: usize,
    ) -> Result<HybridOutcome, ForecastError> {
        // Pin the surrogate's configured backend for the whole hybrid run:
        // episode encode/decode tensor work shares the model's kernels.
        let _backend = ctensor::backend::scoped(self.surrogate.model.cfg.backend.resolve());
        let t_out = self.surrogate.model.cfg.t_out;
        if start + n_episodes * t_out >= reference.len() {
            return Err(ForecastError::ReferenceTooShort {
                needed: start + n_episodes * t_out + 1,
                got: reference.len(),
            });
        }
        let verifier = Verifier::new(self.grid, self.verifier_cfg);

        let mut out = HybridOutcome {
            snapshots: Vec::with_capacity(n_episodes * t_out),
            episodes_total: n_episodes,
            episodes_ai: 0,
            episodes_fallback: 0,
            ai_seconds: 0.0,
            roms_seconds: 0.0,
            verify_seconds: 0.0,
        };

        // The evolving initial condition: starts from the reference, then
        // follows our own forecast (AI or fallback).
        let mut current = reference[start].clone();

        for e in 0..n_episodes {
            let w0 = start + e * t_out;
            // Window for boundary conditions: current state + reference
            // boundary frames.
            let mut window = Vec::with_capacity(t_out + 1);
            window.push(current.clone());
            for s in &reference[w0 + 1..=w0 + t_out] {
                window.push(s.clone());
            }

            let t_ai = Instant::now();
            let prediction = self.surrogate.try_predict_episode(&window)?;
            out.ai_seconds += t_ai.elapsed().as_secs_f64();

            let t_v = Instant::now();
            let verdicts = verifier.check_episode(&current, &prediction);
            let passed = verdicts.iter().all(|v| v.passed) && verdicts.len() == t_out;
            out.verify_seconds += t_v.elapsed().as_secs_f64();

            if passed {
                out.episodes_ai += 1;
                current = prediction
                    .last()
                    .ok_or(ForecastError::EmptyEpisode)?
                    .clone();
                out.snapshots.extend(prediction);
            } else {
                // Fallback: run the simulator for this episode from the
                // last accepted state.
                let t_r = Instant::now();
                let mut roms = Roms::new(self.grid, self.ocean.clone());
                roms.load(&current);
                let sim = roms.record(t_out, self.surrogate.snapshot_interval);
                out.roms_seconds += t_r.elapsed().as_secs_f64();
                out.episodes_fallback += 1;
                current = sim.last().ok_or(ForecastError::EmptyEpisode)?.clone();
                out.snapshots.extend(sim);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_surrogate, Scenario};
    use cphysics::ACCEPTED_THRESHOLD;

    fn setup() -> (Grid, TrainedSurrogate, Vec<Snapshot>, Scenario) {
        let sc = Scenario::small();
        let grid = sc.grid();
        let train = sc.simulate_archive(&grid, 0, 40);
        let trained = train_surrogate(&sc, &grid, &train);
        let test = sc.simulate_archive(&grid, 1, 20);
        (grid, trained, test, sc)
    }

    #[test]
    fn strict_threshold_forces_fallback_loose_allows_ai() {
        let (grid, trained, test, sc) = setup();
        let ocean = sc.ocean_config(&grid, 1);

        // Absurdly strict: every episode must fall back to the simulator.
        let strict = HybridForecaster::new(
            &grid,
            &trained,
            ocean.clone(),
            VerifierConfig { threshold: 1e-12 },
        );
        let r = strict.forecast(&test, 0, 2).unwrap();
        assert_eq!(r.episodes_fallback, 2);
        assert_eq!(r.episodes_ai, 0);
        assert!(r.roms_seconds > 0.0);

        // Absurdly loose: every episode is accepted from the AI.
        let loose =
            HybridForecaster::new(&grid, &trained, ocean, VerifierConfig { threshold: 1e9 });
        let r = loose.forecast(&test, 0, 2).unwrap();
        assert_eq!(r.episodes_ai, 2);
        assert_eq!(r.episodes_fallback, 0);
        assert_eq!(r.snapshots.len(), 2 * sc.t_out);
    }

    #[test]
    fn fallback_episodes_satisfy_conservation() {
        let (grid, trained, test, sc) = setup();
        let ocean = sc.ocean_config(&grid, 1);
        let fc = HybridForecaster::new(&grid, &trained, ocean, VerifierConfig { threshold: 1e-12 });
        let r = fc.forecast(&test, 0, 1).unwrap();
        // Simulator output passes the oceanographic threshold.
        let verifier = Verifier::new(
            &grid,
            VerifierConfig {
                threshold: ACCEPTED_THRESHOLD,
            },
        );
        let verdicts = verifier.check_episode(&test[0], &r.snapshots);
        assert!(
            verdicts.iter().all(|v| v.passed),
            "fallback must be physical: {verdicts:?}"
        );
    }

    #[test]
    fn short_reference_is_typed_error_not_panic() {
        let (grid, trained, test, sc) = setup();
        let ocean = sc.ocean_config(&grid, 1);
        let fc = HybridForecaster::new(&grid, &trained, ocean, VerifierConfig { threshold: 1e9 });
        // 20 test snapshots cannot supply 10 episodes × t_out frames.
        let err = fc.forecast(&test, 0, 10);
        assert!(matches!(err, Err(ForecastError::ReferenceTooShort { .. })));
        // A mesh mismatch in the window likewise surfaces as an error.
        let mut bad = test.clone();
        bad[1] = Snapshot {
            time: bad[1].time,
            nz: 1,
            ny: 2,
            nx: 2,
            zeta: vec![0.0; 4],
            u: vec![0.0; 4],
            v: vec![0.0; 4],
            w: vec![0.0; 4],
        };
        let err = fc.forecast(&bad, 0, 1);
        assert!(matches!(err, Err(ForecastError::MeshMismatch { .. })));
    }

    #[test]
    fn timing_fields_populated() {
        let (grid, trained, test, sc) = setup();
        let ocean = sc.ocean_config(&grid, 1);
        let fc = HybridForecaster::new(&grid, &trained, ocean, VerifierConfig { threshold: 1e9 });
        let r = fc.forecast(&test, 0, 2).unwrap();
        assert!(r.ai_seconds > 0.0);
        assert!(r.verify_seconds > 0.0);
        assert!(r.total_seconds() >= r.ai_seconds);
    }
}
