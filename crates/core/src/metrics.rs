//! Forecast quality metrics (paper Table III): per-variable MAE/RMSE over
//! water cells between snapshot trajectories.

use cgrid::Grid;
use cocean::Snapshot;

/// MAE/RMSE per variable, ordered `u, v, w, ζ`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorTable {
    pub mae: [f64; 4],
    pub rmse: [f64; 4],
}

impl ErrorTable {
    /// Compare two equal-length trajectories cell-by-cell (water only).
    pub fn between(grid: &Grid, reference: &[Snapshot], predicted: &[Snapshot]) -> ErrorTable {
        assert_eq!(reference.len(), predicted.len());
        assert!(!reference.is_empty());
        let mut abs = [0.0f64; 4];
        let mut sq = [0.0f64; 4];
        let mut n3 = 0usize;
        let mut n2 = 0usize;
        for (a, b) in reference.iter().zip(predicted) {
            assert_eq!((a.ny, a.nx, a.nz), (b.ny, b.nx, b.nz));
            for j in 0..a.ny {
                for i in 0..a.nx {
                    if grid.mask_rho.get(j as isize, i as isize) < 0.5 {
                        continue;
                    }
                    for k in 0..a.nz {
                        let idx = a.idx3(k, j, i);
                        for (c, (fa, fb)) in [(&a.u, &b.u), (&a.v, &b.v), (&a.w, &b.w)]
                            .into_iter()
                            .enumerate()
                        {
                            let d = (fa[idx] - fb[idx]) as f64;
                            abs[c] += d.abs();
                            sq[c] += d * d;
                        }
                        n3 += 1;
                    }
                    let d = (a.zeta[a.idx2(j, i)] - b.zeta[b.idx2(j, i)]) as f64;
                    abs[3] += d.abs();
                    sq[3] += d * d;
                    n2 += 1;
                }
            }
        }
        let mut out = ErrorTable::default();
        for c in 0..3 {
            out.mae[c] = abs[c] / n3.max(1) as f64;
            out.rmse[c] = (sq[c] / n3.max(1) as f64).sqrt();
        }
        out.mae[3] = abs[3] / n2.max(1) as f64;
        out.rmse[3] = (sq[3] / n2.max(1) as f64).sqrt();
        out
    }

    /// Render like the paper's Table III row.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<10} MAE  u={:.3e} v={:.3e} w={:.3e} ζ={:.3e} | RMSE u={:.3e} v={:.3e} w={:.3e} ζ={:.3e}",
            self.mae[0], self.mae[1], self.mae[2], self.mae[3],
            self.rmse[0], self.rmse[1], self.rmse[2], self.rmse[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, GridParams};

    fn grid() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 16,
                nx: 16,
                ..Default::default()
            },
            nz: 2,
            ..Default::default()
        })
    }

    fn zero_snap(g: &Grid, t: f64) -> Snapshot {
        Snapshot {
            time: t,
            nz: 2,
            ny: g.ny,
            nx: g.nx,
            zeta: vec![0.0; g.ny * g.nx],
            u: vec![0.0; 2 * g.ny * g.nx],
            v: vec![0.0; 2 * g.ny * g.nx],
            w: vec![0.0; 2 * g.ny * g.nx],
        }
    }

    #[test]
    fn identical_trajectories_zero_error() {
        let g = grid();
        let t: Vec<Snapshot> = (0..3).map(|k| zero_snap(&g, k as f64)).collect();
        let e = ErrorTable::between(&g, &t, &t);
        assert_eq!(e.mae, [0.0; 4]);
        assert_eq!(e.rmse, [0.0; 4]);
    }

    #[test]
    fn constant_offset_gives_exact_mae() {
        let g = grid();
        let a: Vec<Snapshot> = (0..2).map(|k| zero_snap(&g, k as f64)).collect();
        let mut b = a.clone();
        for s in &mut b {
            for v in s.zeta.iter_mut() {
                *v = 0.25;
            }
            for v in s.u.iter_mut() {
                *v = -0.5;
            }
        }
        let e = ErrorTable::between(&g, &a, &b);
        assert!((e.mae[3] - 0.25).abs() < 1e-9);
        assert!((e.rmse[3] - 0.25).abs() < 1e-9);
        assert!((e.mae[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn land_excluded() {
        let g = grid();
        let a = vec![zero_snap(&g, 0.0)];
        let mut b = a.clone();
        // Pollute a land cell only.
        let mut land = None;
        'f: for j in 0..g.ny {
            for i in 0..g.nx {
                if g.mask_rho.get(j as isize, i as isize) < 0.5 {
                    land = Some((j, i));
                    break 'f;
                }
            }
        }
        let (j, i) = land.expect("estuary has land");
        b[0].zeta[j * g.nx + i] = 99.0;
        let e = ErrorTable::between(&g, &a, &b);
        assert_eq!(e.mae[3], 0.0);
    }
}
