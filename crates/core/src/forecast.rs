//! Dual-model long-horizon forecasting (paper §III-A): a coarse-interval
//! model strides across the full horizon, and a fine-interval model
//! refines each coarse interval to the target resolution, using each
//! coarse snapshot as the fine model's initial condition.

use cocean::Snapshot;

use crate::error::ForecastError;
use crate::train::TrainedSurrogate;

/// Coarse + fine surrogate composition.
pub struct DualModelForecaster<'a> {
    /// Long-stride model (the paper's 12-hour-interval model).
    pub coarse: &'a TrainedSurrogate,
    /// Short-stride model (the half-hour-interval model).
    pub fine: &'a TrainedSurrogate,
}

impl<'a> DualModelForecaster<'a> {
    /// Produce a fine-resolution forecast over the coarse model's full
    /// horizon. `coarse_reference` supplies the coarse-model boundary
    /// frames; `fine_reference` supplies fine-model boundary frames,
    /// `fine_per_coarse` fine steps per coarse interval.
    ///
    /// Returns the concatenated fine-resolution trajectory (length
    /// `coarse.t_out × fine.t_out` when `fine_per_coarse == fine.t_out`),
    /// or a typed error when the reference trajectories cannot supply the
    /// required boundary frames — a malformed request must not panic a
    /// serving worker.
    pub fn forecast(
        &self,
        coarse_reference: &[Snapshot],
        fine_reference: &[Snapshot],
        start_fine: usize,
    ) -> Result<Vec<Snapshot>, ForecastError> {
        let ct = self.coarse.model.cfg.t_out;
        let ft = self.fine.model.cfg.t_out;
        if coarse_reference.len() <= ct {
            return Err(ForecastError::ReferenceTooShort {
                needed: ct + 1,
                got: coarse_reference.len(),
            });
        }
        if fine_reference.len() <= start_fine + ct * ft {
            return Err(ForecastError::ReferenceTooShort {
                needed: start_fine + ct * ft + 1,
                got: fine_reference.len(),
            });
        }

        // 1. Coarse sweep across the horizon.
        let coarse_pred = self.coarse.try_predict_episode(&coarse_reference[..=ct])?;

        // 2. Refine each coarse interval with the fine model, seeded by
        //    the previous coarse snapshot (the IC), boundary frames from
        //    the fine reference.
        let mut out = Vec::with_capacity(ct * ft);
        let mut ic = coarse_reference[0].clone();
        for (c, coarse_snap) in coarse_pred.iter().enumerate() {
            let f0 = start_fine + c * ft;
            let mut window = Vec::with_capacity(ft + 1);
            let mut ic_fixed = ic.clone();
            ic_fixed.time = fine_reference[f0].time;
            window.push(ic_fixed);
            for s in &fine_reference[f0 + 1..=f0 + ft] {
                window.push(s.clone());
            }
            let fine_pred = self.fine.try_predict_episode(&window)?;
            out.extend(fine_pred);
            ic = coarse_snap.clone();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_surrogate, Scenario};

    #[test]
    fn dual_model_produces_full_fine_trajectory() {
        // Coarse model strides 4 snapshots at a time over the same archive
        // the fine model refines (a scaled stand-in for 12h vs 30min).
        let sc_fine = Scenario::small();
        let grid = sc_fine.grid();
        let archive = sc_fine.simulate_archive(&grid, 0, 60);

        // Fine model: interval = archive interval.
        let fine = train_surrogate(&sc_fine, &grid, &archive);

        // Coarse model: every 4th snapshot.
        let mut sc_coarse = sc_fine.clone();
        sc_coarse.snapshot_interval = sc_fine.snapshot_interval * 4.0;
        let coarse_archive: Vec<_> = archive.iter().step_by(4).cloned().collect();
        let coarse = train_surrogate(&sc_coarse, &grid, &coarse_archive);

        let dual = DualModelForecaster {
            coarse: &coarse,
            fine: &fine,
        };
        let out = dual
            .forecast(&coarse_archive, &archive, 0)
            .expect("references are long enough");
        assert_eq!(out.len(), sc_coarse.t_out * sc_fine.t_out);
        assert!(out.iter().all(|s| s.zeta.iter().all(|v| v.is_finite())));

        // A truncated reference is a typed error, not a panic.
        let err = dual.forecast(&coarse_archive[..2], &archive, 0);
        assert!(matches!(err, Err(ForecastError::ReferenceTooShort { .. })));
        let err = dual.forecast(&coarse_archive, &archive[..3], 0);
        assert!(matches!(err, Err(ForecastError::ReferenceTooShort { .. })));
        // Times increase monotonically within each refined interval.
        for w in out.windows(2) {
            if w[1].time > w[0].time {
                continue;
            }
            // Interval boundary resets are allowed (each interval is
            // seeded from its coarse IC time).
        }
    }
}
