//! # coastal-core
//!
//! The top-level API of the reproduction: scenario configuration,
//! end-to-end surrogate training ([`train`]), the hybrid AI+ROMS workflow
//! with physics verification and fallback ([`workflow`]), dual-model
//! long-horizon forecasting ([`forecast`]), and Table-III-style metrics
//! ([`metrics`]).
//!
//! ```no_run
//! use ccore::{Scenario, train_surrogate};
//!
//! let sc = Scenario::small();
//! let grid = sc.grid();
//! let archive = sc.simulate_archive(&grid, 0, 40);
//! let trained = train_surrogate(&sc, &grid, &archive);
//! let forecast = trained.predict_episode(&archive[..sc.t_out + 1]);
//! assert_eq!(forecast.len(), sc.t_out);
//! ```

pub mod error;
pub mod forecast;
pub mod metrics;
pub mod train;
pub mod workflow;

pub use error::ForecastError;
pub use forecast::DualModelForecaster;
pub use metrics::ErrorTable;
pub use train::{
    train_surrogate, validate_episode_window, Scenario, SurrogateSpec, TrainedSurrogate,
    ZETA_TOL_F16, ZETA_TOL_INT8,
};
pub use workflow::{HybridForecaster, HybridOutcome};
