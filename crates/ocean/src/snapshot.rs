//! Cell-centered snapshots — the simulator's output format and the
//! surrogate's training schema.
//!
//! The paper (§III-B): "current velocity variables are located on the sides
//! of cells … we use linear interpolation to resample all variables to cell
//! centers", and the FP64 model output is compressed for training. Here
//! snapshots are produced in `f32` (the compute dtype of the surrogate);
//! the pipeline's store further compresses to `f16`.

use crate::domain::TileDomain;
use crate::state::State;

/// One temporal snapshot of the four surrogate variables at cell centers.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Model time (s).
    pub time: f64,
    pub nz: usize,
    pub ny: usize,
    pub nx: usize,
    /// Free surface (m), `ny × nx` row-major.
    pub zeta: Vec<f32>,
    /// Eastward velocity (m/s), `nz × ny × nx`, bottom layer first.
    pub u: Vec<f32>,
    /// Northward velocity (m/s), same layout.
    pub v: Vec<f32>,
    /// Vertical velocity (m/s), layer centers, same layout.
    pub w: Vec<f32>,
}

impl Snapshot {
    /// Flat index into 2-D fields.
    #[inline]
    pub fn idx2(&self, j: usize, i: usize) -> usize {
        j * self.nx + i
    }

    /// Flat index into 3-D fields.
    #[inline]
    pub fn idx3(&self, k: usize, j: usize, i: usize) -> usize {
        (k * self.ny + j) * self.nx + i
    }

    /// ζ at a cell.
    #[inline]
    pub fn zeta_at(&self, j: usize, i: usize) -> f32 {
        self.zeta[j * self.nx + i]
    }

    /// Bytes of payload (the paper's I/O accounting).
    pub fn nbytes(&self) -> usize {
        (self.zeta.len() + self.u.len() + self.v.len() + self.w.len()) * std::mem::size_of::<f32>()
    }

    /// Extract the tile interior of this snapshot (global → local crop).
    pub fn crop(&self, tile: chpc::Tile) -> Snapshot {
        let (ny, nx) = (tile.ny(), tile.nx());
        let mut out = Snapshot {
            time: self.time,
            nz: self.nz,
            ny,
            nx,
            zeta: vec![0.0; ny * nx],
            u: vec![0.0; self.nz * ny * nx],
            v: vec![0.0; self.nz * ny * nx],
            w: vec![0.0; self.nz * ny * nx],
        };
        for j in 0..ny {
            for i in 0..nx {
                out.zeta[j * nx + i] = self.zeta[self.idx2(tile.j0 + j, tile.i0 + i)];
                for k in 0..self.nz {
                    let src = self.idx3(k, tile.j0 + j, tile.i0 + i);
                    let dst = (k * ny + j) * nx + i;
                    out.u[dst] = self.u[src];
                    out.v[dst] = self.v[src];
                    out.w[dst] = self.w[src];
                }
            }
        }
        out
    }

    /// Root-mean-square difference per variable against another snapshot.
    pub fn rms_diff(&self, other: &Snapshot) -> [f32; 4] {
        fn rms(a: &[f32], b: &[f32]) -> f32 {
            let s: f64 = a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            ((s / a.len() as f64) as f32).sqrt()
        }
        [
            rms(&self.u, &other.u),
            rms(&self.v, &other.v),
            rms(&self.w, &other.w),
            rms(&self.zeta, &other.zeta),
        ]
    }
}

/// Interpolate the staggered state of one tile to cell centers.
pub fn take_snapshot(dom: &TileDomain, state: &State) -> Snapshot {
    let (nz, ny, nx) = (dom.nz, dom.ny, dom.nx);
    let mut snap = Snapshot {
        time: state.time,
        nz,
        ny,
        nx,
        zeta: vec![0.0; ny * nx],
        u: vec![0.0; nz * ny * nx],
        v: vec![0.0; nz * ny * nx],
        w: vec![0.0; nz * ny * nx],
    };
    for j in 0..ny {
        for i in 0..nx {
            let (js, is_) = (j as isize, i as isize);
            let wet = dom.mask_rho.get(js, is_) > 0.5;
            snap.zeta[j * nx + i] = if wet {
                state.zeta.get(js, is_) as f32
            } else {
                0.0
            };
            for k in 0..nz {
                let dst = (k * ny + j) * nx + i;
                if wet {
                    snap.u[dst] =
                        (0.5 * (state.u.get(k, js, is_) + state.u.get(k, js, is_ + 1))) as f32;
                    snap.v[dst] =
                        (0.5 * (state.v.get(k, js, is_) + state.v.get(k, js + 1, is_))) as f32;
                    snap.w[dst] =
                        (0.5 * (state.w.get(k, js, is_) + state.w.get(k + 1, js, is_))) as f32;
                }
            }
        }
    }
    snap
}

/// Rebuild a staggered state from a cell-centered snapshot (the inverse of
/// [`take_snapshot`], used when the hybrid workflow hands an AI-predicted
/// state back to the simulator). Faces average adjacent centers; `w` is
/// re-diagnosed by the next baroclinic step.
pub fn load_snapshot(
    dom: &TileDomain,
    snap: &Snapshot,
    phys: &crate::barotropic::PhysParams,
) -> State {
    assert_eq!((snap.ny, snap.nx, snap.nz), (dom.ny, dom.nx, dom.nz));
    let (nz, ny, nx) = (dom.nz, dom.ny as isize, dom.nx as isize);
    let mut s = State::rest(dom);
    s.time = snap.time;
    let at2 = |j: isize, i: isize| snap.zeta[(j as usize) * dom.nx + i as usize] as f64;
    let at3 = |k: usize, j: isize, i: isize| {
        snap.u[(k * dom.ny + j as usize) * dom.nx + i as usize] as f64
    };
    let at3v = |k: usize, j: isize, i: isize| {
        snap.v[(k * dom.ny + j as usize) * dom.nx + i as usize] as f64
    };
    for j in 0..ny {
        for i in 0..nx {
            if dom.mask_rho.get(j, i) > 0.5 {
                s.zeta.set(j, i, at2(j, i));
            }
        }
    }
    // u faces: average adjacent wet centers.
    for j in 0..ny {
        for i in 0..=nx {
            if dom.mask_u.get(j, i) < 0.5 {
                continue;
            }
            for k in 0..nz {
                let west = if i > 0 {
                    at3(k, j, i - 1)
                } else {
                    at3(k, j, 0)
                };
                let east = if i < nx {
                    at3(k, j, i)
                } else {
                    at3(k, j, nx - 1)
                };
                s.u.set(k, j, i, 0.5 * (west + east));
            }
        }
    }
    for j in 0..=ny {
        for i in 0..nx {
            if dom.mask_v.get(j, i) < 0.5 {
                continue;
            }
            for k in 0..nz {
                let south = if j > 0 {
                    at3v(k, j - 1, i)
                } else {
                    at3v(k, 0, i)
                };
                let north = if j < ny {
                    at3v(k, j, i)
                } else {
                    at3v(k, ny - 1, i)
                };
                s.v.set(k, j, i, 0.5 * (south + north));
            }
        }
    }
    // Barotropic fields = depth means of the layered fields.
    let sigma = &dom.sigma;
    for j in 0..ny {
        for i in 0..=nx {
            if dom.mask_u.get(j, i) < 0.5 {
                continue;
            }
            let zeta_f = 0.5 * (s.zeta.get(j, i - 1) + s.zeta.get(j, i));
            let h_f = dom.h_u(j, i);
            let depth = (h_f + zeta_f).max(phys.min_depth);
            let mean: f64 = (0..nz)
                .map(|k| s.u.get(k, j, i) * sigma.dz(k, h_f, zeta_f))
                .sum::<f64>()
                / depth;
            s.ubar.set(j, i, mean);
        }
    }
    for j in 0..=ny {
        for i in 0..nx {
            if dom.mask_v.get(j, i) < 0.5 {
                continue;
            }
            let zeta_f = 0.5 * (s.zeta.get(j - 1, i) + s.zeta.get(j, i));
            let h_f = dom.h_v(j, i);
            let depth = (h_f + zeta_f).max(phys.min_depth);
            let mean: f64 = (0..nz)
                .map(|k| s.v.get(k, j, i) * sigma.dz(k, h_f, zeta_f))
                .sum::<f64>()
                / depth;
            s.vbar.set(j, i, mean);
        }
    }
    crate::baroclinic::diagnose_w(dom, &mut s, phys);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barotropic::PhysParams;
    use cgrid::{EstuaryParams, Grid, GridParams};

    fn dom() -> TileDomain {
        let g = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 16,
                nx: 16,
                ..Default::default()
            },
            nz: 3,
            ..Default::default()
        });
        TileDomain::whole(&g)
    }

    #[test]
    fn snapshot_shapes() {
        let d = dom();
        let s = State::rest(&d);
        let snap = take_snapshot(&d, &s);
        assert_eq!(snap.zeta.len(), 16 * 16);
        assert_eq!(snap.u.len(), 3 * 16 * 16);
        assert_eq!(snap.nbytes(), (16 * 16 + 3 * 3 * 16 * 16) * 4);
    }

    #[test]
    fn centering_averages_faces() {
        let d = dom();
        let mut s = State::rest(&d);
        // Find a wet cell with wet faces.
        'outer: for j in 2..d.ny as isize - 2 {
            for i in 2..d.nx as isize - 2 {
                if d.mask_rho.get(j, i) > 0.5
                    && d.mask_u.get(j, i) > 0.5
                    && d.mask_u.get(j, i + 1) > 0.5
                {
                    s.u.set(0, j, i, 0.2);
                    s.u.set(0, j, i + 1, 0.4);
                    let snap = take_snapshot(&d, &s);
                    let c = snap.u[(j as usize) * d.nx + i as usize];
                    assert!((c - 0.3).abs() < 1e-6);
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn crop_extracts_tile() {
        let d = dom();
        let mut s = State::rest(&d);
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                s.zeta
                    .set(j, i, (j * 100 + i) as f64 * d.mask_rho.get(j, i));
            }
        }
        let snap = take_snapshot(&d, &s);
        let tile = chpc::Tile {
            j0: 4,
            j1: 10,
            i0: 2,
            i1: 8,
        };
        let c = snap.crop(tile);
        assert_eq!((c.ny, c.nx), (6, 6));
        assert_eq!(c.zeta_at(0, 0), snap.zeta_at(4, 2));
        assert_eq!(c.zeta_at(5, 5), snap.zeta_at(9, 7));
    }

    #[test]
    fn load_snapshot_roundtrips_zeta_and_interior_velocity() {
        let d = dom();
        let phys = PhysParams::default();
        let mut s = State::rest(&d);
        // Smooth field so face<->center interpolation is nearly exact.
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                if d.mask_rho.get(j, i) > 0.5 {
                    s.zeta.set(j, i, 0.1 * (i as f64 * 0.1).sin());
                }
            }
        }
        for k in 0..d.nz {
            for j in 0..d.ny as isize {
                for i in 0..=(d.nx as isize) {
                    if d.mask_u.get(j, i) > 0.5 {
                        s.u.set(k, j, i, 0.05 * (k as f64 + 1.0));
                    }
                }
            }
        }
        let snap = take_snapshot(&d, &s);
        let s2 = load_snapshot(&d, &snap, &phys);
        // ζ roundtrips exactly (up to f32).
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                if d.mask_rho.get(j, i) > 0.5 {
                    assert!((s2.zeta.get(j, i) - s.zeta.get(j, i)).abs() < 1e-6);
                }
            }
        }
        // Constant-per-layer u roundtrips on interior wet faces.
        let mut checked = 0;
        for j in 0..d.ny as isize {
            for i in 1..d.nx as isize {
                if d.mask_u.get(j, i) > 0.5
                    && d.mask_rho.get(j, i - 1) > 0.5
                    && d.mask_rho.get(j, i) > 0.5
                    && d.mask_u.get(j, i - 1) > 0.5
                    && d.mask_u.get(j, i + 1) > 0.5
                {
                    assert!((s2.u.get(1, j, i) - 0.1).abs() < 1e-5);
                    checked += 1;
                }
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn rms_diff_zero_for_identical() {
        let d = dom();
        let s = State::rest(&d);
        let a = take_snapshot(&d, &s);
        let b = a.clone();
        assert_eq!(a.rms_diff(&b), [0.0; 4]);
    }
}
