//! # coastal-ocean
//!
//! A ROMS-like coastal circulation model: split-explicit free-surface
//! solver on an Arakawa-C grid with terrain-following sigma layers.
//!
//! - Fast (barotropic) mode: forward-backward shallow-water stepping with
//!   Flather/Chapman open-boundary tidal forcing, quadratic bottom drag,
//!   Coriolis, horizontal eddy viscosity ([`barotropic`]).
//! - Slow (baroclinic) mode: implicit vertical viscosity (tridiagonal
//!   solve per column), ROMS-style barotropic mode coupling, vertical
//!   velocity diagnosed from continuity ([`baroclinic`]).
//! - Serial driver [`model::Roms`] and the MPI-style tiled driver
//!   [`par::run_tiled`] share the same kernels: tiled runs are
//!   bit-identical to serial ones.
//! - Output: cell-centered [`snapshot::Snapshot`]s matching the paper's
//!   data-preparation step (side→center interpolation, f32).

pub mod baroclinic;
pub mod barotropic;
pub mod domain;
pub mod forcing;
pub mod model;
pub mod par;
pub mod snapshot;
pub mod state;

pub use barotropic::{PhysParams, G};
pub use domain::TileDomain;
pub use forcing::{Constituent, ForcingError, TidalForcing};
pub use model::{OceanConfig, Roms};
pub use par::{run_tiled, TiledRun};
pub use snapshot::{load_snapshot, take_snapshot, Snapshot};
pub use state::State;
