//! Tidal and subtidal boundary forcing.
//!
//! The west boundary carries a prescribed sea-surface elevation built from
//! astronomical tidal constituents (Gulf-coast Florida is a mixed regime:
//! M2/S2 semidiurnal plus K1/O1 diurnal) and a seeded low-frequency
//! "weather" anomaly so different simulated years differ — this is what
//! separates the training year from the test year in the data pipeline,
//! standing in for the paper's 2011-train / 2012-test split.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a forcing parameterization was rejected at construction.
///
/// A non-finite amplitude or a non-positive period would silently turn
/// every boundary elevation into NaN/∞ deep inside the solver, so the
/// constructors reject them up front — essential once forcings are
/// *generated* (ensemble perturbations) rather than hand-written.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ForcingError {
    /// Amplitude was NaN or ±∞.
    NonFiniteAmplitude { amplitude: f64 },
    /// Period must be finite and strictly positive (seconds).
    InvalidPeriod { period: f64 },
    /// Phase was NaN or ±∞.
    NonFinitePhase { phase: f64 },
    /// A named forcing field (alongshore lag, time origin) was NaN or ±∞.
    NonFiniteParameter { name: &'static str, value: f64 },
}

impl fmt::Display for ForcingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForcingError::NonFiniteAmplitude { amplitude } => {
                write!(f, "constituent amplitude must be finite, got {amplitude}")
            }
            ForcingError::InvalidPeriod { period } => {
                write!(
                    f,
                    "constituent period must be finite and > 0 s, got {period}"
                )
            }
            ForcingError::NonFinitePhase { phase } => {
                write!(f, "constituent phase must be finite, got {phase}")
            }
            ForcingError::NonFiniteParameter { name, value } => {
                write!(f, "forcing {name} must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for ForcingError {}

/// One tidal constituent.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Constituent {
    /// Amplitude (m).
    pub amplitude: f64,
    /// Period (s).
    pub period: f64,
    /// Phase at t = 0 (rad).
    pub phase: f64,
}

impl Constituent {
    /// Constituent from literal parameters.
    ///
    /// # Panics
    /// On non-finite amplitude/phase or non-positive period — use
    /// [`Constituent::try_new`] for computed inputs.
    pub fn new(amplitude: f64, period_hours: f64, phase: f64) -> Self {
        Self::try_new(amplitude, period_hours, phase).expect("invalid tidal constituent")
    }

    /// Fallible constructor: rejects non-finite amplitude/phase and
    /// non-positive or non-finite period with a typed [`ForcingError`]
    /// instead of letting NaN elevations propagate into the solver.
    pub fn try_new(amplitude: f64, period_hours: f64, phase: f64) -> Result<Self, ForcingError> {
        if !amplitude.is_finite() {
            return Err(ForcingError::NonFiniteAmplitude { amplitude });
        }
        let period = period_hours * 3600.0;
        if !period.is_finite() || period <= 0.0 {
            return Err(ForcingError::InvalidPeriod { period });
        }
        if !phase.is_finite() {
            return Err(ForcingError::NonFinitePhase { phase });
        }
        Ok(Self {
            amplitude,
            period,
            phase,
        })
    }

    /// Re-check an existing constituent (e.g. after field surgery).
    pub fn validate(&self) -> Result<(), ForcingError> {
        if !self.amplitude.is_finite() {
            return Err(ForcingError::NonFiniteAmplitude {
                amplitude: self.amplitude,
            });
        }
        if !self.period.is_finite() || self.period <= 0.0 {
            return Err(ForcingError::InvalidPeriod {
                period: self.period,
            });
        }
        if !self.phase.is_finite() {
            return Err(ForcingError::NonFinitePhase { phase: self.phase });
        }
        Ok(())
    }

    /// Angular frequency (rad/s).
    #[inline]
    pub fn omega(&self) -> f64 {
        std::f64::consts::TAU / self.period
    }
}

/// Boundary forcing: tidal constituents + low-frequency anomaly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TidalForcing {
    pub constituents: Vec<Constituent>,
    /// Alongshore phase lag (rad per meter of boundary) — the tide arrives
    /// slightly later to the north, like a wave propagating along the coast.
    pub alongshore_lag: f64,
    /// Low-frequency anomaly components `(amplitude m, period s, phase)`.
    pub anomaly: Vec<Constituent>,
    /// Time origin offset (s) — shifts the astronomical alignment, used to
    /// generate distinct "years".
    pub t_origin: f64,
}

impl TidalForcing {
    /// Gulf-coast mixed tide defaults.
    pub fn gulf_default() -> Self {
        Self {
            constituents: vec![
                Constituent::new(0.35, 12.42, 0.0), // M2
                Constituent::new(0.12, 12.00, 0.8), // S2
                Constituent::new(0.16, 23.93, 1.9), // K1
                Constituent::new(0.12, 25.82, 4.1), // O1
            ],
            alongshore_lag: 2.0e-6,
            anomaly: Vec::new(),
            t_origin: 0.0,
        }
    }

    /// Defaults plus a deterministic weather anomaly for `year` (year 0 =
    /// training epoch, 1 = test epoch, …).
    pub fn for_year(year: u32) -> Self {
        let mut f = Self::gulf_default();
        f.t_origin = year as f64 * 365.25 * 86_400.0;
        // Three slow oscillations whose periods/phases depend on the year
        // through a small deterministic hash.
        let mix = |k: u32| {
            let x = (year.wrapping_mul(2654435761).wrapping_add(k * 40503)) as f64;
            (x * 1e-4).sin().abs()
        };
        for k in 0..3u32 {
            let period_days = 2.5 + 6.0 * mix(k);
            let amp = 0.04 + 0.06 * mix(k + 7);
            let phase = std::f64::consts::TAU * mix(k + 13);
            f.anomaly
                .push(Constituent::new(amp, period_days * 24.0, phase));
        }
        f
    }

    /// Single-constituent forcing (analytic tests).
    pub fn single(amplitude: f64, period_hours: f64) -> Self {
        Self {
            constituents: vec![Constituent::new(amplitude, period_hours, 0.0)],
            alongshore_lag: 0.0,
            anomaly: Vec::new(),
            t_origin: 0.0,
        }
    }

    /// No forcing at all (free oscillation tests).
    pub fn none() -> Self {
        Self {
            constituents: Vec::new(),
            alongshore_lag: 0.0,
            anomaly: Vec::new(),
            t_origin: 0.0,
        }
    }

    /// Validate every constituent (astronomical + anomaly) and the lag /
    /// origin fields. Generated forcings (ensemble perturbations, sweeps)
    /// should be validated before they reach the solver.
    pub fn validate(&self) -> Result<(), ForcingError> {
        for c in self.constituents.iter().chain(&self.anomaly) {
            c.validate()?;
        }
        if !self.alongshore_lag.is_finite() {
            return Err(ForcingError::NonFiniteParameter {
                name: "alongshore_lag",
                value: self.alongshore_lag,
            });
        }
        if !self.t_origin.is_finite() {
            return Err(ForcingError::NonFiniteParameter {
                name: "t_origin",
                value: self.t_origin,
            });
        }
        Ok(())
    }

    /// Prescribed elevation (m) at boundary position `y` (m along the
    /// boundary) and model time `t` (s).
    pub fn elevation(&self, y: f64, t: f64) -> f64 {
        let tt = t + self.t_origin;
        let mut z = 0.0;
        for c in &self.constituents {
            let omega = std::f64::consts::TAU / c.period;
            z += c.amplitude * (omega * tt - c.phase - self.alongshore_lag * y).cos();
        }
        for c in &self.anomaly {
            let omega = std::f64::consts::TAU / c.period;
            z += c.amplitude * (omega * tt - c.phase).cos();
        }
        z
    }

    /// Largest possible |elevation| (sum of amplitudes).
    pub fn max_elevation(&self) -> f64 {
        self.constituents
            .iter()
            .chain(&self.anomaly)
            .map(|c| c.amplitude)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elevation_bounded_by_amplitude_sum() {
        let f = TidalForcing::for_year(0);
        let bound = f.max_elevation();
        for k in 0..500 {
            let t = k as f64 * 977.0;
            let z = f.elevation(1234.0, t);
            assert!(z.abs() <= bound + 1e-12, "t={t}: {z} vs {bound}");
        }
    }

    #[test]
    fn single_constituent_is_cosine() {
        let f = TidalForcing::single(0.5, 12.0);
        let period = 12.0 * 3600.0;
        assert!((f.elevation(0.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((f.elevation(0.0, period / 2.0) + 0.5).abs() < 1e-9);
        assert!((f.elevation(0.0, period) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn alongshore_lag_shifts_phase() {
        let mut f = TidalForcing::single(1.0, 12.0);
        f.alongshore_lag = 1e-5;
        let z0 = f.elevation(0.0, 0.0);
        let z1 = f.elevation(50_000.0, 0.0);
        assert!((z0 - z1).abs() > 0.05, "lag should shift the wave");
    }

    #[test]
    fn years_differ_but_are_deterministic() {
        let y0a = TidalForcing::for_year(0);
        let y0b = TidalForcing::for_year(0);
        let y1 = TidalForcing::for_year(1);
        let probe = |f: &TidalForcing| {
            (0..50)
                .map(|k| f.elevation(0.0, k as f64 * 3571.0))
                .sum::<f64>()
        };
        assert_eq!(probe(&y0a), probe(&y0b));
        assert!((probe(&y0a) - probe(&y1)).abs() > 1e-6);
    }

    #[test]
    fn none_is_flat() {
        let f = TidalForcing::none();
        assert_eq!(f.elevation(10.0, 99999.0), 0.0);
    }

    #[test]
    fn try_new_rejects_non_finite_amplitude_and_bad_period() {
        assert!(matches!(
            Constituent::try_new(f64::NAN, 12.0, 0.0),
            Err(ForcingError::NonFiniteAmplitude { .. })
        ));
        assert!(matches!(
            Constituent::try_new(f64::INFINITY, 12.0, 0.0),
            Err(ForcingError::NonFiniteAmplitude { .. })
        ));
        assert!(matches!(
            Constituent::try_new(0.3, 0.0, 0.0),
            Err(ForcingError::InvalidPeriod { .. })
        ));
        assert!(matches!(
            Constituent::try_new(0.3, -12.0, 0.0),
            Err(ForcingError::InvalidPeriod { .. })
        ));
        assert!(matches!(
            Constituent::try_new(0.3, f64::NAN, 0.0),
            Err(ForcingError::InvalidPeriod { .. })
        ));
        assert!(matches!(
            Constituent::try_new(0.3, 12.0, f64::NAN),
            Err(ForcingError::NonFinitePhase { .. })
        ));
        let ok = Constituent::try_new(0.3, 12.0, 1.0).unwrap();
        assert_eq!(ok.period, 12.0 * 3600.0);
    }

    #[test]
    #[should_panic(expected = "invalid tidal constituent")]
    fn new_panics_on_invalid_input() {
        let _ = Constituent::new(0.3, -1.0, 0.0);
    }

    #[test]
    fn forcing_validate_catches_polluted_members() {
        let mut f = TidalForcing::for_year(0);
        assert!(f.validate().is_ok());
        f.anomaly.push(Constituent {
            amplitude: f64::NAN,
            period: 3600.0,
            phase: 0.0,
        });
        assert!(matches!(
            f.validate(),
            Err(ForcingError::NonFiniteAmplitude { .. })
        ));
        let mut g = TidalForcing::gulf_default();
        g.constituents[0].period = 0.0;
        assert!(matches!(
            g.validate(),
            Err(ForcingError::InvalidPeriod { .. })
        ));
        let mut h = TidalForcing::gulf_default();
        h.alongshore_lag = f64::NAN;
        match h.validate() {
            Err(ForcingError::NonFiniteParameter { name, .. }) => {
                assert_eq!(name, "alongshore_lag")
            }
            other => panic!("expected NonFiniteParameter, got {other:?}"),
        }
    }
}
