//! MPI-style tiled parallel driver — the "Traditional MPI ROMS" baseline of
//! the paper's Table I, on threads.
//!
//! Each rank owns one tile ([`TileDomain`]), exchanges ζ/ūbar/v̄bar halos
//! every fast step, and computes tile-edge-shared faces redundantly from
//! the exchanged halos, which keeps the tiled run **bit-identical** to the
//! serial one (asserted by tests).

use cgrid::Grid;
use chpc::halo::{recv_halo, send_halo};
use chpc::{run_parallel, Comm, CommStats, Decomp, Side};

use crate::baroclinic::step_baroclinic;
use crate::barotropic::{apply_boundary_halos, step_fast};
use crate::domain::TileDomain;
use crate::model::OceanConfig;
use crate::snapshot::{take_snapshot, Snapshot};
use crate::state::State;

/// Tag bases per exchanged field (direction tags 0..4 are added).
const TAG_ZETA: u64 = 10;
const TAG_UBAR: u64 = 20;
const TAG_VBAR: u64 = 30;
const TAG_GATHER: u64 = 1_000;

/// Exchange ζ, ubar, vbar halos with all neighbors.
fn exchange_state_halos(comm: &Comm, decomp: &Decomp, dom: &TileDomain, state: &mut State) {
    let (ny, nx) = (dom.ny as isize, dom.nx as isize);

    // ζ: interior edge cells -> neighbor halo ring.
    let zeta = &mut state.zeta;
    send_halo(comm, decomp, TAG_ZETA, |side| match side {
        Side::West => zeta.col_strip(0, 0, ny),
        Side::East => zeta.col_strip(nx - 1, 0, ny),
        Side::South => zeta.row_strip(0, 0, nx),
        Side::North => zeta.row_strip(ny - 1, 0, nx),
    });
    recv_halo(comm, decomp, TAG_ZETA, |side, s| match side {
        Side::West => zeta.set_col_strip(-1, 0, &s),
        Side::East => zeta.set_col_strip(nx, 0, &s),
        Side::South => zeta.set_row_strip(-1, 0, &s),
        Side::North => zeta.set_row_strip(ny, 0, &s),
    });

    // ubar on (ny, nx+1) faces: shared edge faces are computed on both
    // sides; halos carry the next interior face column / full face rows.
    let ubar = &mut state.ubar;
    send_halo(comm, decomp, TAG_UBAR, |side| match side {
        Side::West => ubar.col_strip(1, 0, ny),
        Side::East => ubar.col_strip(nx - 1, 0, ny),
        Side::South => ubar.row_strip(0, 0, nx + 1),
        Side::North => ubar.row_strip(ny - 1, 0, nx + 1),
    });
    recv_halo(comm, decomp, TAG_UBAR, |side, s| match side {
        Side::West => ubar.set_col_strip(-1, 0, &s),
        Side::East => ubar.set_col_strip(nx + 1, 0, &s),
        Side::South => ubar.set_row_strip(-1, 0, &s),
        Side::North => ubar.set_row_strip(ny, 0, &s),
    });

    // vbar on (ny+1, nx) faces.
    let vbar = &mut state.vbar;
    send_halo(comm, decomp, TAG_VBAR, |side| match side {
        Side::West => vbar.col_strip(0, 0, ny + 1),
        Side::East => vbar.col_strip(nx - 1, 0, ny + 1),
        Side::South => vbar.row_strip(1, 0, nx),
        Side::North => vbar.row_strip(ny - 1, 0, nx),
    });
    recv_halo(comm, decomp, TAG_VBAR, |side, s| match side {
        Side::West => vbar.set_col_strip(-1, 0, &s),
        Side::East => vbar.set_col_strip(nx, 0, &s),
        Side::South => vbar.set_row_strip(-1, 0, &s),
        Side::North => vbar.set_row_strip(ny + 1, 0, &s),
    });
}

/// Result of a tiled run.
pub struct TiledRun {
    /// Snapshots assembled on rank 0 (empty on other ranks' results).
    pub snapshots: Vec<Snapshot>,
    /// Per-rank communication statistics.
    pub stats: Vec<CommStats>,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
}

/// Run the tiled model on `p` ranks, recording `n_snapshots` every
/// `interval` seconds. Returns globally assembled snapshots.
pub fn run_tiled(
    grid: &Grid,
    cfg: &OceanConfig,
    p: usize,
    n_snapshots: usize,
    interval: f64,
) -> TiledRun {
    let decomp = Decomp::auto(grid.ny, grid.nx, p);
    let per = (interval / cfg.dt_slow()).round() as usize;
    assert!(per >= 1, "interval shorter than a slow step");

    let t0 = std::time::Instant::now();
    let results = run_parallel(p, |comm| {
        let dom = TileDomain::from_grid(grid, decomp.tile(comm.rank()));
        let mut state = State::rest(&dom);
        let mut local_snaps: Vec<Snapshot> = Vec::with_capacity(n_snapshots);

        for _snap in 0..n_snapshots {
            for _slow in 0..per {
                for _fast in 0..cfg.ndtfast {
                    exchange_state_halos(comm, &decomp, &dom, &mut state);
                    apply_boundary_halos(&dom, &mut state, &cfg.forcing);
                    step_fast(&dom, &mut state, &cfg.phys, &cfg.forcing);
                }
                // Refresh interior halos so both owners of a tile-shared
                // face see the post-fast-loop ζ (physical-boundary halos
                // stay as the serial model leaves them: the baroclinic
                // solve must read the same stale ζ_ext serial reads).
                exchange_state_halos(comm, &decomp, &dom, &mut state);
                step_baroclinic(&dom, &mut state, &cfg.phys, cfg.dt_slow());
            }
            local_snaps.push(take_snapshot(&dom, &state));
        }

        // Gather snapshots to rank 0.
        let assembled = gather_snapshots(comm, &decomp, grid, local_snaps);
        (assembled, comm.stats())
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut snapshots = Vec::new();
    let mut stats = Vec::with_capacity(p);
    for (rank_snaps, st) in results {
        if !rank_snaps.is_empty() {
            snapshots = rank_snaps;
        }
        stats.push(st);
    }
    TiledRun {
        snapshots,
        stats,
        wall_seconds,
    }
}

/// Send every tile's snapshot stack to rank 0 and assemble global fields.
fn gather_snapshots(
    comm: &Comm,
    decomp: &Decomp,
    grid: &Grid,
    local: Vec<Snapshot>,
) -> Vec<Snapshot> {
    let nz = grid.sigma.nz;
    if comm.rank() != 0 {
        for (s_idx, snap) in local.iter().enumerate() {
            let tag = TAG_GATHER + s_idx as u64;
            let mut payload = Vec::with_capacity(1 + snap.zeta.len() + 3 * snap.u.len());
            payload.push(snap.time);
            payload.extend(snap.zeta.iter().map(|&v| v as f64));
            payload.extend(snap.u.iter().map(|&v| v as f64));
            payload.extend(snap.v.iter().map(|&v| v as f64));
            payload.extend(snap.w.iter().map(|&v| v as f64));
            comm.send(0, tag, payload);
        }
        return Vec::new();
    }

    let (gny, gnx) = (grid.ny, grid.nx);
    let mut out: Vec<Snapshot> = local
        .iter()
        .map(|s| Snapshot {
            time: s.time,
            nz,
            ny: gny,
            nx: gnx,
            zeta: vec![0.0; gny * gnx],
            u: vec![0.0; nz * gny * gnx],
            v: vec![0.0; nz * gny * gnx],
            w: vec![0.0; nz * gny * gnx],
        })
        .collect();

    // Place rank 0's own tiles.
    let place = |dst: &mut Snapshot,
                 tile: chpc::Tile,
                 src_z: &[f64],
                 src_u: &[f64],
                 src_v: &[f64],
                 src_w: &[f64]| {
        let (tny, tnx) = (tile.ny(), tile.nx());
        for j in 0..tny {
            for i in 0..tnx {
                let g2 = (tile.j0 + j) * gnx + (tile.i0 + i);
                dst.zeta[g2] = src_z[j * tnx + i] as f32;
                for k in 0..nz {
                    let g3 = (k * gny + tile.j0 + j) * gnx + tile.i0 + i;
                    let l3 = (k * tny + j) * tnx + i;
                    dst.u[g3] = src_u[l3] as f32;
                    dst.v[g3] = src_v[l3] as f32;
                    dst.w[g3] = src_w[l3] as f32;
                }
            }
        }
    };

    let own_tile = decomp.tile(0);
    for (s_idx, snap) in local.iter().enumerate() {
        let z: Vec<f64> = snap.zeta.iter().map(|&v| v as f64).collect();
        let u: Vec<f64> = snap.u.iter().map(|&v| v as f64).collect();
        let v: Vec<f64> = snap.v.iter().map(|&v| v as f64).collect();
        let w: Vec<f64> = snap.w.iter().map(|&v| v as f64).collect();
        place(&mut out[s_idx], own_tile, &z, &u, &v, &w);
    }

    for rank in 1..comm.size() {
        let tile = decomp.tile(rank);
        let n2 = tile.cells();
        let n3 = nz * n2;
        for (s_idx, dst) in out.iter_mut().enumerate() {
            let payload = comm.recv(rank, TAG_GATHER + s_idx as u64);
            assert_eq!(payload.len(), 1 + n2 + 3 * n3);
            let z = &payload[1..1 + n2];
            let u = &payload[1 + n2..1 + n2 + n3];
            let v = &payload[1 + n2 + n3..1 + n2 + 2 * n3];
            let w = &payload[1 + n2 + 2 * n3..];
            place(dst, tile, z, u, v, w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcing::TidalForcing;
    use crate::model::Roms;
    use cgrid::{EstuaryParams, GridParams};

    fn grid() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 3,
            ..Default::default()
        })
    }

    fn cfg(grid: &Grid) -> OceanConfig {
        let mut c = OceanConfig::for_grid(grid);
        c.forcing = TidalForcing::single(0.3, 12.0);
        c.ndtfast = 10;
        c
    }

    #[test]
    fn tiled_matches_serial_bitwise() {
        let g = grid();
        let c = cfg(&g);
        let interval = c.dt_slow() * 3.0;

        let mut serial = Roms::new(&g, c.clone());
        let serial_snaps = serial.record(2, interval);

        for p in [2usize, 4] {
            let tiled = run_tiled(&g, &c, p, 2, interval);
            assert_eq!(tiled.snapshots.len(), 2);
            for (a, b) in serial_snaps.iter().zip(&tiled.snapshots) {
                assert_eq!(a.time, b.time);
                assert_eq!(a.zeta, b.zeta, "ζ must be bit-identical at p={p}");
                assert_eq!(a.u, b.u, "u must be bit-identical at p={p}");
                assert_eq!(a.v, b.v, "v must be bit-identical at p={p}");
                assert_eq!(a.w, b.w, "w must be bit-identical at p={p}");
            }
        }
    }

    #[test]
    fn comm_volume_grows_with_ranks() {
        let g = grid();
        let c = cfg(&g);
        let interval = c.dt_slow();
        let r2 = run_tiled(&g, &c, 2, 1, interval);
        let r4 = run_tiled(&g, &c, 4, 1, interval);
        let total2: usize = r2.stats.iter().map(|s| s.doubles_sent).sum();
        let total4: usize = r4.stats.iter().map(|s| s.doubles_sent).sum();
        assert!(
            total4 > total2,
            "more tiles → more halo traffic ({total2} vs {total4})"
        );
    }

    #[test]
    fn single_rank_tiled_equals_serial() {
        let g = grid();
        let c = cfg(&g);
        let interval = c.dt_slow() * 2.0;
        let mut serial = Roms::new(&g, c.clone());
        let s = serial.record(1, interval);
        let t = run_tiled(&g, &c, 1, 1, interval);
        assert_eq!(s[0].zeta, t.snapshots[0].zeta);
    }
}
