//! Serial model driver: split-explicit time stepping and recording.

use cgrid::Grid;

use crate::baroclinic::step_baroclinic;
use crate::barotropic::{apply_boundary_halos, step_fast, PhysParams};
use crate::domain::TileDomain;
use crate::forcing::TidalForcing;
use crate::snapshot::{load_snapshot, take_snapshot, Snapshot};
use crate::state::State;

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct OceanConfig {
    pub phys: PhysParams,
    /// Fast (barotropic) steps per slow (baroclinic) step.
    pub ndtfast: usize,
    pub forcing: TidalForcing,
}

impl Default for OceanConfig {
    fn default() -> Self {
        Self {
            phys: PhysParams::default(),
            ndtfast: 30,
            forcing: TidalForcing::gulf_default(),
        }
    }
}

impl OceanConfig {
    /// Configuration with a CFL-safe fast step for `grid`.
    pub fn for_grid(grid: &Grid) -> Self {
        let mut cfg = Self::default();
        cfg.phys.dt_fast = grid.barotropic_dt(0.6).min(cfg.phys.dt_fast);
        cfg
    }

    /// Slow (baroclinic) step length (s).
    pub fn dt_slow(&self) -> f64 {
        self.phys.dt_fast * self.ndtfast as f64
    }
}

/// The serial split-explicit model (single tile covering the domain).
pub struct Roms {
    pub dom: TileDomain,
    pub state: State,
    pub cfg: OceanConfig,
    /// Count of fast steps taken (diagnostics).
    pub fast_steps: u64,
}

impl Roms {
    pub fn new(grid: &Grid, cfg: OceanConfig) -> Self {
        let dom = TileDomain::whole(grid);
        let state = State::rest(&dom);
        Self {
            dom,
            state,
            cfg,
            fast_steps: 0,
        }
    }

    /// One slow step: `ndtfast` barotropic steps then the baroclinic solve.
    pub fn step_slow(&mut self) {
        for _ in 0..self.cfg.ndtfast {
            apply_boundary_halos(&self.dom, &mut self.state, &self.cfg.forcing);
            step_fast(
                &self.dom,
                &mut self.state,
                &self.cfg.phys,
                &self.cfg.forcing,
            );
            self.fast_steps += 1;
        }
        step_baroclinic(
            &self.dom,
            &mut self.state,
            &self.cfg.phys,
            self.cfg.dt_slow(),
        );
    }

    /// Advance by (at least) `seconds`, in whole slow steps.
    pub fn run_seconds(&mut self, seconds: f64) {
        let steps = (seconds / self.cfg.dt_slow()).ceil() as usize;
        for _ in 0..steps {
            self.step_slow();
        }
    }

    /// Spin up from rest so tidal co-oscillation is established.
    pub fn spinup(&mut self, seconds: f64) {
        self.run_seconds(seconds);
    }

    /// Current state as a cell-centered snapshot.
    pub fn snapshot(&self) -> Snapshot {
        take_snapshot(&self.dom, &self.state)
    }

    /// Replace the model state from a cell-centered snapshot (hybrid
    /// workflow fallback entry point).
    pub fn load(&mut self, snap: &Snapshot) {
        self.state = load_snapshot(&self.dom, snap, &self.cfg.phys);
    }

    /// Record `n` snapshots `interval` seconds apart (the first after one
    /// interval). `interval` must be a multiple of the slow step.
    pub fn record(&mut self, n: usize, interval: f64) -> Vec<Snapshot> {
        let per = (interval / self.cfg.dt_slow()).round() as usize;
        assert!(
            per >= 1 && (per as f64 * self.cfg.dt_slow() - interval).abs() < 1e-6,
            "interval {interval}s must be a multiple of the slow step {}s",
            self.cfg.dt_slow()
        );
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            for _ in 0..per {
                self.step_slow();
            }
            out.push(self.snapshot());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, GridParams};

    fn small_grid() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        })
    }

    #[test]
    fn runs_stable_for_a_tidal_day() {
        let grid = small_grid();
        let mut cfg = OceanConfig::for_grid(&grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let mut model = Roms::new(&grid, cfg);
        model.run_seconds(24.0 * 3600.0);
        assert!(model.state.is_finite());
        assert!(model.state.max_zeta() > 0.02, "tide must penetrate");
        assert!(model.state.max_zeta() < 1.0);
    }

    #[test]
    fn record_produces_evenly_spaced_snapshots() {
        let grid = small_grid();
        let mut cfg = OceanConfig::for_grid(&grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let dt_slow = cfg.dt_slow();
        let interval = dt_slow * 4.0;
        let mut model = Roms::new(&grid, cfg);
        let snaps = model.record(5, interval);
        assert_eq!(snaps.len(), 5);
        for w in snaps.windows(2) {
            assert!((w[1].time - w[0].time - interval).abs() < 1e-6);
        }
    }

    #[test]
    fn snapshots_vary_over_a_tide() {
        let grid = small_grid();
        let mut cfg = OceanConfig::for_grid(&grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let mut model = Roms::new(&grid, cfg);
        model.spinup(6.0 * 3600.0);
        let dt_slow = model.cfg.dt_slow();
        let snaps = model.record(4, dt_slow * 10.0);
        let d = snaps[0].rms_diff(&snaps[3]);
        assert!(d[3] > 1e-3, "ζ must evolve over the tide: {d:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let grid = small_grid();
        let run = || {
            let mut cfg = OceanConfig::for_grid(&grid);
            cfg.forcing = TidalForcing::for_year(0);
            let mut m = Roms::new(&grid, cfg);
            m.run_seconds(3600.0);
            m.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a.zeta, b.zeta);
        assert_eq!(a.u, b.u);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn load_then_continue_stays_stable() {
        let grid = small_grid();
        let mut cfg = OceanConfig::for_grid(&grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let mut model = Roms::new(&grid, cfg.clone());
        model.spinup(4.0 * 3600.0);
        let snap = model.snapshot();

        let mut resumed = Roms::new(&grid, cfg);
        resumed.load(&snap);
        assert!((resumed.state.time - snap.time).abs() < 1e-9);
        resumed.run_seconds(3600.0);
        assert!(resumed.state.is_finite());
        assert!(resumed.state.max_zeta() < 1.0);
    }
}
