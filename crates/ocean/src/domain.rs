//! Tile-local view of the model domain.
//!
//! Every solver kernel operates on a [`TileDomain`]: a tile's interior plus
//! a one-cell halo of grid data. The serial model is the single-tile
//! special case, so serial and MPI-style tiled runs execute the *same*
//! kernel code on the same values — which is what makes the
//! tiled-equals-serial bitwise test meaningful.

use cgrid::{Field2, Grid, SigmaCoords};
use chpc::Tile;

/// A tile's grid data (halo included) plus its position in the domain.
#[derive(Clone, Debug)]
pub struct TileDomain {
    /// Global index ranges of this tile.
    pub tile: Tile,
    /// Local interior size.
    pub ny: usize,
    pub nx: usize,
    /// Vertical layers.
    pub nz: usize,
    /// Depth at rho points, local with halo.
    pub h: Field2,
    /// Masks at rho/u/v points, local with halo.
    pub mask_rho: Field2,
    /// `(ny, nx+1)` — local face `i` is global face `tile.i0 + i`.
    pub mask_u: Field2,
    /// `(ny+1, nx)`.
    pub mask_v: Field2,
    /// Local spacing with halo: `dx[i+1]` is the spacing of local column
    /// `i`; indices 0 and nx+1 hold neighbor/clamped values.
    pub dx: Vec<f64>,
    pub dy: Vec<f64>,
    /// Does the tile touch each physical domain edge?
    pub at_west: bool,
    pub at_east: bool,
    pub at_south: bool,
    pub at_north: bool,
    pub sigma: SigmaCoords,
    pub coriolis: f64,
}

impl TileDomain {
    /// Extract the tile `t` of `grid` (use the full-domain tile for the
    /// serial model).
    pub fn from_grid(grid: &Grid, t: Tile) -> Self {
        let ny = t.ny();
        let nx = t.nx();
        let (gny, gnx) = (grid.ny as isize, grid.nx as isize);

        // Clamped global lookup (global halos replicate edges).
        let gj = |j: isize| (t.j0 as isize + j).clamp(-1, gny);
        let gi = |i: isize| (t.i0 as isize + i).clamp(-1, gnx);

        let mut h = Field2::new(ny, nx);
        let mut mask_rho = Field2::new(ny, nx);
        for j in -1..=(ny as isize) {
            for i in -1..=(nx as isize) {
                h.set(j, i, grid.h.get(gj(j), gi(i)));
                mask_rho.set(j, i, grid.mask_rho.get(gj(j), gi(i)));
            }
        }
        // Face masks: local u face i = global face t.i0 + i, i in 0..=nx;
        // halo faces map to neighbor faces (clamped at domain edge).
        let mut mask_u = Field2::new(ny, nx + 1);
        for j in -1..=(ny as isize) {
            for i in -1..=(nx as isize + 1) {
                let gjj = gj(j).clamp(0, gny - 1);
                let gii = (t.i0 as isize + i).clamp(0, gnx);
                mask_u.set(j, i, grid.mask_u.get(gjj, gii));
            }
        }
        let mut mask_v = Field2::new(ny + 1, nx);
        for j in -1..=(ny as isize + 1) {
            for i in -1..=(nx as isize) {
                let gjj = (t.j0 as isize + j).clamp(0, gny);
                let gii = gi(i).clamp(0, gnx - 1);
                mask_v.set(j, i, grid.mask_v.get(gjj, gii));
            }
        }

        let dx: Vec<f64> = (-1..=(nx as isize))
            .map(|i| grid.dx[gi(i).clamp(0, gnx - 1) as usize])
            .collect();
        let dy: Vec<f64> = (-1..=(ny as isize))
            .map(|j| grid.dy[gj(j).clamp(0, gny - 1) as usize])
            .collect();

        TileDomain {
            tile: t,
            ny,
            nx,
            nz: grid.sigma.nz,
            h,
            mask_rho,
            mask_u,
            mask_v,
            dx,
            dy,
            at_west: t.i0 == 0,
            at_east: t.i1 == grid.nx,
            at_south: t.j0 == 0,
            at_north: t.j1 == grid.ny,
            sigma: grid.sigma.clone(),
            coriolis: grid.coriolis,
        }
    }

    /// Full-domain tile for the serial model.
    pub fn whole(grid: &Grid) -> Self {
        Self::from_grid(
            grid,
            Tile {
                j0: 0,
                j1: grid.ny,
                i0: 0,
                i1: grid.nx,
            },
        )
    }

    /// Spacing of local column `i` (accepts -1..=nx).
    #[inline]
    pub fn dx_at(&self, i: isize) -> f64 {
        self.dx[(i + 1) as usize]
    }

    /// Spacing of local row `j` (accepts -1..=ny).
    #[inline]
    pub fn dy_at(&self, j: isize) -> f64 {
        self.dy[(j + 1) as usize]
    }

    /// Spacing across u face `i` (mean of adjacent columns).
    #[inline]
    pub fn dx_u(&self, i: isize) -> f64 {
        0.5 * (self.dx_at(i - 1) + self.dx_at(i))
    }

    /// Spacing across v face `j`.
    #[inline]
    pub fn dy_v(&self, j: isize) -> f64 {
        0.5 * (self.dy_at(j - 1) + self.dy_at(j))
    }

    /// Depth at u face `i` (mean of adjacent cells via halo).
    #[inline]
    pub fn h_u(&self, j: isize, i: isize) -> f64 {
        0.5 * (self.h.get(j, i - 1) + self.h.get(j, i))
    }

    /// Depth at v face `j`.
    #[inline]
    pub fn h_v(&self, j: isize, i: isize) -> f64 {
        0.5 * (self.h.get(j - 1, i) + self.h.get(j, i))
    }

    /// Global y-coordinate (m) of the center of local row `j` — used by
    /// the tidal forcing's alongshore phase lag. Computed from the global
    /// row index assuming the domain's dy profile, so all tiles agree.
    pub fn global_row(&self, j: isize) -> usize {
        (self.tile.j0 as isize + j).max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, GridParams};

    fn grid() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        })
    }

    #[test]
    fn whole_domain_matches_grid() {
        let g = grid();
        let d = TileDomain::whole(&g);
        assert_eq!((d.ny, d.nx), (24, 20));
        assert!(d.at_west && d.at_east && d.at_south && d.at_north);
        for j in 0..24isize {
            for i in 0..20isize {
                assert_eq!(d.h.get(j, i), g.h.get(j, i));
                assert_eq!(d.mask_rho.get(j, i), g.mask_rho.get(j, i));
            }
        }
    }

    #[test]
    fn tile_halo_holds_neighbor_values() {
        let g = grid();
        let decomp = chpc::Decomp::with_grid(24, 20, 2, 2);
        let d0 = TileDomain::from_grid(&g, decomp.tile(0)); // south-west
                                                            // d0 east halo column = global column i1.
        let t = decomp.tile(0);
        for j in 0..t.ny() as isize {
            assert_eq!(
                d0.h.get(j, t.nx() as isize),
                g.h.get(t.j0 as isize + j, t.i1 as isize),
                "east halo must hold the neighbor's first column"
            );
        }
        assert!(d0.at_west && d0.at_south);
        assert!(!d0.at_east && !d0.at_north);
    }

    #[test]
    fn face_metrics_symmetric() {
        let g = grid();
        let d = TileDomain::whole(&g);
        // Interior u face spacing is mean of adjacent columns.
        assert!((d.dx_u(5) - 0.5 * (d.dx_at(4) + d.dx_at(5))).abs() < 1e-12);
        // Depth at face consistent with grid helper.
        let j = 10;
        let i = 6;
        assert!((d.h_u(j, i) - g.h_u(j, i)).abs() < 1e-12);
    }

    #[test]
    fn tiles_cover_grid_consistently() {
        let g = grid();
        let decomp = chpc::Decomp::with_grid(24, 20, 2, 2);
        // Every tile's interior values match the global grid.
        for r in 0..decomp.size() {
            let t = decomp.tile(r);
            let d = TileDomain::from_grid(&g, t);
            for j in 0..t.ny() as isize {
                for i in 0..t.nx() as isize {
                    let (gj, gi) = (t.j0 as isize + j, t.i0 as isize + i);
                    assert_eq!(d.h.get(j, i), g.h.get(gj, gi));
                    assert_eq!(d.mask_u.get(j, i), g.mask_u.get(gj, gi));
                }
            }
        }
    }
}
