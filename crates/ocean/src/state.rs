//! Prognostic model state on one tile.

use cgrid::{Field2, Field3};

use crate::domain::TileDomain;

/// Free surface, barotropic and baroclinic velocities, and diagnosed
/// vertical velocity for one tile (staggered, halo-padded).
#[derive(Clone, Debug)]
pub struct State {
    /// Free surface elevation at rho points (m).
    pub zeta: Field2,
    /// Depth-averaged u at u faces, `(ny, nx+1)`.
    pub ubar: Field2,
    /// Depth-averaged v at v faces, `(ny+1, nx)`.
    pub vbar: Field2,
    /// Layer u at u faces, `(nz, ny, nx+1)`, bottom-up.
    pub u: Field3,
    /// Layer v at v faces, `(nz, ny+1, nx)`.
    pub v: Field3,
    /// Vertical velocity at layer interfaces, `(nz+1, ny, nx)`;
    /// `w[0]` = bottom (0 by kinematics), `w[nz]` = surface.
    pub w: Field3,
    /// Model time (s).
    pub time: f64,
    // Double buffers reused every fast step (never allocated in the loop).
    pub(crate) zeta_next: Field2,
    pub(crate) ubar_next: Field2,
    pub(crate) vbar_next: Field2,
}

impl State {
    /// At-rest state (ζ = 0, velocities 0).
    pub fn rest(dom: &TileDomain) -> Self {
        let (ny, nx, nz) = (dom.ny, dom.nx, dom.nz);
        Self {
            zeta: Field2::new(ny, nx),
            ubar: Field2::new(ny, nx + 1),
            vbar: Field2::new(ny + 1, nx),
            u: Field3::new(nz, ny, nx + 1),
            v: Field3::new(nz, ny + 1, nx),
            w: Field3::new(nz + 1, ny, nx),
            time: 0.0,
            zeta_next: Field2::new(ny, nx),
            ubar_next: Field2::new(ny, nx + 1),
            vbar_next: Field2::new(ny + 1, nx),
        }
    }

    /// Total water volume over the tile interior (m³): Σ (h+ζ)·area.
    pub fn volume(&self, dom: &TileDomain) -> f64 {
        let mut vol = 0.0;
        for j in 0..dom.ny as isize {
            for i in 0..dom.nx as isize {
                if dom.mask_rho.get(j, i) > 0.5 {
                    vol += (dom.h.get(j, i) + self.zeta.get(j, i)) * dom.dx_at(i) * dom.dy_at(j);
                }
            }
        }
        vol
    }

    /// Maximum |ζ| on the interior (diagnostic / blow-up detection).
    pub fn max_zeta(&self) -> f64 {
        self.zeta.max_abs()
    }

    /// Maximum |ubar|, |vbar|.
    pub fn max_speed(&self) -> f64 {
        self.ubar.max_abs().max(self.vbar.max_abs())
    }

    /// True when every prognostic value is finite (blow-up check).
    pub fn is_finite(&self) -> bool {
        let ok2 = |f: &Field2| f.raw().iter().all(|v| v.is_finite());
        let ok3 = |f: &Field3| (0..f.nz()).all(|k| f.layer(k).raw().iter().all(|v| v.is_finite()));
        ok2(&self.zeta)
            && ok2(&self.ubar)
            && ok2(&self.vbar)
            && ok3(&self.u)
            && ok3(&self.v)
            && ok3(&self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, Grid, GridParams};

    fn dom() -> TileDomain {
        let g = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        });
        TileDomain::whole(&g)
    }

    #[test]
    fn rest_state_zeroed() {
        let d = dom();
        let s = State::rest(&d);
        assert_eq!(s.max_zeta(), 0.0);
        assert_eq!(s.max_speed(), 0.0);
        assert!(s.is_finite());
    }

    #[test]
    fn volume_positive_and_tracks_zeta() {
        let d = dom();
        let mut s = State::rest(&d);
        let v0 = s.volume(&d);
        assert!(v0 > 0.0);
        // Raise the surface uniformly by 0.1 m on wet cells.
        let mut wet_area = 0.0;
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                if d.mask_rho.get(j, i) > 0.5 {
                    s.zeta.set(j, i, 0.1);
                    wet_area += d.dx_at(i) * d.dy_at(j);
                }
            }
        }
        let v1 = s.volume(&d);
        assert!((v1 - v0 - 0.1 * wet_area).abs() < 1e-6 * v0);
    }

    #[test]
    fn nonfinite_detected() {
        let d = dom();
        let mut s = State::rest(&d);
        s.zeta.set(3, 3, f64::NAN);
        assert!(!s.is_finite());
    }
}
