//! Barotropic (depth-averaged) fast mode: forward-backward shallow-water
//! step with Flather/Chapman open boundaries, quadratic bottom drag,
//! Coriolis and horizontal eddy viscosity.
//!
//! One implementation serves both the serial model (a single tile covering
//! the domain) and the MPI-style tiled model; shared faces between tiles
//! are computed redundantly from exchanged halos, which keeps the two
//! bit-identical without extra communication.

use crate::domain::TileDomain;
use crate::forcing::TidalForcing;
use crate::state::State;

/// Gravitational acceleration (m/s²).
pub const G: f64 = 9.81;

/// Physical/numerical parameters of the solver.
#[derive(Clone, Copy, Debug)]
pub struct PhysParams {
    /// Barotropic time step (s).
    pub dt_fast: f64,
    /// Quadratic bottom drag coefficient.
    pub drag_cd: f64,
    /// Horizontal eddy viscosity (m²/s).
    pub visc: f64,
    /// Vertical eddy viscosity (m²/s) for the baroclinic mode.
    pub kv: f64,
    /// Minimum total depth (m) guarding division in drying cells.
    pub min_depth: f64,
}

impl Default for PhysParams {
    fn default() -> Self {
        Self {
            dt_fast: 10.0,
            drag_cd: 2.5e-3,
            visc: 2.0,
            kv: 0.02,
            min_depth: 0.1,
        }
    }
}

/// Fill physical-boundary halos: Chapman-style clamped ζ on the open west
/// boundary, zero-gradient elsewhere. Tiled runs call this *after* the
/// neighbor exchange so only true domain edges are touched.
pub fn apply_boundary_halos(dom: &TileDomain, state: &mut State, forcing: &TidalForcing) {
    let (ny, nx) = (dom.ny as isize, dom.nx as isize);
    let t = state.time;
    if dom.at_west {
        // y-coordinate of each row accumulated from dy (global, so every
        // tile along the boundary agrees).
        for j in 0..ny {
            let y = row_y(dom, j);
            let z_ext = forcing.elevation(y, t);
            state.zeta.set(j, -1, z_ext);
            state.ubar.set(j, -1, state.ubar.get(j, 0));
        }
        // vbar has ny+1 face rows — the top shared/boundary face included
        // (a tiled run reads its west halo through the Laplacian stencil).
        for j in 0..=ny {
            state.vbar.set(j, -1, state.vbar.get(j, 0));
        }
    }
    if dom.at_east {
        for j in 0..ny {
            state.zeta.set(j, nx, state.zeta.get(j, nx - 1));
            state.ubar.set(j, nx + 1, state.ubar.get(j, nx));
        }
        for j in 0..=ny {
            state.vbar.set(j, nx, state.vbar.get(j, nx - 1));
        }
    }
    if dom.at_south {
        for i in -1..=nx {
            state.zeta.set(-1, i, state.zeta.get(0, i));
            if i <= nx {
                state.ubar.set(-1, i, state.ubar.get(0, i));
            }
            state
                .vbar
                .set(-1, i.min(nx - 1), state.vbar.get(0, i.min(nx - 1)));
        }
        state.ubar.set(-1, nx + 1, state.ubar.get(0, nx + 1));
    }
    if dom.at_north {
        for i in -1..=nx {
            state.zeta.set(ny, i, state.zeta.get(ny - 1, i));
            if i <= nx {
                state.ubar.set(ny, i, state.ubar.get(ny - 1, i));
            }
            state
                .vbar
                .set(ny + 1, i.min(nx - 1), state.vbar.get(ny, i.min(nx - 1)));
        }
        state.ubar.set(ny, nx + 1, state.ubar.get(ny - 1, nx + 1));
    }
}

/// Global y (m) of the center of local row `j`, from the tile's dy profile.
/// Rows below the tile are approximated with the tile's mean spacing —
/// only the *relative* lag along a tile matters at our lag magnitudes, and
/// tiles agree on overlaps because the global row index anchors the sum.
#[inline]
pub fn row_y(dom: &TileDomain, j: isize) -> f64 {
    let grow = dom.global_row(j) as f64;
    grow * dom.dy_at(j)
}

/// One forward-backward barotropic step: momentum (with old ζ), then
/// continuity (with new velocities). Reads/writes `state` in place,
/// advancing `state.time` by `dt_fast`.
pub fn step_fast(dom: &TileDomain, state: &mut State, phys: &PhysParams, forcing: &TidalForcing) {
    let (ny, nx) = (dom.ny as isize, dom.nx as isize);
    let dt = phys.dt_fast;
    let f_cor = dom.coriolis;
    let t = state.time;

    // ---------------------------------------------------------- u momentum
    for j in 0..ny {
        for i in 0..=nx {
            let masked = dom.mask_u.get(j, i) < 0.5;
            let new_u = if masked {
                0.0
            } else if i == 0 && dom.at_west {
                // Flather radiation with an incoming progressive wave.
                let y = row_y(dom, j);
                let z_ext = forcing.elevation(y, t);
                let h_face = dom.h_u(j, i).max(phys.min_depth);
                let c = (G / h_face).sqrt();
                let z_here = state.zeta.get(j, 0);
                z_ext * c - c * (z_here - z_ext)
            } else if (i == nx && dom.at_east) || dom.mask_u.get(j, i) < 0.5 {
                0.0 // closed wall
            } else {
                let zw = state.zeta.get(j, i - 1);
                let ze = state.zeta.get(j, i);
                let pgrad = -G * (ze - zw) / dom.dx_u(i);

                let v_avg = 0.25
                    * (state.vbar.get(j, i - 1)
                        + state.vbar.get(j, i)
                        + state.vbar.get(j + 1, i - 1)
                        + state.vbar.get(j + 1, i));
                let cor = f_cor * v_avg;

                let uc = state.ubar.get(j, i);
                // Free-slip Laplacian: land neighbors mirror the center.
                let pick_u = |jj: isize, ii: isize| {
                    if dom.mask_u.get(jj, ii) > 0.5 {
                        state.ubar.get(jj, ii)
                    } else {
                        uc
                    }
                };
                let dx2 = dom.dx_u(i) * dom.dx_u(i);
                let dy2 = dom.dy_at(j) * dom.dy_at(j);
                let visc = phys.visc
                    * ((pick_u(j, i - 1) - 2.0 * uc + pick_u(j, i + 1)) / dx2
                        + (pick_u(j - 1, i) - 2.0 * uc + pick_u(j + 1, i)) / dy2);

                let depth = (dom.h_u(j, i) + 0.5 * (zw + ze)).max(phys.min_depth);
                let explicit = uc + dt * (pgrad + cor + visc);
                // Semi-implicit quadratic drag for stability in shallows.
                explicit / (1.0 + dt * phys.drag_cd * uc.abs() / depth)
            };
            state.ubar_next.set(j, i, new_u);
        }
    }

    // ---------------------------------------------------------- v momentum
    for j in 0..=ny {
        for i in 0..nx {
            let masked = dom.mask_v.get(j, i) < 0.5;
            let new_v = if masked || (j == 0 && dom.at_south) || (j == ny && dom.at_north) {
                0.0
            } else {
                let zs = state.zeta.get(j - 1, i);
                let zn = state.zeta.get(j, i);
                let pgrad = -G * (zn - zs) / dom.dy_v(j);

                let u_avg = 0.25
                    * (state.ubar.get(j - 1, i)
                        + state.ubar.get(j - 1, i + 1)
                        + state.ubar.get(j, i)
                        + state.ubar.get(j, i + 1));
                let cor = -f_cor * u_avg;

                let vc = state.vbar.get(j, i);
                let pick_v = |jj: isize, ii: isize| {
                    if dom.mask_v.get(jj, ii) > 0.5 {
                        state.vbar.get(jj, ii)
                    } else {
                        vc
                    }
                };
                let dx2 = dom.dx_at(i) * dom.dx_at(i);
                let dy2 = dom.dy_v(j) * dom.dy_v(j);
                let visc = phys.visc
                    * ((pick_v(j, i - 1) - 2.0 * vc + pick_v(j, i + 1)) / dx2
                        + (pick_v(j - 1, i) - 2.0 * vc + pick_v(j + 1, i)) / dy2);

                let depth = (dom.h_v(j, i) + 0.5 * (zs + zn)).max(phys.min_depth);
                let explicit = vc + dt * (pgrad + cor + visc);
                explicit / (1.0 + dt * phys.drag_cd * vc.abs() / depth)
            };
            state.vbar_next.set(j, i, new_v);
        }
    }

    // --------------------------------------------------------- continuity
    // Face depths use the OLD ζ (shared through halos), new velocities —
    // the "backward" half of forward-backward.
    for j in 0..ny {
        for i in 0..nx {
            if dom.mask_rho.get(j, i) < 0.5 {
                state.zeta_next.set(j, i, 0.0);
                continue;
            }
            let d = |jj: isize, ii: isize| dom.h.get(jj, ii) + state.zeta.get(jj, ii);

            // Wetting/drying guard: face depths never go below min_depth
            // (ROMS uses dedicated wet/dry masking; the clamp is the
            // simplest stable equivalent and only bites in near-dry
            // cells on the shallow eastern flats).
            let hu_w = (0.5 * (d(j, i - 1) + d(j, i))).max(phys.min_depth);
            let hu_e = (0.5 * (d(j, i) + d(j, i + 1))).max(phys.min_depth);
            let hv_s = (0.5 * (d(j - 1, i) + d(j, i))).max(phys.min_depth);
            let hv_n = (0.5 * (d(j, i) + d(j + 1, i))).max(phys.min_depth);

            let flux_w = hu_w * state.ubar_next.get(j, i) * dom.dy_at(j);
            let flux_e = hu_e * state.ubar_next.get(j, i + 1) * dom.dy_at(j);
            let flux_s = hv_s * state.vbar_next.get(j, i) * dom.dx_at(i);
            let flux_n = hv_n * state.vbar_next.get(j + 1, i) * dom.dx_at(i);

            let area = dom.dx_at(i) * dom.dy_at(j);
            let dzdt = -(flux_e - flux_w + flux_n - flux_s) / area;
            state.zeta_next.set(j, i, state.zeta.get(j, i) + dt * dzdt);
        }
    }

    std::mem::swap(&mut state.zeta, &mut state.zeta_next);
    std::mem::swap(&mut state.ubar, &mut state.ubar_next);
    std::mem::swap(&mut state.vbar, &mut state.vbar_next);
    state.time += dt;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, Grid, GridParams};

    fn estuary_dom(ny: usize, nx: usize) -> TileDomain {
        let g = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny,
                nx,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        });
        TileDomain::whole(&g)
    }

    fn run_steps(
        dom: &TileDomain,
        state: &mut State,
        phys: &PhysParams,
        forcing: &TidalForcing,
        n: usize,
    ) {
        for _ in 0..n {
            apply_boundary_halos(dom, state, forcing);
            step_fast(dom, state, phys, forcing);
        }
    }

    #[test]
    fn rest_stays_at_rest_without_forcing() {
        let dom = estuary_dom(32, 24);
        let mut s = State::rest(&dom);
        let phys = PhysParams::default();
        run_steps(&dom, &mut s, &phys, &TidalForcing::none(), 50);
        assert_eq!(s.max_zeta(), 0.0, "no forcing must leave rest untouched");
        assert_eq!(s.max_speed(), 0.0);
    }

    #[test]
    fn tide_enters_and_stays_stable() {
        let dom = estuary_dom(32, 24);
        let mut s = State::rest(&dom);
        let phys = PhysParams {
            dt_fast: 5.0,
            ..Default::default()
        };
        let forcing = TidalForcing::single(0.3, 12.0);
        // Two hours of tide.
        let steps = (2.0 * 3600.0 / phys.dt_fast) as usize;
        run_steps(&dom, &mut s, &phys, &forcing, steps);
        assert!(s.is_finite(), "solver must stay finite");
        let zmax = s.max_zeta();
        assert!(zmax > 0.01, "tide should have entered: max ζ = {zmax}");
        assert!(zmax < 1.0, "ζ must stay bounded by forcing scale: {zmax}");
        assert!(s.max_speed() < 3.0, "currents must stay physical");
    }

    #[test]
    fn land_cells_stay_dry() {
        let dom = estuary_dom(32, 24);
        let mut s = State::rest(&dom);
        let phys = PhysParams {
            dt_fast: 5.0,
            ..Default::default()
        };
        let forcing = TidalForcing::single(0.3, 12.0);
        run_steps(&dom, &mut s, &phys, &forcing, 500);
        for j in 0..dom.ny as isize {
            for i in 0..dom.nx as isize {
                if dom.mask_rho.get(j, i) < 0.5 {
                    assert_eq!(s.zeta.get(j, i), 0.0, "land ζ at ({j},{i})");
                }
            }
        }
        for j in 0..dom.ny as isize {
            for i in 0..=(dom.nx as isize) {
                if dom.mask_u.get(j, i) < 0.5 {
                    assert_eq!(s.ubar.get(j, i), 0.0, "land u at ({j},{i})");
                }
            }
        }
    }

    #[test]
    fn interior_mass_is_conserved_between_boundary_fluxes() {
        // With closed walls everywhere (forcing none, Flather sees z_ext=0
        // but we start at rest → no flux), volume is exactly constant.
        let dom = estuary_dom(24, 20);
        let mut s = State::rest(&dom);
        let phys = PhysParams::default();
        let v0 = s.volume(&dom);
        run_steps(&dom, &mut s, &phys, &TidalForcing::none(), 100);
        let v1 = s.volume(&dom);
        assert!(((v1 - v0) / v0).abs() < 1e-12);
    }

    #[test]
    fn seiche_oscillates_and_decays() {
        // Initialize a tilted surface in the estuary; it must slosh and
        // (with drag) decay, never grow.
        let dom = estuary_dom(32, 24);
        let mut s = State::rest(&dom);
        for j in 0..dom.ny as isize {
            for i in 0..dom.nx as isize {
                if dom.mask_rho.get(j, i) > 0.5 {
                    let x = i as f64 / dom.nx as f64;
                    s.zeta.set(j, i, 0.05 * (x - 0.5));
                }
            }
        }
        let phys = PhysParams {
            dt_fast: 5.0,
            ..Default::default()
        };
        let z0 = s.max_zeta();
        run_steps(&dom, &mut s, &phys, &TidalForcing::none(), 2000);
        assert!(s.is_finite());
        assert!(
            s.max_zeta() < 2.0 * z0,
            "free oscillation must not grow: {} vs {z0}",
            s.max_zeta()
        );
    }

    #[test]
    fn gravity_wave_speed_matches_theory() {
        // Flat closed channel: a hump splits into two waves traveling at
        // c = sqrt(g h). Build a custom flat domain via a deep estuary
        // config and measure arrival time at a probe.
        let g = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 16,
                nx: 64,
                ocean_depth: 10.0,
                estuary_depth: 10.0,
                channel_depth: 10.0,
                barrier_pos: 0.9, // push the barrier out of the way
                n_inlets: 5,
                inlet_halfwidth: 8,
                ..Default::default()
            },
            base_spacing: 500.0,
            refine_factor: 1.0, // uniform spacing
            nz: 2,
            ..Default::default()
        });
        let dom = TileDomain::whole(&g);
        let mut s = State::rest(&dom);
        // Gaussian hump centered at i=16.
        for j in 0..dom.ny as isize {
            for i in 0..dom.nx as isize {
                if dom.mask_rho.get(j, i) > 0.5 {
                    let d = (i as f64 - 16.0) / 3.0;
                    s.zeta.set(j, i, 0.01 * (-d * d).exp());
                }
            }
        }
        let phys = PhysParams {
            dt_fast: 2.0,
            drag_cd: 0.0,
            visc: 0.0,
            ..Default::default()
        };
        let probe_i = 40isize;
        let probe_j = (dom.ny / 2) as isize;
        let c = (G * 10.0f64).sqrt(); // ≈ 9.9 m/s
        let distance = (probe_i - 16) as f64 * 500.0;
        let expect_t = distance / c; // ≈ 1212 s
        let mut arrival = None;
        let mut t = 0.0;
        for _ in 0..2000 {
            apply_boundary_halos(&dom, &mut s, &TidalForcing::none());
            step_fast(&dom, &mut s, &phys, &TidalForcing::none());
            t += phys.dt_fast;
            if arrival.is_none() && s.zeta.get(probe_j, probe_i) > 0.002 {
                arrival = Some(t);
                break;
            }
        }
        let arrival = arrival.expect("wave never arrived");
        assert!(
            (arrival - expect_t).abs() < 0.35 * expect_t,
            "arrival {arrival} vs theory {expect_t}"
        );
    }
}
