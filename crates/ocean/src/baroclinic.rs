//! Baroclinic (3-D) slow mode: vertical shear under implicit vertical
//! viscosity with quadratic bottom drag, barotropic-mode coupling, and
//! diagnosis of the vertical velocity from continuity.
//!
//! The surrogate's target regime is homogeneous-density tidal propagation,
//! so there is no baroclinic pressure gradient; the 3-D fields carry the
//! vertical structure (bottom boundary layer shear) the paper's `u, v, w`
//! variables exhibit, and the depth mean is constrained to the barotropic
//! solution after every solve (ROMS-style mode coupling).

use crate::barotropic::PhysParams;
use crate::domain::TileDomain;
use crate::state::State;

/// Solve the tridiagonal system `a[k]·x[k-1] + b[k]·x[k] + c[k]·x[k+1] =
/// d[k]` (Thomas algorithm). `a[0]` and `c[n-1]` are ignored.
pub fn solve_tridiag(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = d.len();
    debug_assert!(a.len() == n && b.len() == n && c.len() == n);
    let mut cp = vec![0.0; n];
    let mut denom = b[0];
    assert!(denom.abs() > 1e-300, "singular tridiagonal system");
    cp[0] = c[0] / denom;
    d[0] /= denom;
    for k in 1..n {
        denom = b[k] - a[k] * cp[k - 1];
        assert!(denom.abs() > 1e-300, "singular tridiagonal system");
        cp[k] = c[k] / denom;
        d[k] = (d[k] - a[k] * d[k - 1]) / denom;
    }
    for k in (0..n - 1).rev() {
        d[k] -= cp[k] * d[k + 1];
    }
}

/// Implicit vertical viscosity solve for one velocity column.
///
/// `(I - dt ∂z Kv ∂z) u_new = u_old`, with linearized quadratic drag at the
/// bottom (`Kv ∂z u = Cd |u_b| u_b`) and zero stress at the surface.
/// `dz[k]` are layer thicknesses bottom-up. Returns the new profile in
/// place.
pub fn vertical_solve(u: &mut [f64], dz: &[f64], kv: f64, cd: f64, dt: f64) {
    let n = u.len();
    debug_assert_eq!(dz.len(), n);
    if n == 1 {
        // Single layer: only bottom drag (already applied in barotropic).
        return;
    }
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    let mut c = vec![0.0; n];
    for k in 0..n {
        // Interface diffusivities divided by interface spacing.
        let flux_dn = if k > 0 {
            kv / (0.5 * (dz[k - 1] + dz[k]))
        } else {
            0.0
        };
        let flux_up = if k + 1 < n {
            kv / (0.5 * (dz[k] + dz[k + 1]))
        } else {
            0.0
        };
        a[k] = -dt * flux_dn / dz[k];
        c[k] = -dt * flux_up / dz[k];
        b[k] = 1.0 - a[k] - c[k];
    }
    // Linearized bottom drag sink on the bottom layer.
    b[0] += dt * cd * u[0].abs() / dz[0];
    solve_tridiag(&a, &b, &c, u);
}

/// One baroclinic step over the tile: vertical solves for every wet face
/// column, then barotropic-mode correction. `dt_slow` is the slow step.
pub fn step_baroclinic(dom: &TileDomain, state: &mut State, phys: &PhysParams, dt_slow: f64) {
    let (ny, nx, nz) = (dom.ny as isize, dom.nx as isize, dom.nz);
    let sigma = &dom.sigma;
    let mut col = vec![0.0f64; nz];
    let mut dz = vec![0.0f64; nz];

    // ------------------------------------------------------------ u columns
    for j in 0..ny {
        for i in 0..=nx {
            if dom.mask_u.get(j, i) < 0.5 {
                for k in 0..nz {
                    state.u.set(k, j, i, 0.0);
                }
                continue;
            }
            let zeta_f = 0.5 * (state.zeta.get(j, i - 1) + state.zeta.get(j, i));
            let h_f = dom.h_u(j, i);
            let depth = (h_f + zeta_f).max(phys.min_depth);
            for k in 0..nz {
                col[k] = state.u.get(k, j, i);
                dz[k] = sigma.dz(k, h_f, zeta_f).max(phys.min_depth / nz as f64);
            }
            vertical_solve(&mut col, &dz, phys.kv, phys.drag_cd, dt_slow);
            // Mode coupling: replace the depth mean with ubar.
            let mean: f64 = col.iter().zip(&dz).map(|(u, d)| u * d).sum::<f64>() / depth;
            let shift = state.ubar.get(j, i) - mean;
            for (k, &cu) in col.iter().enumerate().take(nz) {
                state.u.set(k, j, i, cu + shift);
            }
        }
    }

    // ------------------------------------------------------------ v columns
    for j in 0..=ny {
        for i in 0..nx {
            if dom.mask_v.get(j, i) < 0.5 {
                for k in 0..nz {
                    state.v.set(k, j, i, 0.0);
                }
                continue;
            }
            let zeta_f = 0.5 * (state.zeta.get(j - 1, i) + state.zeta.get(j, i));
            let h_f = dom.h_v(j, i);
            let depth = (h_f + zeta_f).max(phys.min_depth);
            for k in 0..nz {
                col[k] = state.v.get(k, j, i);
                dz[k] = sigma.dz(k, h_f, zeta_f).max(phys.min_depth / nz as f64);
            }
            vertical_solve(&mut col, &dz, phys.kv, phys.drag_cd, dt_slow);
            let mean: f64 = col.iter().zip(&dz).map(|(v, d)| v * d).sum::<f64>() / depth;
            let shift = state.vbar.get(j, i) - mean;
            for (k, &cv) in col.iter().enumerate().take(nz) {
                state.v.set(k, j, i, cv + shift);
            }
        }
    }

    diagnose_w(dom, state, phys);
}

/// Integrate continuity upward to diagnose w at layer interfaces:
/// `w[k+1] = w[k] - dz_k · div_h(u_k, v_k)`, `w[0] = 0` at the bottom.
pub fn diagnose_w(dom: &TileDomain, state: &mut State, phys: &PhysParams) {
    let (ny, nx, nz) = (dom.ny as isize, dom.nx as isize, dom.nz);
    let sigma = &dom.sigma;
    for j in 0..ny {
        for i in 0..nx {
            if dom.mask_rho.get(j, i) < 0.5 {
                for k in 0..=nz {
                    state.w.set(k, j, i, 0.0);
                }
                continue;
            }
            let area = dom.dx_at(i) * dom.dy_at(j);
            let mut w = 0.0;
            state.w.set(0, j, i, 0.0);
            for k in 0..nz {
                // Layer thicknesses at the four faces.
                let zw = state.zeta.get(j, i);
                let dz_w = sigma.dz(k, dom.h_u(j, i), 0.5 * (state.zeta.get(j, i - 1) + zw));
                let dz_e = sigma.dz(k, dom.h_u(j, i + 1), 0.5 * (zw + state.zeta.get(j, i + 1)));
                let dz_s = sigma.dz(k, dom.h_v(j, i), 0.5 * (state.zeta.get(j - 1, i) + zw));
                let dz_n = sigma.dz(k, dom.h_v(j + 1, i), 0.5 * (zw + state.zeta.get(j + 1, i)));
                let flux = state.u.get(k, j, i + 1) * dz_e * dom.dy_at(j)
                    - state.u.get(k, j, i) * dz_w * dom.dy_at(j)
                    + state.v.get(k, j + 1, i) * dz_n * dom.dx_at(i)
                    - state.v.get(k, j, i) * dz_s * dom.dx_at(i);
                w -= flux / area;
                state.w.set(k + 1, j, i, w);
            }
            let _ = phys;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barotropic::{apply_boundary_halos, step_fast};
    use crate::forcing::TidalForcing;
    use cgrid::{EstuaryParams, Grid, GridParams};

    #[test]
    fn tridiag_solves_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3]
        let a = vec![0.0, 1.0, 1.0];
        let b = vec![2.0, 2.0, 2.0];
        let c = vec![1.0, 1.0, 0.0];
        let mut d = vec![4.0, 8.0, 8.0];
        solve_tridiag(&a, &b, &c, &mut d);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 2.0).abs() < 1e-12);
        assert!((d[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tridiag_identity() {
        let n = 8;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let mut d: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let expect = d.clone();
        solve_tridiag(&a, &b, &c, &mut d);
        for (x, e) in d.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-12);
        }
    }

    #[test]
    fn vertical_solve_conserves_momentum_without_drag() {
        // Pure diffusion with no drag conserves Σ u·dz.
        let mut u = vec![0.1, 0.3, 0.6, 0.2];
        let dz = vec![1.0, 1.0, 1.0, 1.0];
        let before: f64 = u.iter().zip(&dz).map(|(a, b)| a * b).sum();
        vertical_solve(&mut u, &dz, 0.05, 0.0, 300.0);
        let after: f64 = u.iter().zip(&dz).map(|(a, b)| a * b).sum();
        assert!((before - after).abs() < 1e-10, "{before} vs {after}");
    }

    #[test]
    fn vertical_solve_smooths_profile() {
        let mut u = vec![0.0, 1.0, 0.0, 1.0];
        vertical_solve(&mut u, &[1.0; 4], 0.1, 0.0, 500.0);
        // Large diffusion number flattens the zig-zag.
        let spread = u.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - u.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.5, "profile should smooth, spread={spread}");
    }

    #[test]
    fn bottom_drag_slows_bottom_layer() {
        let mut u = vec![0.5; 5];
        vertical_solve(&mut u, &[1.0; 5], 0.01, 5e-3, 600.0);
        assert!(u[0] < u[4], "bottom must lag under drag: {u:?}");
        assert!(u[4] <= 0.5 + 1e-12);
    }

    fn tidal_spinup() -> (TileDomain, State, PhysParams) {
        let g = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 6,
            ..Default::default()
        });
        let dom = TileDomain::whole(&g);
        let mut s = State::rest(&dom);
        let phys = PhysParams {
            dt_fast: 5.0,
            ..Default::default()
        };
        let forcing = TidalForcing::single(0.3, 12.0);
        // One hour with slow steps every 30 fast steps.
        for step in 0..720 {
            apply_boundary_halos(&dom, &mut s, &forcing);
            step_fast(&dom, &mut s, &phys, &forcing);
            if step % 30 == 29 {
                step_baroclinic(&dom, &mut s, &phys, 30.0 * phys.dt_fast);
            }
        }
        (dom, s, phys)
    }

    #[test]
    fn depth_mean_matches_ubar_after_coupling() {
        let (dom, s, phys) = tidal_spinup();
        let sigma = &dom.sigma;
        let mut checked = 0;
        for j in 0..dom.ny as isize {
            for i in 0..=(dom.nx as isize) {
                if dom.mask_u.get(j, i) < 0.5 {
                    continue;
                }
                let zeta_f = 0.5 * (s.zeta.get(j, i - 1) + s.zeta.get(j, i));
                let h_f = dom.h_u(j, i);
                let depth = (h_f + zeta_f).max(phys.min_depth);
                let mean: f64 = (0..dom.nz)
                    .map(|k| s.u.get(k, j, i) * sigma.dz(k, h_f, zeta_f))
                    .sum::<f64>()
                    / depth;
                assert!(
                    (mean - s.ubar.get(j, i)).abs() < 1e-10,
                    "({j},{i}): mean {mean} vs ubar {}",
                    s.ubar.get(j, i)
                );
                checked += 1;
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn shear_develops_with_bottom_drag() {
        // Bottom speed, *time-averaged over a tidal stretch*, must lag the
        // surface speed in a deep channel (instantaneous profiles can
        // invert during flow reversal — tidal boundary layers lead in
        // phase — so only the average is a robust check).
        let (dom, mut s, phys) = tidal_spinup();
        let forcing = TidalForcing::single(0.3, 12.0);
        // Deepest u face with meaningful flow.
        let mut face = None;
        for j in 0..dom.ny as isize {
            for i in 1..dom.nx as isize {
                if dom.mask_u.get(j, i) > 0.5 && dom.h_u(j, i) > 5.0 {
                    face = Some((j, i));
                }
            }
        }
        let (j, i) = face.expect("no deep face found");
        let mut bottom_avg = 0.0;
        let mut surface_avg = 0.0;
        let mut n = 0usize;
        for step in 0..2400 {
            apply_boundary_halos(&dom, &mut s, &forcing);
            step_fast(&dom, &mut s, &phys, &forcing);
            if step % 30 == 29 {
                step_baroclinic(&dom, &mut s, &phys, 30.0 * phys.dt_fast);
                bottom_avg += s.u.get(0, j, i).abs();
                surface_avg += s.u.get(dom.nz - 1, j, i).abs();
                n += 1;
            }
        }
        bottom_avg /= n as f64;
        surface_avg /= n as f64;
        assert!(surface_avg > 0.005, "need flow at ({j},{i}): {surface_avg}");
        assert!(
            bottom_avg < surface_avg,
            "bottom ⟨|u|⟩={bottom_avg} must lag surface ⟨|u|⟩={surface_avg}"
        );
    }

    #[test]
    fn surface_w_equals_barotropic_divergence() {
        // Exact discrete identity: after mode coupling, the column-summed
        // 3-D flux divergence equals the barotropic one, so w at the
        // surface must equal -div((h+ζ)ū)/area to near machine precision
        // (on cells whose faces are deep enough to avoid the min-depth
        // clamps in the coupling).
        let (dom, mut s, phys) = tidal_spinup();
        step_baroclinic(&dom, &mut s, &phys, 30.0 * phys.dt_fast);
        let mut checked = 0;
        for j in 1..dom.ny as isize - 1 {
            for i in 1..dom.nx as isize - 1 {
                if dom.mask_rho.get(j, i) < 0.5 {
                    continue;
                }
                // All four faces comfortably deep (no clamping anywhere).
                let deep = dom.h_u(j, i) > 1.0
                    && dom.h_u(j, i + 1) > 1.0
                    && dom.h_v(j, i) > 1.0
                    && dom.h_v(j + 1, i) > 1.0;
                if !deep {
                    continue;
                }
                let d = |jj: isize, ii: isize| dom.h.get(jj, ii) + s.zeta.get(jj, ii);
                let hu_w = 0.5 * (d(j, i - 1) + d(j, i));
                let hu_e = 0.5 * (d(j, i) + d(j, i + 1));
                let hv_s = 0.5 * (d(j - 1, i) + d(j, i));
                let hv_n = 0.5 * (d(j, i) + d(j + 1, i));
                let area = dom.dx_at(i) * dom.dy_at(j);
                let div = (hu_e * s.ubar.get(j, i + 1) * dom.dy_at(j)
                    - hu_w * s.ubar.get(j, i) * dom.dy_at(j)
                    + hv_n * s.vbar.get(j + 1, i) * dom.dx_at(i)
                    - hv_s * s.vbar.get(j, i) * dom.dx_at(i))
                    / area;
                let w_top = s.w.get(dom.nz, j, i);
                assert!(
                    (w_top + div).abs() < 1e-12 + 1e-9 * div.abs(),
                    "w_top {w_top} vs -div {div} at ({j},{i})"
                );
                checked += 1;
            }
        }
        assert!(checked > 30, "need enough deep cells, got {checked}");
    }
}
