//! Offline stand-in for [rand](https://docs.rs/rand) 0.8 providing the
//! subset this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f32>()` (and friends), and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed (all this repo's tests rely on), statistically solid,
//! no external dependency. It intentionally does NOT reproduce the real
//! `StdRng`'s (ChaCha12) stream.

/// Seed an RNG from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution of a type.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform integer in `[0, bound)` (Lemire-style rejection-free enough
    /// for the non-cryptographic uses here).
    fn gen_index(&mut self, bound: usize) -> usize
    where
        Self: Sized,
    {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..100).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_index_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for bound in [1usize, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_index(bound) < bound);
            }
        }
    }
}
