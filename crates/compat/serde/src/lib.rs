//! Offline stand-in for [serde](https://docs.rs/serde). The workspace only
//! uses `#[derive(Serialize, Deserialize)]` as a marker (no serializer is
//! ever invoked), so the traits are blanket-implemented markers and the
//! derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
