//! Offline stand-in for [rayon](https://docs.rs/rayon) providing exactly the
//! API surface this workspace uses: `par_iter` / `par_iter_mut` /
//! `par_chunks` / `par_chunks_mut` on slices, `into_par_iter` on ranges, and
//! the `zip` / `enumerate` / `map` / `for_each` / `sum` / `collect`
//! combinators, plus [`current_num_threads`].
//!
//! Parallelism is real: consumers split the iterator into one contiguous
//! piece per thread and drain each piece on a `std::thread::scope` thread.
//! There is no work stealing — pieces are equal-sized — which is the right
//! trade for the regular, data-parallel kernels of this repository.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Process-wide thread-count override installed by
/// [`ThreadPoolBuilder::build_global`] (0 = unset).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by parallel consumers.
///
/// A [`ThreadPoolBuilder::build_global`] override wins; otherwise honors
/// `RAYON_NUM_THREADS` (like real rayon), defaulting to the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let o = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Error type of [`ThreadPoolBuilder::build_global`] — this shim never
/// actually fails, but the signature matches real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Facade over real rayon's global-pool configuration.
///
/// Since this shim spawns scoped threads per consumer rather than keeping
/// a pool, "building the global pool" just records the thread count that
/// [`split_for_threads`] targets. **Documented divergence from rayon**:
/// `build_global` may be called repeatedly — the last call wins — which is
/// what lets `bench_kernels` sweep a threads axis within one process.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Target worker count; 0 means "restore the env/hardware default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install this configuration globally (reconfigurable; see type docs).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A splittable, length-aware parallel iterator.
///
/// `pi_*` methods are the implementation surface; the provided methods are
/// the rayon-compatible consumer API.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type Serial: Iterator<Item = Self::Item>;

    /// Remaining item count.
    fn pi_len(&self) -> usize;
    /// Split into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);
    /// Serial drain of this piece.
    fn pi_serial(self) -> Self::Serial;

    // ------------------------------------------------------------ adapters

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    // ----------------------------------------------------------- consumers

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let pieces = split_for_threads(self);
        if pieces.len() == 1 {
            for piece in pieces {
                piece.pi_serial().for_each(&f);
            }
            return;
        }
        std::thread::scope(|s| {
            for piece in pieces {
                let f = &f;
                s.spawn(move || piece.pi_serial().for_each(f));
            }
        });
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let pieces = split_for_threads(self);
        if pieces.len() == 1 {
            return pieces
                .into_iter()
                .map(|p| p.pi_serial().sum::<S>())
                .sum::<S>();
        }
        let partials: Vec<S> = std::thread::scope(|s| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|p| s.spawn(move || p.pi_serial().sum::<S>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        partials.into_iter().sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Split `iter` into at most `current_num_threads()` contiguous pieces.
fn split_for_threads<I: ParallelIterator>(iter: I) -> Vec<I> {
    let n = iter.pi_len();
    let threads = current_num_threads().min(n.max(1));
    let mut out = Vec::with_capacity(threads);
    split_rec(iter, threads, &mut out);
    out
}

fn split_rec<I: ParallelIterator>(iter: I, pieces: usize, out: &mut Vec<I>) {
    let n = iter.pi_len();
    if pieces <= 1 || n <= 1 {
        out.push(iter);
        return;
    }
    let left = pieces / 2;
    let at = (n * left / pieces).clamp(1, n - 1);
    let (l, r) = iter.pi_split_at(at);
    split_rec(l, left, out);
    split_rec(r, pieces - left, out);
}

/// Conversion into a parallel iterator (identity for parallel iterators).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: ParallelIterator> IntoParallelIterator for I {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> I {
        self
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    type Item = usize;
    fn into_par_iter(self) -> ParRange {
        ParRange(self)
    }
}

/// Collecting the results of a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let n = iter.pi_len();
        let pieces = split_for_threads(iter);
        if pieces.len() == 1 {
            let mut out = Vec::with_capacity(n);
            for p in pieces {
                out.extend(p.pi_serial());
            }
            return out;
        }
        let parts: Vec<Vec<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|p| s.spawn(move || p.pi_serial().collect::<Vec<T>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ------------------------------------------------------------- base sources

/// Shared-slice iterator (`par_iter`).
pub struct ParSlice<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    type Serial = std::slice::Iter<'a, T>;
    fn pi_len(&self) -> usize {
        self.0.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (ParSlice(l), ParSlice(r))
    }
    fn pi_serial(self) -> Self::Serial {
        self.0.iter()
    }
}

/// Mutable-slice iterator (`par_iter_mut`).
pub struct ParSliceMutIter<'a, T: Send>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for ParSliceMutIter<'a, T> {
    type Item = &'a mut T;
    type Serial = std::slice::IterMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.0.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (ParSliceMutIter(l), ParSliceMutIter(r))
    }
    fn pi_serial(self) -> Self::Serial {
        self.0.iter_mut()
    }
}

/// Shared chunk iterator (`par_chunks`).
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Serial = std::slice::Chunks<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ParChunks {
                slice: l,
                size: self.size,
            },
            ParChunks {
                slice: r,
                size: self.size,
            },
        )
    }
    fn pi_serial(self) -> Self::Serial {
        self.slice.chunks(self.size)
    }
}

/// Mutable chunk iterator (`par_chunks_mut`).
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Serial = std::slice::ChunksMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ParChunksMut {
                slice: l,
                size: self.size,
            },
            ParChunksMut {
                slice: r,
                size: self.size,
            },
        )
    }
    fn pi_serial(self) -> Self::Serial {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel `Range<usize>` (`(0..n).into_par_iter()`).
pub struct ParRange(Range<usize>);

impl ParallelIterator for ParRange {
    type Item = usize;
    type Serial = Range<usize>;
    fn pi_len(&self) -> usize {
        self.0.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = self.0.start + index;
        (ParRange(self.0.start..mid), ParRange(mid..self.0.end))
    }
    fn pi_serial(self) -> Self::Serial {
        self.0
    }
}

// ---------------------------------------------------------------- adapters

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Serial = std::iter::Map<I::Serial, F>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.pi_split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }
    fn pi_serial(self) -> Self::Serial {
        self.base.pi_serial().map(self.f)
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Serial = std::iter::Zip<A::Serial, B::Serial>;
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.pi_split_at(index);
        let (b1, b2) = self.b.pi_split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn pi_serial(self) -> Self::Serial {
        self.a.pi_serial().zip(self.b.pi_serial())
    }
}

pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Serial = std::iter::Zip<std::ops::RangeFrom<usize>, I::Serial>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn pi_serial(self) -> Self::Serial {
        (self.offset..).zip(self.base.pi_serial())
    }
}

// ------------------------------------------------------------ entry points

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync + Send> {
    fn par_iter(&self) -> ParSlice<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice(self)
    }
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParSliceMutIter<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMutIter<'_, T> {
        ParSliceMutIter(self)
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_for_each_mutates_all() {
        let src: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 10_000];
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, &s)| *d = s * 2.0);
        assert!(dst.iter().enumerate().all(|(i, &v)| v == i as f32 * 2.0));
    }

    #[test]
    fn chunked_enumerate_preserves_indices() {
        let mut out = vec![0usize; 1000];
        out.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for v in chunk.iter_mut() {
                *v = ci;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i / 7);
        }
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<f32> = (0..100_000).map(|i| (i % 17) as f32).collect();
        let par: f64 = v
            .par_chunks(4096)
            .map(|c| c.iter().map(|&x| x as f64).sum::<f64>())
            .sum();
        let ser: f64 = v.iter().map(|&x| x as f64).sum();
        assert!((par - ser).abs() < 1e-6);
    }

    #[test]
    fn range_map_collect_in_order() {
        let v: Vec<usize> = (0..5000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 5000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn zip_stops_at_shorter() {
        let a = [1i64; 10];
        let b = [2i64; 7];
        let s: i64 = a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(s, 14);
    }

    #[test]
    fn thread_pool_builder_overrides_and_restores() {
        let default = super::current_num_threads();
        super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(super::current_num_threads(), 3);
        // Parallel consumers still work under the override.
        let mut v = vec![0usize; 100];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
        // 0 restores the env/hardware default (shim divergence: rayon
        // forbids reconfiguration, this facade allows it).
        super::ThreadPoolBuilder::new().build_global().unwrap();
        assert_eq!(super::current_num_threads(), default);
    }
}
