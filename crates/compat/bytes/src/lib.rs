//! Offline stand-in for [bytes](https://docs.rs/bytes): `Bytes` (cheaply
//! clonable frozen buffer), `BytesMut` (growable builder), and the `Buf` /
//! `BufMut` cursor traits — only the accessors this workspace uses, with the
//! same big-endian encoding as the real crate.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default, Debug)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte builder.
#[derive(Clone, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (big-endian, like the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_take(&mut self, n: usize) -> &[u8];

    fn get_u16(&mut self) -> u16 {
        let b = self.copy_take(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let b = self.copy_take(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    fn get_u64(&mut self) -> u64 {
        let b = self.copy_take(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underrun: {} < {n}", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Write cursor onto a growable byte sink (big-endian).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn roundtrip_mixed_fields() {
        let mut b = BytesMut::new();
        b.put_f64(1234.5678);
        b.put_u16(0xBEEF);
        b.put_f32(-1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_f64(), 1234.5678);
        assert_eq!(cur.get_u16(), 0xBEEF);
        assert_eq!(cur.get_f32(), -1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn len_counts_bytes() {
        let mut b = BytesMut::new();
        b.put_u16(1);
        b.put_f64(2.0);
        assert_eq!(b.len(), 10);
    }
}
