//! Offline stand-in for [crossbeam](https://docs.rs/crossbeam) providing the
//! subset this workspace uses: `channel::{unbounded, bounded}` (multi
//! producer / single consumer, FIFO per sender) and `thread::scope` with the
//! crossbeam-style `spawn(|scope| …)` closure signature.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half — clonable, as with crossbeam.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    pub use std::sync::mpsc::{Receiver, RecvError};

    impl<T> Sender<T> {
        /// Send, blocking when a bounded channel is full. Errors only when
        /// the receiver hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), rx)
    }

    /// Channel that blocks senders beyond `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), rx)
    }
}

pub mod thread {
    use std::any::Any;

    /// Panic payload type, as in `std::thread`.
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// Scope handle passed to `scope` and to each spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope (crossbeam
        /// signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Panics from threads joined manually via their handles
    /// are *not* re-thrown here (the caller already observed them), matching
    /// how this workspace uses crossbeam.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fifo_and_clone() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = super::channel::bounded(1);
        tx.send(10u32).unwrap();
        let h = std::thread::spawn(move || tx.send(20).unwrap());
        assert_eq!(rx.recv().unwrap(), 10);
        assert_eq!(rx.recv().unwrap(), 20);
        h.join().unwrap();
    }

    #[test]
    fn scope_joins_and_returns() {
        let sum = super::thread::scope(|s| {
            let hs: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 10)).collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
