//! No-op derive macros for the offline serde shim. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as documentation of intent — nothing
//! actually serializes — so the derives expand to nothing. The `serde(...)`
//! helper attribute is registered so annotated fields stay legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
