//! Offline stand-in for [proptest](https://docs.rs/proptest): the
//! `proptest! { #[test] fn name(arg in strategy, …) { body } }` macro over
//! range strategies, with `prop_assert!` / `prop_assert_eq!`. Each test runs
//! `PROPTEST_CASES` (default 64) deterministic cases; failures report the
//! sampled inputs via the panic message of the underlying assertion.
//!
//! Only range strategies (`lo..hi` for the integer and float primitives)
//! and `Just`-style constants are supported — exactly what this workspace's
//! property tests use.

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestRng};
}

/// Deterministic RNG for case generation (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (the strategy on the right of `arg in …`).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, isize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Number of cases per property (env-overridable).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// FNV-1a of the test name, used as the per-test base seed so cases are
/// stable across runs and independent across tests.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The property-test declaration macro.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let base = $crate::seed_for(stringify!($name));
            for case in 0..$crate::cases() {
                let mut rng = $crate::TestRng::new(base.wrapping_add(case));
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn int_ranges_in_bounds(n in 1usize..20, s in -7isize..7) {
            prop_assert!((1..20).contains(&n));
            prop_assert!((-7..7).contains(&s));
        }

        #[test]
        fn float_ranges_in_bounds(v in -2.5f32..4.0, w in 0.0f64..1.0) {
            prop_assert!((-2.5..4.0).contains(&v));
            prop_assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn seeds_differ_across_names() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
