//! Offline stand-in for [criterion](https://docs.rs/criterion): a minimal
//! timing harness compatible with the `bench_function` / `criterion_group!`
//! / `criterion_main!` pattern used by this workspace's benches. Reports
//! mean and best-of-sample wall time per iteration to stderr. No statistics
//! engine, no HTML reports — just honest numbers, offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Bench configuration + registry (the `c` in `fn bench(c: &mut Criterion)`).
pub struct Criterion {
    sample_size: usize,
    /// Soft wall-clock budget per benchmark.
    max_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            max_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.max_time = t;
        self
    }

    /// Run one benchmark: a warmup call, then up to `sample_size` timed
    /// samples bounded by the time budget.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b); // warmup + sizing pass
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            b.reset();
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if budget.elapsed() > self.max_time {
                break;
            }
        }
        if samples.is_empty() {
            eprintln!("bench {name}: no samples");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        eprintln!(
            "bench {name}: mean {:.3} ms, best {:.3} ms ({} samples)",
            mean * 1e3,
            best * 1e3,
            samples.len()
        );
        self
    }
}

/// Per-sample timer handle passed to the bench closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }

    /// Time repeated calls of `f` (a single call per sample here; criterion
    /// would auto-scale the iteration count).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        std_black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Build a bench group function from targets (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 3);
    }
}
