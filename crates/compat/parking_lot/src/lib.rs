//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot): a
//! `Mutex` whose `lock()` returns the guard directly (no poison `Result`),
//! backed by `std::sync::Mutex`. Poisoned locks are recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
