//! Water-mass conservation residual (paper Eq. 4/5).
//!
//! For each horizontal cell Ω with contour Γ the conservation law reads
//!
//! ```text
//!   ∂/∂t ∫_Ω (h + ζ) dΩ  =  ∮_Γ (h + ζ) u · n dΓ
//! ```
//!
//! The residual is the absolute difference of the two sides, normalized by
//! cell area — units m/s, matching the paper's thresholds (3e-4 … 5.5e-4
//! m/s; "smaller than 5.0e-4 m/s is typically considered acceptable in
//! oceanography").
//!
//! Inputs are *cell-centered* snapshots (the AI surrogate's output format):
//! face values are reconstructed by averaging adjacent centers, exactly the
//! information available when verifying a neural prediction.

use cgrid::Grid;
use cocean::Snapshot;
use rayon::prelude::*;

/// Residual field plus summary statistics for one snapshot pair.
#[derive(Clone, Debug)]
pub struct ResidualField {
    pub ny: usize,
    pub nx: usize,
    /// Per-cell |residual| (m/s); land cells are NaN-free zeros but are
    /// excluded from the statistics.
    pub values: Vec<f64>,
    /// Mean |residual| over wet cells (m/s) — the paper's pass metric.
    pub mean: f64,
    /// Max |residual| over wet cells.
    pub max: f64,
    /// Wet cell count.
    pub wet_cells: usize,
}

/// Depth-average a cell-centered 3-D velocity using sigma thicknesses.
fn depth_average(
    grid: &Grid,
    snap: &Snapshot,
    field: &[f32],
    j: usize,
    i: usize,
    zeta: f64,
) -> f64 {
    let h = grid.h.get(j as isize, i as isize);
    let total = (h + zeta).max(1e-6);
    let mut acc = 0.0;
    for k in 0..snap.nz {
        let dz = grid.sigma.dz(k, h, zeta);
        acc += field[snap.idx3(k, j, i)] as f64 * dz;
    }
    acc / total
}

/// Compute the residual field between two consecutive snapshots.
///
/// The time derivative uses the forward difference of ζ; the boundary flux
/// uses the time-mean of the two snapshots' depth-averaged velocities
/// (second-order in the snapshot interval).
pub fn water_mass_residual(grid: &Grid, before: &Snapshot, after: &Snapshot) -> ResidualField {
    assert_eq!(
        (before.ny, before.nx, before.nz),
        (after.ny, after.nx, after.nz)
    );
    assert!(
        after.time > before.time,
        "snapshots must be time-ordered: {} !> {}",
        after.time,
        before.time
    );
    let (ny, nx) = (before.ny, before.nx);
    let dt = after.time - before.time;

    // Pre-compute depth-averaged velocities at cell centers, time-averaged
    // over the pair.
    let wet = |j: usize, i: usize| grid.mask_rho.get(j as isize, i as isize) > 0.5;
    let mut ubar = vec![0.0f64; ny * nx];
    let mut vbar = vec![0.0f64; ny * nx];
    ubar.par_chunks_mut(nx)
        .zip(vbar.par_chunks_mut(nx))
        .enumerate()
        .for_each(|(j, (urow, vrow))| {
            for i in 0..nx {
                if !wet(j, i) {
                    continue;
                }
                let z0 = before.zeta[before.idx2(j, i)] as f64;
                let z1 = after.zeta[after.idx2(j, i)] as f64;
                urow[i] = 0.5
                    * (depth_average(grid, before, &before.u, j, i, z0)
                        + depth_average(grid, after, &after.u, j, i, z1));
                vrow[i] = 0.5
                    * (depth_average(grid, before, &before.v, j, i, z0)
                        + depth_average(grid, after, &after.v, j, i, z1));
            }
        });

    // Time-mean total depth per cell.
    let depth_at = |j: usize, i: usize| -> f64 {
        let h = grid.h.get(j as isize, i as isize);
        let z = 0.5 * (before.zeta[before.idx2(j, i)] + after.zeta[after.idx2(j, i)]) as f64;
        h + z
    };

    let values: Vec<f64> = (0..ny * nx)
        .into_par_iter()
        .map(|cell| {
            let (j, i) = (cell / nx, cell % nx);
            if !wet(j, i) {
                return 0.0;
            }
            let area = grid.cell_area(j, i);
            let dzeta_dt =
                (after.zeta[after.idx2(j, i)] - before.zeta[before.idx2(j, i)]) as f64 / dt;
            // Storage term per unit area: ∂ζ/∂t (h is constant in time).
            let storage = dzeta_dt;

            // Net inflow per unit area: -div[(h+ζ)ū]. Face values average
            // the two adjacent centers; land neighbors contribute no flux.
            let face = |ja: usize, ia: usize, jb: usize, ib: usize, vel: &[f64]| -> f64 {
                if !wet(jb, ib) {
                    return 0.0;
                }
                let d = 0.5 * (depth_at(ja, ia) + depth_at(jb, ib));
                let v = 0.5 * (vel[ja * nx + ia] + vel[jb * nx + ib]);
                d * v
            };
            let dx = grid.dx[i];
            let dy = grid.dy[j];
            let flux_e = if i + 1 < nx {
                face(j, i, j, i + 1, &ubar) * dy
            } else {
                0.0
            };
            let flux_w = if i > 0 {
                face(j, i, j, i - 1, &ubar) * dy
            } else {
                // Open west boundary: use the cell's own value.
                depth_at(j, i) * ubar[j * nx + i] * dy
            };
            let flux_n = if j + 1 < ny {
                face(j, i, j + 1, i, &vbar) * dy_to_dx(dx)
            } else {
                0.0
            };
            let flux_s = if j > 0 {
                face(j, i, j - 1, i, &vbar) * dy_to_dx(dx)
            } else {
                0.0
            };

            let inflow = -(flux_e - flux_w + flux_n - flux_s) / area;
            (storage - inflow).abs()
        })
        .collect();

    let mut mean = 0.0;
    let mut max = 0.0f64;
    let mut wet_cells = 0usize;
    for j in 0..ny {
        for i in 0..nx {
            if wet(j, i) {
                let v = values[j * nx + i];
                mean += v;
                max = max.max(v);
                wet_cells += 1;
            }
        }
    }
    mean /= wet_cells.max(1) as f64;

    ResidualField {
        ny,
        nx,
        values,
        mean,
        max,
        wet_cells,
    }
}

/// v-face flux length is dx (the face spans the cell width).
#[inline]
fn dy_to_dx(dx: f64) -> f64 {
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgrid::{EstuaryParams, GridParams};
    use cocean::{OceanConfig, Roms, TidalForcing};

    fn grid() -> Grid {
        Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 24,
                nx: 20,
                ..Default::default()
            },
            nz: 4,
            ..Default::default()
        })
    }

    fn simulated_pair(grid: &Grid) -> (Snapshot, Snapshot) {
        let mut cfg = OceanConfig::for_grid(grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let mut m = Roms::new(grid, cfg);
        m.spinup(4.0 * 3600.0);
        let interval = m.cfg.dt_slow();
        let snaps = m.record(2, interval);
        (snaps[0].clone(), snaps[1].clone())
    }

    #[test]
    fn simulator_output_has_small_residual() {
        let g = grid();
        let (a, b) = simulated_pair(&g);
        let r = water_mass_residual(&g, &a, &b);
        assert!(r.wet_cells > 200);
        assert!(
            r.mean < 5.0e-4,
            "simulator must pass the oceanographic threshold: mean {}",
            r.mean
        );
    }

    #[test]
    fn corrupted_output_fails() {
        let g = grid();
        let (a, b) = simulated_pair(&g);
        let r_clean = water_mass_residual(&g, &a, &b);
        // Corrupt ζ with a large blob — mass appears from nowhere.
        let mut bad = b.clone();
        for j in 8..14 {
            for i in 8..14 {
                if g.mask_rho.get(j as isize, i as isize) > 0.5 {
                    let idx = bad.idx2(j, i);
                    bad.zeta[idx] += 2.0;
                }
            }
        }
        let r_bad = water_mass_residual(&g, &a, &bad);
        assert!(
            r_clean.mean <= crate::verify::ACCEPTED_THRESHOLD,
            "clean simulation must pass: {}",
            r_clean.mean
        );
        assert!(
            r_bad.mean > crate::verify::ACCEPTED_THRESHOLD,
            "corruption must fail the oceanographic threshold: {}",
            r_bad.mean
        );
        assert!(
            r_bad.mean > 3.0 * r_clean.mean,
            "corruption must raise the residual: {} vs {}",
            r_bad.mean,
            r_clean.mean
        );
    }

    #[test]
    fn still_water_zero_residual() {
        let g = grid();
        let mk = |t: f64| {
            let cfg = OceanConfig::for_grid(&g);
            let m = Roms::new(&g, cfg);
            let mut s = m.snapshot();
            s.time = t;
            s
        };
        let r = water_mass_residual(&g, &mk(0.0), &mk(1800.0));
        assert!(r.mean < 1e-12);
        assert!(r.max < 1e-12);
    }

    #[test]
    fn residual_scales_with_violation() {
        // The residual *increase* over the clean baseline scales linearly
        // with a uniform spurious mass injection.
        let g = grid();
        let (a, b) = simulated_pair(&g);
        let r_clean = water_mass_residual(&g, &a, &b);
        let bump = |amount: f32| {
            let mut s = b.clone();
            for v in s.zeta.iter_mut() {
                *v += amount;
            }
            water_mass_residual(&g, &a, &s).mean
        };
        let d_small = bump(0.05) - r_clean.mean;
        let d_large = bump(0.5) - r_clean.mean;
        assert!(d_small > 0.0);
        assert!(
            d_large > 5.0 * d_small,
            "excess residual must scale: {d_small} vs {d_large}"
        );
    }

    #[test]
    fn land_cells_excluded() {
        let g = grid();
        let (a, b) = simulated_pair(&g);
        let r = water_mass_residual(&g, &a, &b);
        for j in 0..r.ny {
            for i in 0..r.nx {
                if g.mask_rho.get(j as isize, i as isize) < 0.5 {
                    assert_eq!(r.values[j * r.nx + i], 0.0);
                }
            }
        }
        assert_eq!(r.wet_cells, g.wet_cells());
    }
}
