//! # coastal-physics
//!
//! Physics-based verification of simulation and surrogate output: the
//! water-mass conservation residual of the paper's Eq. 4/5 ([`mass`]),
//! threshold verdicts, episode checking and pass-rate curves ([`verify`]).

pub mod mass;
pub mod verify;

pub use mass::{water_mass_residual, ResidualField};
pub use verify::{
    pass_rate, pass_rate_curve, Verdict, Verifier, VerifierConfig, ACCEPTED_THRESHOLD,
    PAPER_THRESHOLDS,
};
