//! Episode verification: threshold checks and pass-rate statistics
//! (paper §III-E, Fig. 7).

use cgrid::Grid;
use cocean::Snapshot;
use serde::{Deserialize, Serialize};

use crate::mass::{water_mass_residual, ResidualField};

/// Thresholds the paper sweeps (m/s).
pub const PAPER_THRESHOLDS: [f64; 6] = [3.0e-4, 3.5e-4, 4.0e-4, 4.5e-4, 5.0e-4, 5.5e-4];

/// The threshold "typically considered acceptable by oceanographers".
pub const ACCEPTED_THRESHOLD: f64 = 5.0e-4;

/// Verifier configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// Mean-residual threshold (m/s).
    pub threshold: f64,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        Self {
            threshold: ACCEPTED_THRESHOLD,
        }
    }
}

/// Outcome of verifying one snapshot transition.
#[derive(Clone, Copy, Debug)]
pub struct Verdict {
    pub mean_residual: f64,
    pub max_residual: f64,
    pub passed: bool,
}

/// Physics-based verifier over a fixed grid.
pub struct Verifier<'g> {
    grid: &'g Grid,
    pub cfg: VerifierConfig,
}

impl<'g> Verifier<'g> {
    pub fn new(grid: &'g Grid, cfg: VerifierConfig) -> Self {
        Self { grid, cfg }
    }

    /// Verify one transition (consecutive snapshots).
    pub fn check_pair(&self, before: &Snapshot, after: &Snapshot) -> Verdict {
        let r = water_mass_residual(self.grid, before, after);
        self.verdict(&r)
    }

    /// Verify a whole episode: initial condition followed by predicted
    /// snapshots. Passes only if **every** transition passes; returns the
    /// per-transition verdicts (the workflow stops at the first failure).
    pub fn check_episode(&self, initial: &Snapshot, predicted: &[Snapshot]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(predicted.len());
        let mut prev = initial;
        for snap in predicted {
            let v = self.check_pair(prev, snap);
            let failed = !v.passed;
            out.push(v);
            if failed {
                break;
            }
            prev = snap;
        }
        out
    }

    /// Mean residual of every transition in a trajectory (used for the
    /// pass-rate curve where each inference is judged independently).
    pub fn residual_series(&self, trajectory: &[Snapshot]) -> Vec<f64> {
        trajectory
            .windows(2)
            .map(|w| water_mass_residual(self.grid, &w[0], &w[1]).mean)
            .collect()
    }

    fn verdict(&self, r: &ResidualField) -> Verdict {
        Verdict {
            mean_residual: r.mean,
            max_residual: r.max,
            passed: r.mean <= self.cfg.threshold,
        }
    }
}

/// Pass rate of a residual population at a threshold.
pub fn pass_rate(residuals: &[f64], threshold: f64) -> f64 {
    if residuals.is_empty() {
        return 1.0;
    }
    residuals.iter().filter(|&&r| r <= threshold).count() as f64 / residuals.len() as f64
}

/// Pass-rate curve over the paper's threshold sweep.
pub fn pass_rate_curve(residuals: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&t| (t, pass_rate(residuals, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_rate_monotone_in_threshold() {
        let residuals = vec![1e-4, 2e-4, 3e-4, 4e-4, 6e-4, 8e-4];
        let curve = pass_rate_curve(&residuals, &PAPER_THRESHOLDS);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "pass rate must grow with threshold");
        }
        assert!((pass_rate(&residuals, 5.0e-4) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pass_rate_edges() {
        assert_eq!(pass_rate(&[], 1e-4), 1.0);
        assert_eq!(pass_rate(&[1.0], 1e-4), 0.0);
        assert_eq!(pass_rate(&[1e-5], 1e-4), 1.0);
    }

    #[test]
    fn episode_check_stops_at_first_failure() {
        use cgrid::{EstuaryParams, GridParams};
        use cocean::{OceanConfig, Roms, TidalForcing};
        let grid = Grid::build(&GridParams {
            estuary: EstuaryParams {
                ny: 16,
                nx: 16,
                ..Default::default()
            },
            nz: 3,
            ..Default::default()
        });
        let mut cfg = OceanConfig::for_grid(&grid);
        cfg.forcing = TidalForcing::single(0.3, 12.0);
        let mut m = Roms::new(&grid, cfg);
        m.spinup(2.0 * 3600.0);
        let interval = m.cfg.dt_slow();
        let snaps = m.record(4, interval);

        let verifier = Verifier::new(&grid, VerifierConfig::default());
        // Clean episode passes everywhere.
        let verdicts = verifier.check_episode(&snaps[0], &snaps[1..]);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| v.passed), "{verdicts:?}");

        // Corrupt the middle snapshot: the check stops there.
        let mut bad = snaps.clone();
        for v in bad[2].zeta.iter_mut() {
            *v += 0.3;
        }
        let verdicts = verifier.check_episode(&bad[0], &bad[1..]);
        assert!(verdicts.len() <= 2, "must stop at the corrupted step");
        assert!(!verdicts.last().unwrap().passed);
    }
}
