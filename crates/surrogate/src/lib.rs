//! # coastal-surrogate
//!
//! The paper's primary contribution: a 4D Swin Transformer surrogate for
//! coastal ocean circulation. The model consumes an initial condition plus
//! future lateral boundary conditions and predicts the interior evolution
//! of `u, v, w, ζ` over the episode:
//!
//! - [`embed`]: 3-D/2-D patch embedding, depth-axis merge, absolute
//!   spatial+temporal positional encoding, patch recovery heads.
//! - [`window`]: 4-D window partition/reverse, cyclic shift, and the
//!   padding/seam attention masks.
//! - [`block`]: W-MSA / SW-MSA block pairs and spatial patch merging.
//! - [`decoder`]: U-Net-style upsampling with skip connections.
//! - [`model::SwinSurrogate`]: full encoder-decoder with optional
//!   activation checkpointing (paper §III-D).
//! - [`loss`]: masked episode loss and the Table-III MAE/RMSE metrics.

pub mod block;
pub mod config;
pub mod decoder;
pub mod embed;
pub mod loss;
pub mod model;
pub mod window;

pub use config::SwinConfig;
pub use loss::{episode_loss, evaluate_errors};
pub use model::{CheckpointPolicy, SwinSurrogate};
