//! Surrogate model configuration.

use ctensor::backend::BackendChoice;
use serde::{Deserialize, Serialize};

/// 4-D extent (space × time) used for windows and shifts.
pub type Win4 = [usize; 4];

/// Configuration of the 4D Swin Transformer surrogate.
///
/// Paper defaults (§IV-B): patch 5×5×4 (3-D) / 5×5 (2-D), embed dim 24,
/// three stages with heads 3/6/12, first window (4,4,2,2) then (2,2,2,2).
/// The mesh and horizon here default to the scaled test domain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwinConfig {
    /// Mesh rows (north-south).
    pub ny: usize,
    /// Mesh columns (east-west).
    pub nx: usize,
    /// Sigma layers.
    pub nz: usize,
    /// Forecast steps per episode (the paper uses 24). The model input
    /// carries `t_out + 1` frames: the initial condition plus `t_out`
    /// boundary-condition frames.
    pub t_out: usize,
    /// Spatial patch size (horizontal, horizontal, vertical).
    pub patch: [usize; 3],
    /// Initial embedding dimension.
    pub embed_dim: usize,
    /// Attention heads per stage (also sets the number of stages).
    pub num_heads: Vec<usize>,
    /// Window of the first stage.
    pub window_first: Win4,
    /// Window of the later stages.
    pub window_rest: Win4,
    /// MLP hidden width = `mlp_ratio * dim`.
    pub mlp_ratio: f32,
    /// Tensor compute backend the model pins for its forward passes.
    /// `Auto` (default) defers to the ambient selection (scope / global /
    /// `COASTAL_BACKEND`); `Blocked` and `Scalar` pin explicitly.
    pub backend: BackendChoice,
}

impl Default for SwinConfig {
    fn default() -> Self {
        Self {
            ny: 96,
            nx: 64,
            nz: 8,
            t_out: 24,
            patch: [4, 4, 4],
            embed_dim: 24,
            num_heads: vec![3, 6, 12],
            window_first: [4, 4, 2, 2],
            window_rest: [2, 2, 2, 2],
            mlp_ratio: 2.0,
            backend: BackendChoice::default(),
        }
    }
}

impl SwinConfig {
    /// A tiny configuration for fast tests.
    pub fn tiny(ny: usize, nx: usize, nz: usize, t_out: usize) -> Self {
        Self {
            ny,
            nx,
            nz,
            t_out,
            patch: [4, 4, 2],
            embed_dim: 12,
            num_heads: vec![2, 4],
            window_first: [2, 2, 2, 2],
            window_rest: [2, 2, 2, 2],
            mlp_ratio: 1.5,
            backend: BackendChoice::default(),
        }
    }

    /// Same config pinned to a different compute backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Number of encoder stages.
    pub fn n_stages(&self) -> usize {
        self.num_heads.len()
    }

    /// Embedding dim at stage `s` (doubles per merge).
    pub fn dim_at(&self, s: usize) -> usize {
        self.embed_dim << s
    }

    /// Input frames (initial condition + boundary frames).
    pub fn t_in(&self) -> usize {
        self.t_out + 1
    }

    /// Padded mesh extents (multiples of the patch size; the paper pads
    /// 898×598×12 to 900×600×12).
    pub fn padded_mesh(&self) -> (usize, usize, usize) {
        (
            self.ny.div_ceil(self.patch[0]) * self.patch[0],
            self.nx.div_ceil(self.patch[1]) * self.patch[1],
            self.nz.div_ceil(self.patch[2]) * self.patch[2],
        )
    }

    /// Token-grid extents after embedding: `(H', W', D'+1, T)` — the +1 is
    /// the 2-D variable's plane concatenated along depth.
    pub fn token_grid(&self) -> (usize, usize, usize, usize) {
        let (ph, pw, pd) = self.padded_mesh();
        (
            ph / self.patch[0],
            pw / self.patch[1],
            pd / self.patch[2] + 1,
            self.t_in(),
        )
    }

    /// Window extent for stage `s`.
    pub fn window_at(&self, s: usize) -> Win4 {
        if s == 0 {
            self.window_first
        } else {
            self.window_rest
        }
    }

    /// Validate dimensions (panics with a clear message on conflicts).
    pub fn validate(&self) {
        assert!(self.n_stages() >= 1, "need at least one stage");
        for (s, &h) in self.num_heads.iter().enumerate() {
            let dim = self.dim_at(s);
            assert_eq!(
                dim % h,
                0,
                "stage {s}: dim {dim} not divisible by heads {h}"
            );
        }
        assert!(self.t_out >= 1);
        assert!(self.patch.iter().all(|&p| p >= 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_valid() {
        let c = SwinConfig::default();
        c.validate();
        assert_eq!(c.token_grid(), (24, 16, 3, 25));
        assert_eq!(c.dim_at(2), 96);
    }

    #[test]
    fn padding_rounds_up() {
        let c = SwinConfig {
            ny: 97,
            nx: 63,
            nz: 7,
            ..Default::default()
        };
        let (ph, pw, pd) = c.padded_mesh();
        assert_eq!((ph, pw, pd), (100, 64, 8));
    }

    #[test]
    fn paper_shape_arithmetic() {
        // The paper's mesh: 898×598×12 padded to 900×600×12 with patch
        // 5×5×4 → tokens 180×120×(3+1)×25.
        let c = SwinConfig {
            ny: 898,
            nx: 598,
            nz: 12,
            t_out: 24,
            patch: [5, 5, 4],
            ..Default::default()
        };
        assert_eq!(c.padded_mesh(), (900, 600, 12));
        assert_eq!(c.token_grid(), (180, 120, 4, 25));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_heads_panics() {
        let c = SwinConfig {
            embed_dim: 10,
            num_heads: vec![3],
            ..Default::default()
        };
        c.validate();
    }
}
