//! Training loss and evaluation metrics over masked mesh cells.

use ctensor::prelude::*;

/// Water-mask-weighted MSE over both variable groups.
///
/// `mask` is the `(ny, nx)` land/sea mask (1 = water); land cells carry no
/// loss, mirroring the paper's masked training on the estuary mesh.
pub fn episode_loss(
    g: &mut Graph,
    pred3: Var,
    pred2: Var,
    target3: &Tensor,
    target2: &Tensor,
    mask: &Tensor,
) -> Var {
    let (ny, nx) = (mask.shape()[0], mask.shape()[1]);
    // Broadcast masks: (1,1,ny,nx,1,1) against (B,3,ny,nx,nz,T) and
    // (1,1,ny,nx,1) against (B,1,ny,nx,T).
    let m3 = g.constant(
        mask.reshaped(&[1, 1, ny, nx, 1, 1])
            .broadcast_to(g_shape(g, pred3).as_slice()),
    );
    let m2 = g.constant(
        mask.reshaped(&[1, 1, ny, nx, 1])
            .broadcast_to(g_shape(g, pred2).as_slice()),
    );
    let t3 = g.constant(target3.clone());
    let t2 = g.constant(target2.clone());
    let l3 = g.masked_mse_loss(pred3, t3, m3);
    let l2 = g.masked_mse_loss(pred2, t2, m2);
    g.add(l3, l2)
}

fn g_shape(g: &Graph, v: Var) -> Vec<usize> {
    g.value(v).shape().to_vec()
}

/// Per-variable MAE and RMSE over water cells, in *physical units* —
/// predictions and targets must already be denormalized. Layout:
/// `pred3/tgt3`: `(B,3,ny,nx,nz,T)`, `pred2/tgt2`: `(B,1,ny,nx,T)`,
/// `mask`: `(ny,nx)`.
///
/// Returns `[(mae, rmse); 4]` ordered `u, v, w, ζ` like the paper's
/// Table III.
pub fn evaluate_errors(
    pred3: &Tensor,
    tgt3: &Tensor,
    pred2: &Tensor,
    tgt2: &Tensor,
    mask: &Tensor,
) -> [(f64, f64); 4] {
    let s3 = pred3.shape().to_vec();
    let (b, ny, nx, nz, t) = (s3[0], s3[2], s3[3], s3[4], s3[5]);
    assert_eq!(tgt3.shape(), pred3.shape());
    assert_eq!(pred2.shape(), tgt2.shape());
    let mut out = [(0.0, 0.0); 4];

    // 3-D variables.
    for (c, slot) in out.iter_mut().enumerate().take(3) {
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut n = 0usize;
        for bi in 0..b {
            for j in 0..ny {
                for i in 0..nx {
                    if mask.at(&[j, i]) < 0.5 {
                        continue;
                    }
                    for k in 0..nz {
                        for tt in 0..t {
                            let idx = [bi, c, j, i, k, tt];
                            let d = (pred3.at(&idx) - tgt3.at(&idx)) as f64;
                            abs_sum += d.abs();
                            sq_sum += d * d;
                            n += 1;
                        }
                    }
                }
            }
        }
        let n = n.max(1) as f64;
        *slot = (abs_sum / n, (sq_sum / n).sqrt());
    }

    // ζ.
    let mut abs_sum = 0.0f64;
    let mut sq_sum = 0.0f64;
    let mut n = 0usize;
    for bi in 0..b {
        for j in 0..ny {
            for i in 0..nx {
                if mask.at(&[j, i]) < 0.5 {
                    continue;
                }
                for tt in 0..t {
                    let idx = [bi, 0, j, i, tt];
                    let d = (pred2.at(&idx) - tgt2.at(&idx)) as f64;
                    abs_sum += d.abs();
                    sq_sum += d * d;
                    n += 1;
                }
            }
        }
    }
    let n = n.max(1) as f64;
    out[3] = (abs_sum / n, (sq_sum / n).sqrt());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_ignores_land() {
        let mut g = Graph::new();
        let pred3 = g.leaf(Tensor::full(&[1, 3, 2, 2, 1, 1], 10.0));
        let pred2 = g.leaf(Tensor::full(&[1, 1, 2, 2, 1], 10.0));
        let tgt3 = Tensor::zeros(&[1, 3, 2, 2, 1, 1]);
        let tgt2 = Tensor::zeros(&[1, 1, 2, 2, 1]);
        // Only cell (0,0) is water.
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2]);
        let loss = episode_loss(&mut g, pred3, pred2, &tgt3, &tgt2, &mask);
        // 3-D part: 3 channels × err² 100 over 1 water cell → 100;
        // 2-D part: 100. Total 200.
        assert!((g.value(loss).item() - 200.0).abs() < 1e-3);
        let grads = g.backward(loss);
        let gp = grads.get(pred3).unwrap();
        // Land-cell gradients are zero.
        assert_eq!(gp.at(&[0, 0, 1, 1, 0, 0]), 0.0);
        assert!(gp.at(&[0, 0, 0, 0, 0, 0]).abs() > 0.0);
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let mut g = Graph::new();
        let t3 = Tensor::full(&[1, 3, 2, 2, 1, 2], 0.7);
        let t2 = Tensor::full(&[1, 1, 2, 2, 2], -0.3);
        let pred3 = g.leaf(t3.clone());
        let pred2 = g.leaf(t2.clone());
        let mask = Tensor::ones(&[2, 2]);
        let loss = episode_loss(&mut g, pred3, pred2, &t3, &t2, &mask);
        assert!(g.value(loss).item().abs() < 1e-10);
    }

    #[test]
    fn evaluate_errors_known_values() {
        let pred3 = Tensor::full(&[1, 3, 1, 2, 1, 1], 1.0);
        let tgt3 = Tensor::zeros(&[1, 3, 1, 2, 1, 1]);
        let pred2 = Tensor::full(&[1, 1, 1, 2, 1], 3.0);
        let tgt2 = Tensor::full(&[1, 1, 1, 2, 1], 1.0);
        let mask = Tensor::ones(&[1, 2]);
        let e = evaluate_errors(&pred3, &tgt3, &pred2, &tgt2, &mask);
        for (c, (mae, rmse)) in e.iter().enumerate().take(3) {
            assert!((mae - 1.0).abs() < 1e-9, "mae {c}");
            assert!((rmse - 1.0).abs() < 1e-9, "rmse {c}");
        }
        assert!((e[3].0 - 2.0).abs() < 1e-9);
        assert!((e[3].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_errors_excludes_land() {
        let mut pred3 = Tensor::zeros(&[1, 3, 1, 2, 1, 1]);
        pred3.set(&[0, 0, 0, 1, 0, 0], 100.0); // land cell error
        let tgt3 = Tensor::zeros(&[1, 3, 1, 2, 1, 1]);
        let pred2 = Tensor::zeros(&[1, 1, 1, 2, 1]);
        let tgt2 = Tensor::zeros(&[1, 1, 1, 2, 1]);
        let mask = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let e = evaluate_errors(&pred3, &tgt3, &pred2, &tgt2, &mask);
        assert_eq!(e[0].0, 0.0, "land error must not count");
    }
}
