//! Patch embedding / recovery and positional encoding.
//!
//! All convolutions in this architecture have kernel == stride
//! (non-overlapping), so each is *exactly* a reshape/permute plus a linear
//! map — see DESIGN.md §4. Field tensors are `(B, C, H, W, D, T)`; token
//! tensors are channels-last `(B, H', W', D', T, E)`.

use ctensor::prelude::*;
use rand::rngs::StdRng;

/// Non-overlapping 3-D patch embedding: `(B, C, H, W, D, T)` →
/// `(B, H/ph, W/pw, D/pd, T, E)`. Inputs are zero-padded up to patch
/// multiples (the paper pads 898×598 → 900×600).
#[derive(Clone)]
pub struct PatchEmbed3d {
    pub proj: Linear,
    pub channels: usize,
    pub patch: [usize; 3],
}

impl PatchEmbed3d {
    pub fn new(
        name: &str,
        channels: usize,
        patch: [usize; 3],
        embed_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let in_features = channels * patch[0] * patch[1] * patch[2];
        Self {
            proj: Linear::new(&format!("{name}.proj"), in_features, embed_dim, true, rng),
            channels,
            patch,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 6, "expected (B,C,H,W,D,T), got {s:?}");
        let (b, c, h, w, d, t) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        assert_eq!(c, self.channels);
        let [ph, pw, pd] = self.patch;
        let (hp, wp, dp) = (
            h.div_ceil(ph) * ph,
            w.div_ceil(pw) * pw,
            d.div_ceil(pd) * pd,
        );
        let x = g.pad(
            x,
            &[
                (0, 0),
                (0, 0),
                (0, hp - h),
                (0, wp - w),
                (0, dp - d),
                (0, 0),
            ],
        );
        let (nh, nw, nd) = (hp / ph, wp / pw, dp / pd);
        let x = g.reshape(x, &[b, c, nh, ph, nw, pw, nd, pd, t]);
        // -> (B, nh, nw, nd, T, C, ph, pw, pd)
        let x = g.permute(x, &[0, 2, 4, 6, 8, 1, 3, 5, 7]);
        let x = g.reshape(x, &[b, nh, nw, nd, t, c * ph * pw * pd]);
        self.proj.forward(g, x)
    }
}

impl Module for PatchEmbed3d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PatchEmbed3d::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.proj.collect_params(out);
    }
}

/// Non-overlapping 2-D patch embedding for the surface variable:
/// `(B, C, H, W, T)` → `(B, H/ph, W/pw, 1, T, E)` (a depth-1 token plane
/// ready for concatenation under the 3-D planes).
#[derive(Clone)]
pub struct PatchEmbed2d {
    pub proj: Linear,
    pub channels: usize,
    pub patch: [usize; 2],
}

impl PatchEmbed2d {
    pub fn new(
        name: &str,
        channels: usize,
        patch: [usize; 2],
        embed_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let in_features = channels * patch[0] * patch[1];
        Self {
            proj: Linear::new(&format!("{name}.proj"), in_features, embed_dim, true, rng),
            channels,
            patch,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 5, "expected (B,C,H,W,T), got {s:?}");
        let (b, c, h, w, t) = (s[0], s[1], s[2], s[3], s[4]);
        assert_eq!(c, self.channels);
        let [ph, pw] = self.patch;
        let (hp, wp) = (h.div_ceil(ph) * ph, w.div_ceil(pw) * pw);
        let x = g.pad(x, &[(0, 0), (0, 0), (0, hp - h), (0, wp - w), (0, 0)]);
        let (nh, nw) = (hp / ph, wp / pw);
        let x = g.reshape(x, &[b, c, nh, ph, nw, pw, t]);
        // -> (B, nh, nw, T, C, ph, pw)
        let x = g.permute(x, &[0, 2, 4, 6, 1, 3, 5]);
        let x = g.reshape(x, &[b, nh, nw, t, c * ph * pw]);
        let x = self.proj.forward(g, x);
        let e = *g.value(x).shape().last().unwrap();
        g.reshape(x, &[b, nh, nw, 1, t, e])
    }
}

impl Module for PatchEmbed2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PatchEmbed2d::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.proj.collect_params(out);
    }
}

/// Absolute positional encoding: separate spatial `(1,H,W,D,1,E)` and
/// temporal `(1,1,1,1,T,E)` embeddings added by broadcasting (paper §III-C
/// "Positional encoding", following TimeSformer).
#[derive(Clone)]
pub struct PositionalEncoding {
    pub spatial: Param,
    pub temporal: Param,
}

impl PositionalEncoding {
    pub fn new(name: &str, dims: [usize; 4], embed: usize, rng: &mut StdRng) -> Self {
        let spatial =
            ctensor::init::trunc_normal(&[1, dims[0], dims[1], dims[2], 1, embed], 0.02, rng);
        let temporal = ctensor::init::trunc_normal(&[1, 1, 1, 1, dims[3], embed], 0.02, rng);
        Self {
            spatial: Param::new(format!("{name}.spatial"), spatial),
            temporal: Param::new(format!("{name}.temporal"), temporal),
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let sp = g.param(&self.spatial);
        let tp = g.param(&self.temporal);
        let x = g.add(x, sp);
        g.add(x, tp)
    }
}

impl Module for PositionalEncoding {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PositionalEncoding::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        out.push(self.spatial.clone());
        out.push(self.temporal.clone());
    }
}

/// Patch recovery for 3-D variables (paper: transposed conv + BN + GELU
/// then a 1×1 conv): tokens `(B, H', W', D', T, E)` →
/// `(B, C, H'·ph, W'·pw, D'·pd, T)`.
#[derive(Clone)]
pub struct PatchRecover3d {
    pub expand: Linear,
    pub bn: BatchNorm,
    pub head: Linear,
    pub channels: usize,
    pub patch: [usize; 3],
}

impl PatchRecover3d {
    pub fn new(
        name: &str,
        embed_dim: usize,
        channels: usize,
        patch: [usize; 3],
        rng: &mut StdRng,
    ) -> Self {
        let out_features = channels * patch[0] * patch[1] * patch[2];
        Self {
            expand: Linear::new(
                &format!("{name}.expand"),
                embed_dim,
                out_features,
                true,
                rng,
            ),
            bn: BatchNorm::new(&format!("{name}.bn"), channels),
            head: Linear::new(&format!("{name}.head"), channels, channels, true, rng),
            channels,
            patch,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 6);
        let (b, nh, nw, nd, t) = (s[0], s[1], s[2], s[3], s[4]);
        let [ph, pw, pd] = self.patch;
        let c = self.channels;
        // Transposed conv with kernel == stride: linear then pixel-shuffle.
        let x = self.expand.forward(g, x); // (B,nh,nw,nd,T, C*ph*pw*pd)
        let x = g.reshape(x, &[b, nh, nw, nd, t, c, ph, pw, pd]);
        // -> (B, C, nh, ph, nw, pw, nd, pd, T)
        let x = g.permute(x, &[0, 5, 1, 6, 2, 7, 3, 8, 4]);
        let x = g.reshape(x, &[b, c, nh * ph, nw * pw, nd * pd, t]);
        // BatchNorm over channels, then GELU, then the 1×1 conv (= linear
        // over channels at full resolution, channels-last).
        let x = self.bn.forward(g, x);
        let x = g.gelu(x);
        let x = g.permute(x, &[0, 2, 3, 4, 5, 1]); // channels last
        let x = self.head.forward(g, x);
        g.permute(x, &[0, 5, 1, 2, 3, 4])
    }
}

impl Module for PatchRecover3d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PatchRecover3d::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.expand.collect_params(out);
        self.bn.collect_params(out);
        self.head.collect_params(out);
    }
}

/// Patch recovery for the 2-D surface variable: tokens
/// `(B, H', W', 1, T, E)` → `(B, C, H'·ph, W'·pw, T)`.
#[derive(Clone)]
pub struct PatchRecover2d {
    pub expand: Linear,
    pub bn: BatchNorm,
    pub head: Linear,
    pub channels: usize,
    pub patch: [usize; 2],
}

impl PatchRecover2d {
    pub fn new(
        name: &str,
        embed_dim: usize,
        channels: usize,
        patch: [usize; 2],
        rng: &mut StdRng,
    ) -> Self {
        let out_features = channels * patch[0] * patch[1];
        Self {
            expand: Linear::new(
                &format!("{name}.expand"),
                embed_dim,
                out_features,
                true,
                rng,
            ),
            bn: BatchNorm::new(&format!("{name}.bn"), channels),
            head: Linear::new(&format!("{name}.head"), channels, channels, true, rng),
            channels,
            patch,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 6);
        let (b, nh, nw, nd, t) = (s[0], s[1], s[2], s[3], s[4]);
        assert_eq!(nd, 1, "2-D recovery expects a depth-1 token plane");
        let [ph, pw] = self.patch;
        let c = self.channels;
        let x = g.reshape(x, &[b, nh, nw, t, s[5]]);
        let x = self.expand.forward(g, x); // (B,nh,nw,T, C*ph*pw)
        let x = g.reshape(x, &[b, nh, nw, t, c, ph, pw]);
        // -> (B, C, nh, ph, nw, pw, T)
        let x = g.permute(x, &[0, 4, 1, 5, 2, 6, 3]);
        let x = g.reshape(x, &[b, c, nh * ph, nw * pw, t]);
        let x = self.bn.forward(g, x);
        let x = g.gelu(x);
        let x = g.permute(x, &[0, 2, 3, 4, 1]);
        let x = self.head.forward(g, x);
        g.permute(x, &[0, 4, 1, 2, 3])
    }
}

impl Module for PatchRecover2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PatchRecover2d::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.expand.collect_params(out);
        self.bn.collect_params(out);
        self.head.collect_params(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn embed3d_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = PatchEmbed3d::new("e", 3, [4, 4, 2], 16, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 3, 8, 12, 4, 5]));
        let y = e.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 2, 3, 2, 5, 16]);
    }

    #[test]
    fn embed3d_pads_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = PatchEmbed3d::new("e", 3, [4, 4, 2], 8, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[1, 3, 7, 9, 3, 2]));
        let y = e.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 2, 3, 2, 2, 8]);
    }

    #[test]
    fn embed2d_produces_depth1_plane() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = PatchEmbed2d::new("e", 1, [4, 4], 16, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 1, 8, 8, 5]));
        let y = e.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 2, 2, 1, 5, 16]);
    }

    #[test]
    fn embedding_is_patch_local() {
        // Changing one input cell only affects the token of its patch.
        let mut rng = StdRng::seed_from_u64(1);
        let e = PatchEmbed3d::new("e", 1, [2, 2, 2], 4, &mut rng);
        let base = Tensor::zeros(&[1, 1, 4, 4, 2, 1]);
        let mut bumped = base.clone();
        bumped.set(&[0, 0, 3, 3, 0, 0], 1.0); // patch (1,1,0)
        let run = |t: Tensor| {
            let mut g = Graph::inference();
            let x = g.constant(t);
            let y = e.forward(&mut g, x);
            g.value(y).clone()
        };
        let y0 = run(base);
        let y1 = run(bumped);
        for hh in 0..2 {
            for ww in 0..2 {
                let diff: f32 = (0..4)
                    .map(|c| (y0.at(&[0, hh, ww, 0, 0, c]) - y1.at(&[0, hh, ww, 0, 0, c])).abs())
                    .sum();
                if (hh, ww) == (1, 1) {
                    assert!(diff > 1e-6, "target patch must change");
                } else {
                    assert_eq!(diff, 0.0, "other patches must not change");
                }
            }
        }
    }

    #[test]
    fn recover3d_inverts_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = PatchRecover3d::new("r", 16, 3, [4, 4, 2], &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 2, 3, 2, 5, 16]));
        let y = r.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 3, 8, 12, 4, 5]);
    }

    #[test]
    fn recover2d_inverts_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = PatchRecover2d::new("r", 16, 1, [4, 4], &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones(&[2, 2, 2, 1, 5, 16]));
        let y = r.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 1, 8, 8, 5]);
    }

    #[test]
    fn positional_encoding_broadcasts() {
        let mut rng = StdRng::seed_from_u64(0);
        let pe = PositionalEncoding::new("pe", [2, 3, 2, 4], 8, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(Tensor::zeros(&[2, 2, 3, 2, 4, 8]));
        let y = pe.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 2, 3, 2, 4, 8]);
        // Same spatial position at different times differs only by the
        // temporal embedding -> spatial embedding recoverable.
        let yv = g.value(y);
        let a = yv.at(&[0, 1, 2, 0, 0, 3]);
        let b = yv.at(&[1, 1, 2, 0, 0, 3]);
        assert_eq!(a, b, "batch elements share the encoding");
    }

    #[test]
    fn grads_flow_through_embed_and_recover() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = PatchEmbed3d::new("e", 2, [2, 2, 2], 6, &mut rng);
        let r = PatchRecover3d::new("r", 6, 2, [2, 2, 2], &mut rng);
        let mut g = Graph::new();
        g.training = true;
        let x = g.constant(ctensor::init::randn(&[1, 2, 4, 4, 2, 3], 1.0, &mut rng));
        let tokens = e.forward(&mut g, x);
        let back = r.forward(&mut g, tokens);
        let sq = g.square(back);
        let loss = g.mean_all(sq);
        g.backward(loss);
        for p in e.params().iter().chain(r.params().iter()) {
            assert!(p.grad().is_some(), "missing grad for {}", p.name());
        }
    }
}
