//! U-Net-style decoder: transposed-conv upsampling with batch norm, GELU
//! and encoder skip connections (paper §III-C "Decoder", Fig. 2).
//!
//! Each upsampling step doubles the three spatial token axes and halves
//! the channels. A kernel-2/stride-2 transposed convolution over tokens is
//! exactly "linear to 8·C_out channels + pixel shuffle" (DESIGN.md §4).

use ctensor::prelude::*;
use rand::rngs::StdRng;

use crate::config::Win4;

/// One decoder level: upsample ×2 spatially, fuse the encoder skip, then
/// BatchNorm + GELU (transposed-conv block of the paper).
#[derive(Clone)]
pub struct UpsampleBlock {
    pub expand: Linear,
    pub bn: BatchNorm,
    /// Linear applied after concatenating the skip connection
    /// (`2·C_out → C_out`), fusing fine-grained encoder features.
    pub fuse: Linear,
    pub out_dim: usize,
}

impl UpsampleBlock {
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            expand: Linear::new(&format!("{name}.expand"), in_dim, 8 * out_dim, true, rng),
            bn: BatchNorm::new(&format!("{name}.bn"), out_dim),
            fuse: Linear::new(&format!("{name}.fuse"), 2 * out_dim, out_dim, true, rng),
            out_dim,
        }
    }

    /// `x`: coarse tokens `(B, H, W, D, T, C_in)`; `skip`: encoder tokens
    /// `(B, H2, W2, D2, T, C_out)` at the target resolution (upsampled
    /// output is cropped to the skip's extents before fusion).
    pub fn forward(&self, g: &mut Graph, x: Var, skip: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 6);
        let (b, h, w, d, t) = (s[0], s[1], s[2], s[3], s[4]);
        let target = g.value(skip).shape().to_vec();
        assert_eq!(target.len(), 6);
        assert_eq!(target[5], self.out_dim, "skip channel mismatch");

        // Transposed conv k=s=2 over the three spatial axes.
        let x = self.expand.forward(g, x); // (B,H,W,D,T, 8*C)
        let x = g.reshape(x, &[b, h, w, d, t, 2, 2, 2, self.out_dim]);
        // -> (B, H,2, W,2, D,2, T, C)
        let x = g.permute(x, &[0, 1, 5, 2, 6, 3, 7, 4, 8]);
        let x = g.reshape(x, &[b, 2 * h, 2 * w, 2 * d, t, self.out_dim]);

        // Crop to the skip's (possibly odd) extents.
        let mut x = x;
        for (axis, &dim) in target[1..5].iter().enumerate() {
            let cur = g.value(x).shape()[axis + 1];
            if cur != dim {
                assert!(cur > dim, "upsample produced {cur} < target {dim}");
                x = g.narrow(x, axis + 1, 0, dim);
            }
        }

        // BatchNorm over channels (tokens are channels-last: fold
        // everything else into the batch axis).
        let n: usize = target[..5].iter().product();
        let flat = g.reshape(x, &[n, self.out_dim]);
        let normed = self.bn.forward(g, flat);
        let act = g.gelu(normed);
        let x = g.reshape(act, &target);

        // Skip fusion: concat along channels, linear back to C_out.
        let cat = g.concat(&[x, skip], 5);
        self.fuse.forward(g, cat)
    }
}

impl Module for UpsampleBlock {
    fn forward(&self, _g: &mut Graph, _x: Var) -> Var {
        panic!("UpsampleBlock requires a skip connection; call forward(g, x, skip)");
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.expand.collect_params(out);
        self.bn.collect_params(out);
        self.fuse.collect_params(out);
    }
}

/// Token extents after one ×2 spatial upsample cropped to `target`.
pub fn upsampled_dims(coarse: Win4, target: Win4) -> Win4 {
    [
        (2 * coarse[0]).min(target[0]),
        (2 * coarse[1]).min(target[1]),
        (2 * coarse[2]).min(target[2]),
        coarse[3],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn upsample_matches_skip_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let up = UpsampleBlock::new("u", 16, 8, &mut rng);
        let mut g = Graph::inference();
        let coarse = g.constant(ctensor::init::randn(&[2, 2, 3, 1, 4, 16], 0.5, &mut rng));
        let skip = g.constant(ctensor::init::randn(&[2, 3, 5, 2, 4, 8], 0.5, &mut rng));
        let y = up.forward(&mut g, coarse, skip);
        assert_eq!(g.value(y).shape(), &[2, 3, 5, 2, 4, 8]);
    }

    #[test]
    fn exact_double_no_crop() {
        let mut rng = StdRng::seed_from_u64(1);
        let up = UpsampleBlock::new("u", 8, 4, &mut rng);
        let mut g = Graph::inference();
        let coarse = g.constant(ctensor::init::randn(&[1, 2, 2, 1, 3, 8], 0.5, &mut rng));
        let skip = g.constant(ctensor::init::randn(&[1, 4, 4, 2, 3, 4], 0.5, &mut rng));
        let y = up.forward(&mut g, coarse, skip);
        assert_eq!(g.value(y).shape(), &[1, 4, 4, 2, 3, 4]);
    }

    #[test]
    fn grads_reach_both_paths() {
        let mut rng = StdRng::seed_from_u64(2);
        let up = UpsampleBlock::new("u", 8, 4, &mut rng);
        let mut g = Graph::new();
        g.training = true;
        let coarse = g.leaf(ctensor::init::randn(&[1, 2, 2, 1, 2, 8], 0.5, &mut rng));
        let skip = g.leaf(ctensor::init::randn(&[1, 4, 4, 2, 2, 4], 0.5, &mut rng));
        let y = up.forward(&mut g, coarse, skip);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(coarse).is_some(), "grad must reach coarse input");
        assert!(grads.get(skip).is_some(), "grad must reach the skip");
        for p in up.params() {
            assert!(p.grad().is_some(), "missing grad: {}", p.name());
        }
    }

    #[test]
    fn skip_changes_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let up = UpsampleBlock::new("u", 8, 4, &mut rng);
        let coarse0 = ctensor::init::randn(&[1, 2, 2, 1, 2, 8], 0.5, &mut rng);
        let skip_a = ctensor::init::randn(&[1, 4, 4, 2, 2, 4], 0.5, &mut rng);
        let skip_b = skip_a.add_scalar(1.0);
        let run = |skip: Tensor| {
            let mut g = Graph::inference();
            let c = g.constant(coarse0.clone());
            let s = g.constant(skip);
            let y = up.forward(&mut g, c, s);
            g.value(y).clone()
        };
        let ya = run(skip_a);
        let yb = run(skip_b);
        assert!(ya.max_abs_diff(&yb) > 1e-4, "skip must influence output");
    }

    #[test]
    fn upsampled_dims_math() {
        assert_eq!(upsampled_dims([2, 3, 1, 4], [3, 5, 2, 4]), [3, 5, 2, 4]);
        assert_eq!(upsampled_dims([2, 2, 1, 4], [4, 4, 2, 4]), [4, 4, 2, 4]);
    }
}
