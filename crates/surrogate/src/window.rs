//! 4-D window partitioning, cyclic shifting and shifted-window attention
//! masks (paper §III-C, Fig. 3).
//!
//! Token tensors are channels-last: `(B, H, W, D, T, E)`. A window of
//! extent `(wh, ww, wd, wt)` groups `N = wh·ww·wd·wt` tokens; partitioning
//! yields `(B·nW, N, E)` ready for [`ctensor::nn::MultiHeadAttention`].

use ctensor::prelude::*;

use crate::config::Win4;

/// Round `dims` up to multiples of `win` (the pad applied before
/// partitioning).
pub fn padded_dims(dims: Win4, win: Win4) -> Win4 {
    [
        dims[0].div_ceil(win[0]) * win[0],
        dims[1].div_ceil(win[1]) * win[1],
        dims[2].div_ceil(win[2]) * win[2],
        dims[3].div_ceil(win[3]) * win[3],
    ]
}

/// Number of windows after padding.
pub fn window_count(dims: Win4, win: Win4) -> usize {
    let p = padded_dims(dims, win);
    (p[0] / win[0]) * (p[1] / win[1]) * (p[2] / win[2]) * (p[3] / win[3])
}

/// Partition `(B, H, W, D, T, E)` into `(B·nW, N, E)` windows, zero-padding
/// the grid to window multiples first.
pub fn window_partition(g: &mut Graph, x: Var, dims: Win4, win: Win4) -> Var {
    let shape = g.value(x).shape().to_vec();
    assert_eq!(shape.len(), 6, "expected (B,H,W,D,T,E), got {shape:?}");
    let b = shape[0];
    let e = shape[5];
    assert_eq!(&shape[1..5], &dims, "dims mismatch");
    let p = padded_dims(dims, win);
    let x = g.pad(
        x,
        &[
            (0, 0),
            (0, p[0] - dims[0]),
            (0, p[1] - dims[1]),
            (0, p[2] - dims[2]),
            (0, p[3] - dims[3]),
            (0, 0),
        ],
    );
    let (n0, n1, n2, n3) = (p[0] / win[0], p[1] / win[1], p[2] / win[2], p[3] / win[3]);
    let x = g.reshape(x, &[b, n0, win[0], n1, win[1], n2, win[2], n3, win[3], e]);
    // (B, n0, w0, n1, w1, n2, w2, n3, w3, E)
    //  0   1   2   3   4   5   6   7   8  9
    let x = g.permute(x, &[0, 1, 3, 5, 7, 2, 4, 6, 8, 9]);
    let n_windows = n0 * n1 * n2 * n3;
    let n_tokens = win[0] * win[1] * win[2] * win[3];
    g.reshape(x, &[b * n_windows, n_tokens, e])
}

/// Inverse of [`window_partition`]: `(B·nW, N, E)` back to
/// `(B, H, W, D, T, E)` with padding removed.
pub fn window_reverse(g: &mut Graph, x: Var, b: usize, dims: Win4, win: Win4) -> Var {
    let p = padded_dims(dims, win);
    let (n0, n1, n2, n3) = (p[0] / win[0], p[1] / win[1], p[2] / win[2], p[3] / win[3]);
    let e = *g.value(x).shape().last().unwrap();
    let x = g.reshape(x, &[b, n0, n1, n2, n3, win[0], win[1], win[2], win[3], e]);
    // -> (B, n0, w0, n1, w1, n2, w2, n3, w3, E)
    let x = g.permute(x, &[0, 1, 5, 2, 6, 3, 7, 4, 8, 9]);
    let x = g.reshape(x, &[b, p[0], p[1], p[2], p[3], e]);
    let mut out = x;
    for (axis, (&pd, &d)) in p.iter().zip(&dims).enumerate() {
        if pd != d {
            out = g.narrow(out, axis + 1, 0, d);
        }
    }
    out
}

/// Effective SW-MSA shift per axis: `win/2`, but 0 where a single window
/// already covers the whole (padded) axis — shifting there would only
/// create spurious seams (matching the reference Video-Swin behavior).
pub fn effective_shift(dims: Win4, win: Win4) -> Win4 {
    let p = padded_dims(dims, win);
    let mut s = [0; 4];
    for a in 0..4 {
        s[a] = if p[a] > win[a] { win[a] / 2 } else { 0 };
    }
    s
}

/// Cyclic shift by `-effective_shift` along the four token axes (SW-MSA
/// forward shift). `sign = +1` restores.
pub fn cyclic_shift(g: &mut Graph, x: Var, dims: Win4, win: Win4, sign: isize) -> Var {
    let s = effective_shift(dims, win);
    let shifts: Vec<isize> = std::iter::once(0)
        .chain(s.iter().map(|&v| sign * (v as isize)))
        .chain(std::iter::once(0))
        .collect();
    if shifts.iter().all(|&v| v == 0) {
        return x;
    }
    g.roll(x, &shifts)
}

/// Build the additive attention mask `(nW, N, N)`: 0 where a token pair
/// may attend, `-1e9` otherwise.
///
/// Derivation on the *rolled* grid (roll by `-s`): position `i` holds the
/// token originally at `(i + s) mod plen`. Two tokens in a window may
/// attend iff neither is padding and no wrap seam separates them. Each
/// axis therefore gets labels: 0 = unwrapped content, 1 = wrapped content
/// (positions `>= plen - s`), 2 = padding; composite labels must match
/// for a pair to attend.
///
/// With `shifted = false` this yields the plain W-MSA mask (padding only —
/// all zeros when the grid divides evenly).
pub fn attention_mask(dims: Win4, win: Win4, shifted: bool) -> Tensor {
    let p = padded_dims(dims, win);
    let shift = if shifted {
        effective_shift(dims, win)
    } else {
        [0; 4]
    };

    // Per-axis labels on the rolled grid.
    let label_axis = |len: usize, plen: usize, s: usize| -> Vec<usize> {
        (0..plen)
            .map(|i| {
                let orig = (i + s) % plen;
                if orig >= len {
                    2 // padding
                } else if s > 0 && i >= plen - s {
                    1 // wrapped across the seam
                } else {
                    0
                }
            })
            .collect()
    };
    let l0 = label_axis(dims[0], p[0], shift[0]);
    let l1 = label_axis(dims[1], p[1], shift[1]);
    let l2 = label_axis(dims[2], p[2], shift[2]);
    let l3 = label_axis(dims[3], p[3], shift[3]);

    let (n0, n1, n2, n3) = (p[0] / win[0], p[1] / win[1], p[2] / win[2], p[3] / win[3]);
    let n_windows = n0 * n1 * n2 * n3;
    let n_tokens = win[0] * win[1] * win[2] * win[3];

    // Composite label per token of each window (base 3 per axis).
    let mut labels = vec![0usize; n_windows * n_tokens];
    let mut widx = 0;
    for b0 in 0..n0 {
        for b1 in 0..n1 {
            for b2 in 0..n2 {
                for b3 in 0..n3 {
                    let mut tidx = 0;
                    for i0 in 0..win[0] {
                        for i1 in 0..win[1] {
                            for i2 in 0..win[2] {
                                for i3 in 0..win[3] {
                                    let lab = ((l0[b0 * win[0] + i0] * 3 + l1[b1 * win[1] + i1])
                                        * 3
                                        + l2[b2 * win[2] + i2])
                                        * 3
                                        + l3[b3 * win[3] + i3];
                                    labels[widx * n_tokens + tidx] = lab;
                                    tidx += 1;
                                }
                            }
                        }
                    }
                    widx += 1;
                }
            }
        }
    }

    let mut mask = vec![0.0f32; n_windows * n_tokens * n_tokens];
    for w in 0..n_windows {
        let lab = &labels[w * n_tokens..(w + 1) * n_tokens];
        for i in 0..n_tokens {
            for j in 0..n_tokens {
                if lab[i] != lab[j] {
                    mask[(w * n_tokens + i) * n_tokens + j] = -1e9;
                }
            }
        }
    }
    Tensor::from_vec(mask, &[n_windows, n_tokens, n_tokens])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_tensor(b: usize, dims: Win4, e: usize) -> Tensor {
        let n = b * dims[0] * dims[1] * dims[2] * dims[3] * e;
        Tensor::from_vec(
            (0..n).map(|i| (i % 97) as f32 * 0.01).collect(),
            &[b, dims[0], dims[1], dims[2], dims[3], e],
        )
    }

    #[test]
    fn partition_reverse_roundtrip_exact_fit() {
        let dims = [4, 4, 2, 2];
        let win = [2, 2, 2, 2];
        let x0 = token_tensor(2, dims, 3);
        let mut g = Graph::inference();
        let x = g.constant(x0.clone());
        let w = window_partition(&mut g, x, dims, win);
        assert_eq!(g.value(w).shape(), &[2 * window_count(dims, win), 16, 3]);
        let back = window_reverse(&mut g, w, 2, dims, win);
        assert_eq!(g.value(back).as_slice(), x0.as_slice());
    }

    #[test]
    fn partition_reverse_roundtrip_with_padding() {
        let dims = [5, 3, 3, 2]; // none divisible by the window
        let win = [4, 2, 2, 2];
        let x0 = token_tensor(1, dims, 2);
        let mut g = Graph::inference();
        let x = g.constant(x0.clone());
        let w = window_partition(&mut g, x, dims, win);
        let back = window_reverse(&mut g, w, 1, dims, win);
        assert_eq!(g.value(back).shape(), &[1, 5, 3, 3, 2, 2]);
        assert_eq!(g.value(back).as_slice(), x0.as_slice());
    }

    #[test]
    fn windows_group_local_tokens() {
        // With E=1 and a linear ramp along axis 0, each window's tokens
        // must all come from the same contiguous axis-0 slab.
        let dims = [4, 2, 2, 2];
        let win = [2, 2, 2, 2];
        let mut vals = vec![0.0f32; 4 * 2 * 2 * 2];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i / (2 * 2 * 2)) as f32; // axis-0 index
        }
        let x0 = Tensor::from_vec(vals, &[1, 4, 2, 2, 2, 1]);
        let mut g = Graph::inference();
        let x = g.constant(x0);
        let w = window_partition(&mut g, x, dims, win);
        let wv = g.value(w);
        // 2 windows × 16 tokens; window 0 must only contain slab {0,1},
        // window 1 only {2,3}.
        for t in 0..16 {
            assert!(wv.at(&[0, t, 0]) <= 1.0);
            assert!(wv.at(&[1, t, 0]) >= 2.0);
        }
    }

    #[test]
    fn cyclic_shift_roundtrip() {
        let dims = [4, 4, 2, 2];
        let win = [2, 2, 2, 2];
        let x0 = token_tensor(1, dims, 2);
        let mut g = Graph::inference();
        let x = g.constant(x0.clone());
        let s = cyclic_shift(&mut g, x, dims, win, -1);
        assert_ne!(g.value(s).as_slice(), x0.as_slice());
        let back = cyclic_shift(&mut g, s, dims, win, 1);
        assert_eq!(g.value(back).as_slice(), x0.as_slice());
    }

    #[test]
    fn effective_shift_zeroes_covered_axes() {
        assert_eq!(effective_shift([8, 4, 2, 2], [4, 4, 2, 2]), [2, 0, 0, 0]);
        assert_eq!(effective_shift([8, 8, 4, 4], [2, 2, 2, 2]), [1, 1, 1, 1]);
    }

    #[test]
    fn mask_shape_and_symmetry() {
        let dims = [4, 4, 2, 2];
        let win = [2, 2, 2, 2];
        let m = attention_mask(dims, win, true);
        let nw = window_count(dims, win);
        assert_eq!(m.shape(), &[nw, 16, 16]);
        // Mask is symmetric and zero on the diagonal.
        for w in 0..nw {
            for i in 0..16 {
                assert_eq!(m.at(&[w, i, i]), 0.0);
                for j in 0..16 {
                    assert_eq!(m.at(&[w, i, j]), m.at(&[w, j, i]));
                }
            }
        }
    }

    #[test]
    fn seam_window_masks_wrapped_pairs_others_free() {
        // One shifted axis of 8 with window 4: only the window containing
        // the wrap seam may mask.
        let dims = [8, 2, 2, 2];
        let win = [4, 2, 2, 2];
        let m = attention_mask(dims, win, true);
        let nw = m.shape()[0];
        assert_eq!(nw, 2);
        let masked_pairs = |w: usize| {
            let n = m.shape()[1];
            (0..n)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .filter(|&(i, j)| m.at(&[w, i, j]) < -1.0)
                .count()
        };
        // With shift 2: rolled positions [0..6) unwrapped, [6..8) wrapped.
        // Window 0 covers positions 0..4 (labels all 0) → free; window 1
        // covers 4..8 (labels 0,0,1,1 along axis 0) → masked pairs.
        assert_eq!(masked_pairs(0), 0, "bulk window must be free");
        assert!(masked_pairs(1) > 0, "seam window must mask wrapped pairs");
    }

    #[test]
    fn unshifted_mask_zero_without_padding() {
        let m = attention_mask([4, 4, 2, 2], [2, 2, 2, 2], false);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn padding_masked_even_unshifted() {
        // Axis 0 of 3 padded to 4: pad tokens must not mix with real ones.
        let m = attention_mask([3, 2, 2, 2], [4, 2, 2, 2], false);
        assert_eq!(m.shape()[0], 1);
        let neg = m.as_slice().iter().filter(|&&v| v < -1.0).count();
        assert!(neg > 0, "pad tokens must be masked off");
    }

    #[test]
    fn window_covering_axis_gets_no_shift_mask() {
        // Axis fully covered by the window: effective shift 0 → no seam.
        let m = attention_mask([2, 2, 2, 2], [2, 2, 2, 2], true);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
