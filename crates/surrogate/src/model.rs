//! The 4D Swin Transformer surrogate (paper Fig. 2): encoder-decoder over
//! the four tidal variables, with optional activation checkpointing.

use ctensor::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::block::{merged_dims, PatchMerge, SwinStage};
use crate::config::{SwinConfig, Win4};
use crate::decoder::UpsampleBlock;
use crate::embed::{
    PatchEmbed2d, PatchEmbed3d, PatchRecover2d, PatchRecover3d, PositionalEncoding,
};

/// Activation-checkpointing policy (paper §III-D: keep the SW-MSA
/// activations, discard and recompute the rest).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Keep every activation on the tape.
    None,
    /// Checkpoint the W-MSA blocks (recomputed in backward); SW-MSA blocks
    /// stay resident.
    DiscardWMsa,
}

/// The surrogate model.
#[derive(Clone)]
pub struct SwinSurrogate {
    pub cfg: SwinConfig,
    pub embed3d: PatchEmbed3d,
    pub embed2d: PatchEmbed2d,
    pub pos: PositionalEncoding,
    pub stages: Vec<SwinStage>,
    pub merges: Vec<PatchMerge>,
    pub ups: Vec<UpsampleBlock>,
    pub recover3d: PatchRecover3d,
    pub recover2d: PatchRecover2d,
    pub checkpoint: CheckpointPolicy,
    /// Token extents per stage.
    stage_dims: Vec<Win4>,
}

impl SwinSurrogate {
    /// Build the model with deterministic initialization.
    pub fn new(cfg: SwinConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let e = cfg.embed_dim;
        let embed3d = PatchEmbed3d::new("embed3d", 3, cfg.patch, e, &mut rng);
        let embed2d = PatchEmbed2d::new("embed2d", 1, [cfg.patch[0], cfg.patch[1]], e, &mut rng);

        let grid = cfg.token_grid();
        let dims0: Win4 = [grid.0, grid.1, grid.2, grid.3];
        let pos = PositionalEncoding::new("pos", dims0, e, &mut rng);

        let mut stage_dims = vec![dims0];
        let mut stages = Vec::new();
        let mut merges = Vec::new();
        for s in 0..cfg.n_stages() {
            let dims = stage_dims[s];
            stages.push(SwinStage::new(
                &format!("enc{s}"),
                cfg.dim_at(s),
                cfg.num_heads[s],
                1,
                dims,
                cfg.window_at(s),
                cfg.mlp_ratio,
                &mut rng,
            ));
            if s + 1 < cfg.n_stages() {
                merges.push(PatchMerge::new(
                    &format!("merge{s}"),
                    cfg.dim_at(s),
                    &mut rng,
                ));
                stage_dims.push(merged_dims(dims));
            }
        }

        let mut ups = Vec::new();
        for s in (0..cfg.n_stages() - 1).rev() {
            ups.push(UpsampleBlock::new(
                &format!("up{s}"),
                cfg.dim_at(s + 1),
                cfg.dim_at(s),
                &mut rng,
            ));
        }

        let recover3d = PatchRecover3d::new("recover3d", e, 3, cfg.patch, &mut rng);
        let recover2d =
            PatchRecover2d::new("recover2d", e, 1, [cfg.patch[0], cfg.patch[1]], &mut rng);

        Self {
            cfg,
            embed3d,
            embed2d,
            pos,
            stages,
            merges,
            ups,
            recover3d,
            recover2d,
            checkpoint: CheckpointPolicy::None,
            stage_dims,
        }
    }

    /// Rebuild a model from a configuration plus a parameter snapshot
    /// (as produced by [`state_dict`]). The seed used for construction is
    /// irrelevant: every parameter is overwritten by `state`. For an
    /// *exact* reconstruction of a trained model also restore the
    /// non-trainable buffers ([`Self::buffers`] / [`Self::load_buffers`]):
    /// BatchNorm running statistics live outside the state dict.
    ///
    /// This is the thread-migration path: parameters are `Rc`-shared and
    /// thus thread-local, but `state_dict` tensors are `Send`, so a model
    /// can be shipped across threads as `(SwinConfig, Vec<Tensor>)` and
    /// reconstructed exactly on the other side.
    pub fn from_state(cfg: SwinConfig, state: &[Tensor]) -> Self {
        // Skip the (trunc-normal rejection-sampling) random init: every
        // parameter is overwritten by `state` — `load_state_dict` asserts
        // full coverage — so construct the skeleton with zero fills. This
        // keeps serve-pool worker spin-up off the request-latency path.
        let model = {
            let _defer = ctensor::init::defer();
            Self::new(cfg, 0)
        };
        load_state_dict(&model, state);
        model
    }

    /// Every BatchNorm in forward order (upsample blocks, then the two
    /// recovery heads) — the modules that carry non-parameter buffers.
    fn batch_norms(&self) -> Vec<&ctensor::nn::BatchNorm> {
        let mut v: Vec<&ctensor::nn::BatchNorm> = self.ups.iter().map(|u| &u.bn).collect();
        v.push(&self.recover3d.bn);
        v.push(&self.recover2d.bn);
        v
    }

    /// Non-trainable buffers (BatchNorm running mean/var, interleaved) in
    /// a deterministic order matching [`Self::load_buffers`].
    pub fn buffers(&self) -> Vec<Tensor> {
        self.batch_norms()
            .into_iter()
            .flat_map(|bn| {
                let (mean, var) = bn.running_stats();
                [mean, var]
            })
            .collect()
    }

    /// Restore buffers captured by [`Self::buffers`].
    pub fn load_buffers(&self, buffers: &[Tensor]) {
        let bns = self.batch_norms();
        assert_eq!(buffers.len(), 2 * bns.len(), "buffer count mismatch");
        for (bn, pair) in bns.into_iter().zip(buffers.chunks_exact(2)) {
            bn.set_running_stats(pair[0].clone(), pair[1].clone());
        }
    }

    /// Forward pass.
    ///
    /// `x3d`: `(B, 3, ny, nx, nz, T+1)` — frame 0 is the full initial
    /// condition, frames 1..=T carry boundary conditions (interior zeros).
    /// `x2d`: `(B, 1, ny, nx, T+1)` likewise for ζ.
    ///
    /// Returns `(pred3d, pred2d)`: `(B, 3, ny, nx, nz, T)` and
    /// `(B, 1, ny, nx, T)` — the T forecast frames.
    ///
    /// The whole pass runs under the backend this model's config selects
    /// (`cfg.backend`), overriding the thread's default for its duration.
    pub fn forward(&self, g: &mut Graph, x3d: Var, x2d: Var) -> (Var, Var) {
        let _backend = ctensor::backend::scoped(self.cfg.backend.resolve());
        let cfg = &self.cfg;
        let t_in = cfg.t_in();
        {
            let s3 = g.value(x3d).shape();
            assert_eq!(
                s3,
                &[s3[0], 3, cfg.ny, cfg.nx, cfg.nz, t_in],
                "x3d shape mismatch"
            );
        }
        let b = g.value(x3d).shape()[0];

        // ---------------------------------------------------------- encode
        let t3 = self.embed3d.forward(g, x3d);
        let t2 = self.embed2d.forward(g, x2d);
        let tokens = g.concat(&[t3, t2], 3); // depth axis
        let mut x = self.pos.forward(g, tokens);

        let mut skips: Vec<Var> = Vec::with_capacity(self.stages.len());
        for (s, stage) in self.stages.iter().enumerate() {
            x = self.run_stage(g, stage, x);
            skips.push(x);
            if s + 1 < self.stages.len() {
                x = self.merges[s].forward(g, x);
            }
        }

        // ---------------------------------------------------------- decode
        for (k, up) in self.ups.iter().enumerate() {
            let skip = skips[self.stages.len() - 2 - k];
            x = up.forward(g, x, skip);
        }

        // Split 3-D planes from the ζ plane along depth.
        let d3 = self.stage_dims[0][2] - 1;
        let x3 = g.narrow(x, 3, 0, d3);
        let x2 = g.narrow(x, 3, d3, 1);

        let out3 = self.recover3d.forward(g, x3); // (B,3,Hp,Wp,Dp,T+1)
        let out2 = self.recover2d.forward(g, x2); // (B,1,Hp,Wp,T+1)

        // Crop spatial padding, drop the initial-condition frame.
        let out3 = crop_to(g, out3, &[b, 3, cfg.ny, cfg.nx, cfg.nz, t_in]);
        let out3 = g.narrow(out3, 5, 1, cfg.t_out);
        let out2 = crop_to(g, out2, &[b, 1, cfg.ny, cfg.nx, t_in]);
        let out2 = g.narrow(out2, 4, 1, cfg.t_out);
        (out3, out2)
    }

    fn run_stage(&self, g: &mut Graph, stage: &SwinStage, x: Var) -> Var {
        match self.checkpoint {
            CheckpointPolicy::None => stage.forward(g, x),
            CheckpointPolicy::DiscardWMsa => {
                let mut cur = x;
                for pair in &stage.pairs {
                    // W-MSA block checkpointed: its activations are
                    // recomputed during backward.
                    let blk = pair.w_block.clone();
                    let dims = stage.dims;
                    let mask = stage.mask_plain().clone();
                    cur = g.checkpoint(&[cur], move |g, ins| blk.forward(g, ins[0], dims, &mask));
                    // SW-MSA block stays resident (the expensive one to
                    // recompute, per the paper).
                    cur = pair
                        .sw_block
                        .forward(g, cur, stage.dims, stage.mask_shifted());
                }
                cur
            }
        }
    }

    /// Parameters of the encoder side (embeddings, positional encoding,
    /// stages, merges) — the paper's Table IV splits parameter counts into
    /// encoder + decoder.
    pub fn encoder_parameters(&self) -> usize {
        let mut v = Vec::new();
        self.embed3d.collect_params(&mut v);
        self.embed2d.collect_params(&mut v);
        self.pos.collect_params(&mut v);
        for s in &self.stages {
            s.collect_params(&mut v);
        }
        for m in &self.merges {
            m.collect_params(&mut v);
        }
        v.iter().map(|p| p.numel()).sum()
    }

    /// Parameters of the decoder side (upsampling + recovery heads).
    pub fn decoder_parameters(&self) -> usize {
        let mut v = Vec::new();
        for u in &self.ups {
            u.collect_params(&mut v);
        }
        self.recover3d.collect_params(&mut v);
        self.recover2d.collect_params(&mut v);
        v.iter().map(|p| p.numel()).sum()
    }
}

/// Narrow every axis of `x` down to `target` (no-op where equal).
fn crop_to(g: &mut Graph, mut x: Var, target: &[usize]) -> Var {
    let shape = g.value(x).shape().to_vec();
    assert_eq!(shape.len(), target.len());
    for (axis, (&cur, &want)) in shape.iter().zip(target).enumerate() {
        if cur != want {
            assert!(cur > want, "axis {axis}: have {cur}, want {want}");
            x = g.narrow(x, axis, 0, want);
        }
    }
    x
}

impl Module for SwinSurrogate {
    fn forward(&self, _g: &mut Graph, _x: Var) -> Var {
        panic!("SwinSurrogate takes two inputs; call forward(g, x3d, x2d)");
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.embed3d.collect_params(out);
        self.embed2d.collect_params(out);
        self.pos.collect_params(out);
        for s in &self.stages {
            s.collect_params(out);
        }
        for m in &self.merges {
            m.collect_params(out);
        }
        for u in &self.ups {
            u.collect_params(out);
        }
        self.recover3d.collect_params(out);
        self.recover2d.collect_params(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SwinConfig {
        SwinConfig::tiny(8, 8, 4, 3)
    }

    fn inputs(cfg: &SwinConfig, b: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x3 = ctensor::init::randn(&[b, 3, cfg.ny, cfg.nx, cfg.nz, cfg.t_in()], 0.5, &mut rng);
        let x2 = ctensor::init::randn(&[b, 1, cfg.ny, cfg.nx, cfg.t_in()], 0.5, &mut rng);
        (x3, x2)
    }

    #[test]
    fn forward_shapes() {
        let cfg = tiny();
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let (x3, x2) = inputs(&cfg, 2, 1);
        let mut g = Graph::inference();
        let a = g.constant(x3);
        let b = g.constant(x2);
        let (o3, o2) = model.forward(&mut g, a, b);
        assert_eq!(g.value(o3).shape(), &[2, 3, 8, 8, 4, 3]);
        assert_eq!(g.value(o2).shape(), &[2, 1, 8, 8, 3]);
        assert!(g.value(o3).all_finite());
        assert!(g.value(o2).all_finite());
    }

    #[test]
    fn deterministic_construction() {
        let cfg = tiny();
        let m1 = SwinSurrogate::new(cfg.clone(), 7);
        let m2 = SwinSurrogate::new(cfg, 7);
        for (a, b) in m1.params().iter().zip(m2.params().iter()) {
            assert_eq!(a.value().as_slice(), b.value().as_slice());
        }
    }

    #[test]
    fn encoder_decoder_param_split_adds_up() {
        let model = SwinSurrogate::new(tiny(), 0);
        assert_eq!(
            model.encoder_parameters() + model.decoder_parameters(),
            model.num_parameters()
        );
        assert!(model.num_parameters() > 1000);
    }

    #[test]
    fn training_step_produces_all_grads() {
        let cfg = tiny();
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let (x3, x2) = inputs(&cfg, 1, 2);
        let mut g = Graph::new();
        g.training = true;
        let a = g.constant(x3);
        let b = g.constant(x2);
        let (o3, o2) = model.forward(&mut g, a, b);
        let t3 = g.constant(Tensor::zeros(&[1, 3, 8, 8, 4, 3]));
        let t2 = g.constant(Tensor::zeros(&[1, 1, 8, 8, 3]));
        let l3 = g.mse_loss(o3, t3);
        let l2 = g.mse_loss(o2, t2);
        let loss = g.add(l3, l2);
        g.backward(loss);
        let missing: Vec<String> = model
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(|p| p.name())
            .collect();
        assert!(missing.is_empty(), "params without grads: {missing:?}");
    }

    #[test]
    fn checkpointing_matches_plain_loss_and_grads() {
        let cfg = tiny();
        let (x3, x2) = inputs(&cfg, 1, 3);

        let run = |policy: CheckpointPolicy| {
            let mut model = SwinSurrogate::new(cfg.clone(), 0);
            model.checkpoint = policy;
            let mut g = Graph::new();
            g.training = true;
            let a = g.constant(x3.clone());
            let b = g.constant(x2.clone());
            let (o3, o2) = model.forward(&mut g, a, b);
            let t3 = g.constant(Tensor::full(&[1, 3, 8, 8, 4, 3], 0.1));
            let t2 = g.constant(Tensor::full(&[1, 1, 8, 8, 3], 0.1));
            let l3 = g.mse_loss(o3, t3);
            let l2 = g.mse_loss(o2, t2);
            let loss = g.add(l3, l2);
            let lv = g.value(loss).item();
            g.backward(loss);
            let grads: Vec<Tensor> = model.params().iter().map(|p| p.grad().unwrap()).collect();
            (lv, grads, g.meter())
        };

        let (l_plain, g_plain, m_plain) = run(CheckpointPolicy::None);
        let (l_ck, g_ck, m_ck) = run(CheckpointPolicy::DiscardWMsa);
        assert!((l_plain - l_ck).abs() < 1e-5, "{l_plain} vs {l_ck}");
        for (a, b) in g_plain.iter().zip(&g_ck) {
            assert!(a.allclose(b, 1e-4), "checkpointed grads must match plain");
        }
        assert!(
            m_ck.current < m_plain.current,
            "checkpointing must shrink the resident tape: {} vs {}",
            m_ck.current,
            m_plain.current
        );
    }

    #[test]
    fn from_state_reconstructs_exactly() {
        let cfg = tiny();
        let m1 = SwinSurrogate::new(cfg.clone(), 123);
        let state = state_dict(&m1);
        let m2 = SwinSurrogate::from_state(cfg.clone(), &state);
        for (a, b) in m1.params().iter().zip(m2.params().iter()) {
            assert_eq!(a.value().as_slice(), b.value().as_slice());
        }
        // Identical forwards on identical input.
        let (x3, x2) = inputs(&cfg, 1, 9);
        let run = |m: &SwinSurrogate| {
            let mut g = Graph::inference();
            let a = g.constant(x3.clone());
            let b = g.constant(x2.clone());
            let (o3, _) = m.forward(&mut g, a, b);
            g.value(o3).clone()
        };
        assert_eq!(run(&m1).as_slice(), run(&m2).as_slice());
    }

    #[test]
    fn boundary_frames_influence_prediction() {
        // Zero out the boundary frames: the forecast must change — the
        // model genuinely consumes future boundary conditions (the paper's
        // key difference from global weather surrogates).
        let cfg = tiny();
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let (x3, x2) = inputs(&cfg, 1, 4);
        let run = |x3: Tensor, x2: Tensor| {
            let mut g = Graph::inference();
            let a = g.constant(x3);
            let b = g.constant(x2);
            let (o3, _) = model.forward(&mut g, a, b);
            g.value(o3).clone()
        };
        let base = run(x3.clone(), x2.clone());
        // Zero frames 1.. of x3d (keep the IC).
        let mut x3z = x3.clone();
        {
            let t_in = cfg.t_in();
            let n = x3z.numel();
            let data = x3z.as_mut_slice();
            for (i, v) in data.iter_mut().enumerate() {
                if i % t_in != 0 {
                    *v = 0.0;
                }
            }
            let _ = n;
        }
        let changed = run(x3z, x2);
        assert!(
            base.max_abs_diff(&changed) > 1e-5,
            "boundary frames must matter"
        );
    }
}
