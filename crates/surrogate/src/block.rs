//! Swin transformer blocks and encoder stages (paper Eq. 3, Fig. 3b).
//!
//! A [`SwinBlockPair`] is the canonical two-block unit: W-MSA attention
//! followed by SW-MSA attention, each wrapped as
//! `x = x + (S)W-MSA(LN(x)); x = x + MLP(LN(x))`. A [`SwinStage`] runs its
//! block pairs and then (optionally) merges patches spatially, doubling
//! the channel width.

use ctensor::prelude::*;
use rand::rngs::StdRng;

use crate::config::Win4;
use crate::window::{attention_mask, cyclic_shift, window_partition, window_reverse};

/// One attention block (either W-MSA or SW-MSA depending on `shifted`).
#[derive(Clone)]
pub struct SwinBlock {
    pub norm1: LayerNorm,
    pub attn: MultiHeadAttention,
    pub norm2: LayerNorm,
    pub mlp: Mlp,
    pub window: Win4,
    pub shifted: bool,
}

impl SwinBlock {
    pub fn new(
        name: &str,
        dim: usize,
        heads: usize,
        window: Win4,
        shifted: bool,
        mlp_ratio: f32,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            norm1: LayerNorm::new(&format!("{name}.norm1"), dim),
            attn: MultiHeadAttention::new(&format!("{name}.attn"), dim, heads, rng),
            norm2: LayerNorm::new(&format!("{name}.norm2"), dim),
            mlp: Mlp::new(
                &format!("{name}.mlp"),
                dim,
                (dim as f32 * mlp_ratio) as usize,
                rng,
            ),
            window,
            shifted,
        }
    }

    /// Forward over tokens `(B, H, W, D, T, E)`; `mask` is the
    /// precomputed additive attention mask for this block's window/shift.
    pub fn forward(&self, g: &mut Graph, x: Var, dims: Win4, mask: &Tensor) -> Var {
        let shape = g.value(x).shape().to_vec();
        let b = shape[0];
        let win = self.window;

        // Attention half: x + Attn(LN(x)).
        let normed = self.norm1.forward(g, x);
        let shifted_tokens = if self.shifted {
            cyclic_shift(g, normed, dims, win, -1)
        } else {
            normed
        };
        let windows = window_partition(g, shifted_tokens, dims, win);
        let use_mask = mask.as_slice().iter().any(|&v| v != 0.0);
        let attended = self
            .attn
            .forward_masked(g, windows, use_mask.then_some(mask));
        let merged = window_reverse(g, attended, b, dims, win);
        let unshifted = if self.shifted {
            cyclic_shift(g, merged, dims, win, 1)
        } else {
            merged
        };
        let x = g.add(x, unshifted);

        // MLP half: x + MLP(LN(x)).
        let normed = self.norm2.forward(g, x);
        let ff = self.mlp.forward(g, normed);
        g.add(x, ff)
    }
}

impl Module for SwinBlock {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        // Module-trait entry assumes an unmasked exact-fit grid; the model
        // always calls the explicit `forward` with dims and mask.
        let shape = g.value(x).shape().to_vec();
        let dims = [shape[1], shape[2], shape[3], shape[4]];
        let mask = attention_mask(dims, self.window, self.shifted);
        SwinBlock::forward(self, g, x, dims, &mask)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.norm1.collect_params(out);
        self.attn.collect_params(out);
        self.norm2.collect_params(out);
        self.mlp.collect_params(out);
    }
}

/// The W-MSA + SW-MSA pair of paper Eq. 3.
#[derive(Clone)]
pub struct SwinBlockPair {
    pub w_block: SwinBlock,
    pub sw_block: SwinBlock,
}

impl SwinBlockPair {
    pub fn new(
        name: &str,
        dim: usize,
        heads: usize,
        window: Win4,
        mlp_ratio: f32,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            w_block: SwinBlock::new(
                &format!("{name}.w"),
                dim,
                heads,
                window,
                false,
                mlp_ratio,
                rng,
            ),
            sw_block: SwinBlock::new(
                &format!("{name}.sw"),
                dim,
                heads,
                window,
                true,
                mlp_ratio,
                rng,
            ),
        }
    }
}

impl Module for SwinBlockPair {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let x = Module::forward(&self.w_block, g, x);
        Module::forward(&self.sw_block, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.w_block.collect_params(out);
        self.sw_block.collect_params(out);
    }
}

/// Spatial patch merging (paper Fig. 4): `(B,H,W,D,T,E)` →
/// `(B,⌈H/2⌉,⌈W/2⌉,⌈D/2⌉,T,2E)`; the temporal axis is untouched.
#[derive(Clone)]
pub struct PatchMerge {
    pub reduce: Linear,
}

impl PatchMerge {
    pub fn new(name: &str, dim: usize, rng: &mut StdRng) -> Self {
        Self {
            reduce: Linear::new(&format!("{name}.reduce"), 8 * dim, 2 * dim, false, rng),
        }
    }

    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let s = g.value(x).shape().to_vec();
        assert_eq!(s.len(), 6);
        let (b, h, w, d, t, e) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        let (hp, wp, dp) = (h.div_ceil(2) * 2, w.div_ceil(2) * 2, d.div_ceil(2) * 2);
        let x = g.pad(
            x,
            &[
                (0, 0),
                (0, hp - h),
                (0, wp - w),
                (0, dp - d),
                (0, 0),
                (0, 0),
            ],
        );
        let x = g.reshape(x, &[b, hp / 2, 2, wp / 2, 2, dp / 2, 2, t, e]);
        // -> (B, H/2, W/2, D/2, T, 2, 2, 2, E)
        let x = g.permute(x, &[0, 1, 3, 5, 7, 2, 4, 6, 8]);
        let x = g.reshape(x, &[b, hp / 2, wp / 2, dp / 2, t, 8 * e]);
        self.reduce.forward(g, x)
    }
}

impl Module for PatchMerge {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        PatchMerge::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        self.reduce.collect_params(out);
    }
}

/// Post-merge token extents.
pub fn merged_dims(dims: Win4) -> Win4 {
    [
        dims[0].div_ceil(2),
        dims[1].div_ceil(2),
        dims[2].div_ceil(2),
        dims[3],
    ]
}

/// One encoder stage: `n_pairs` Swin block pairs at fixed resolution.
/// (Merging lives in the model so it can keep pre-merge skip tensors.)
#[derive(Clone)]
pub struct SwinStage {
    pub pairs: Vec<SwinBlockPair>,
    pub dims: Win4,
    masks: (Tensor, Tensor),
}

impl SwinStage {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        dim: usize,
        heads: usize,
        n_pairs: usize,
        dims: Win4,
        window: Win4,
        mlp_ratio: f32,
        rng: &mut StdRng,
    ) -> Self {
        let pairs = (0..n_pairs)
            .map(|p| {
                SwinBlockPair::new(
                    &format!("{name}.pair{p}"),
                    dim,
                    heads,
                    window,
                    mlp_ratio,
                    rng,
                )
            })
            .collect();
        let masks = (
            attention_mask(dims, window, false),
            attention_mask(dims, window, true),
        );
        Self { pairs, dims, masks }
    }

    /// Precomputed W-MSA (unshifted) attention mask.
    pub fn mask_plain(&self) -> &Tensor {
        &self.masks.0
    }

    /// Precomputed SW-MSA (shifted) attention mask.
    pub fn mask_shifted(&self) -> &Tensor {
        &self.masks.1
    }

    /// Forward through every pair using the precomputed masks.
    pub fn forward(&self, g: &mut Graph, mut x: Var) -> Var {
        for pair in &self.pairs {
            x = pair.w_block.forward(g, x, self.dims, &self.masks.0);
            x = pair.sw_block.forward(g, x, self.dims, &self.masks.1);
        }
        x
    }
}

impl Module for SwinStage {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        SwinStage::forward(self, g, x)
    }

    fn collect_params(&self, out: &mut Vec<Param>) {
        for p in &self.pairs {
            p.collect_params(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tokens(b: usize, dims: Win4, e: usize, rng: &mut StdRng) -> Tensor {
        ctensor::init::randn(&[b, dims[0], dims[1], dims[2], dims[3], e], 0.5, rng)
    }

    #[test]
    fn block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let dims = [4, 4, 2, 2];
        let blk = SwinBlock::new("b", 8, 2, [2, 2, 2, 2], false, 2.0, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(tokens(2, dims, 8, &mut rng));
        let y = Module::forward(&blk, &mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 4, 4, 2, 2, 8]);
    }

    #[test]
    fn shifted_block_preserves_shape_with_odd_dims() {
        let mut rng = StdRng::seed_from_u64(1);
        let dims = [5, 3, 2, 3]; // forces padding everywhere
        let blk = SwinBlock::new("b", 6, 2, [2, 2, 2, 2], true, 1.5, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(tokens(1, dims, 6, &mut rng));
        let y = Module::forward(&blk, &mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 5, 3, 2, 3, 6]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn pair_runs_and_grads_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let dims = [4, 4, 2, 2];
        let pair = SwinBlockPair::new("p", 8, 2, [2, 2, 2, 2], 2.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(tokens(1, dims, 8, &mut rng));
        let y = Module::forward(&pair, &mut g, x);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some());
        for p in pair.params() {
            assert!(p.grad().is_some(), "missing grad: {}", p.name());
        }
    }

    #[test]
    fn w_msa_is_window_local() {
        // Without shift, a perturbation inside one window cannot affect
        // tokens of another window (single block, identity-friendly check
        // via output difference).
        let mut rng = StdRng::seed_from_u64(3);
        let dims = [4, 2, 2, 2];
        let win = [2, 2, 2, 2];
        let blk = SwinBlock::new("b", 4, 1, win, false, 1.0, &mut rng);
        // Amplify the (0.02-std) init so the perturbation isn't attenuated
        // below float noise by the time it reaches the probe tokens.
        for p in blk.params() {
            p.set_value(p.value().scale(10.0));
        }
        let base = tokens(1, dims, 4, &mut rng);
        let mut bumped = base.clone();
        // Perturb one channel of token (0,0,0,0) — window 0 along axis 0.
        // (A uniform all-channel bump would sit in LayerNorm's invariant
        // direction and not propagate at all.)
        let v = bumped.at(&[0, 0, 0, 0, 0, 1]);
        bumped.set(&[0, 0, 0, 0, 0, 1], v + 2.0);
        let run = |t: Tensor| {
            let mut g = Graph::inference();
            let x = g.constant(t);
            let y = Module::forward(&blk, &mut g, x);
            g.value(y).clone()
        };
        let y0 = run(base);
        let y1 = run(bumped);
        // Token (3, ·) lives in the other axis-0 window: unchanged.
        let mut diff_far = 0.0f32;
        let mut diff_near = 0.0f32;
        for c in 0..4 {
            diff_far += (y0.at(&[0, 3, 1, 1, 1, c]) - y1.at(&[0, 3, 1, 1, 1, c])).abs();
            diff_near += (y0.at(&[0, 1, 1, 1, 1, c]) - y1.at(&[0, 1, 1, 1, 1, c])).abs();
        }
        assert_eq!(diff_far, 0.0, "cross-window leak in W-MSA");
        assert!(diff_near > 1e-6, "within-window influence expected");
    }

    #[test]
    fn sw_msa_extends_receptive_field() {
        // With the shifted block stacked after the plain one, influence
        // crosses the original window boundary.
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [4, 2, 2, 2];
        let win = [2, 2, 2, 2];
        let pair = SwinBlockPair::new("p", 4, 1, win, 1.0, &mut rng);
        for p in pair.params() {
            p.set_value(p.value().scale(10.0));
        }
        let base = tokens(1, dims, 4, &mut rng);
        let mut bumped = base.clone();
        let v = bumped.at(&[0, 0, 0, 0, 0, 1]);
        bumped.set(&[0, 0, 0, 0, 0, 1], v + 2.0);
        let run = |t: Tensor| {
            let mut g = Graph::inference();
            let x = g.constant(t);
            let y = Module::forward(&pair, &mut g, x);
            g.value(y).clone()
        };
        let y0 = run(base);
        let y1 = run(bumped);
        let mut diff_far = 0.0f32;
        for c in 0..4 {
            diff_far += (y0.at(&[0, 2, 0, 0, 0, c]) - y1.at(&[0, 2, 0, 0, 0, c])).abs();
        }
        assert!(
            diff_far > 1e-7,
            "shifted windows must propagate across boundaries"
        );
    }

    #[test]
    fn patch_merge_halves_space_doubles_channels() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = PatchMerge::new("m", 8, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(tokens(2, [4, 6, 2, 3], 8, &mut rng));
        let y = m.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 2, 3, 1, 3, 16]);
    }

    #[test]
    fn patch_merge_pads_odd_dims() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = PatchMerge::new("m", 4, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(tokens(1, [3, 5, 1, 2], 4, &mut rng));
        let y = m.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 2, 3, 1, 2, 8]);
        assert_eq!(merged_dims([3, 5, 1, 2]), [2, 3, 1, 2]);
    }

    #[test]
    fn stage_runs_multiple_pairs() {
        let mut rng = StdRng::seed_from_u64(7);
        let dims = [4, 4, 2, 2];
        let stage = SwinStage::new("s", 8, 2, 2, dims, [2, 2, 2, 2], 1.5, &mut rng);
        let mut g = Graph::inference();
        let x = g.constant(tokens(1, dims, 8, &mut rng));
        let y = stage.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 4, 4, 2, 2, 8]);
        assert_eq!(
            stage.params().len(),
            2 * stage.pairs[0].params().len() / 2 * 2
        );
    }
}
