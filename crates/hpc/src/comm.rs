//! Message-passing communicator over crossbeam channels — the "MPI" of the
//! thread-based runtime.
//!
//! Each pair of ranks gets a dedicated FIFO channel, so point-to-point
//! ordering matches MPI semantics. Messages carry a tag that is checked on
//! receive (a mismatched tag is a protocol bug and panics loudly rather
//! than silently reordering physics).

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A tagged payload.
struct Message {
    tag: u64,
    data: Vec<f64>,
}

/// Per-rank accumulated communication statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    pub messages_sent: usize,
    pub doubles_sent: usize,
    /// Seconds spent blocked in `recv` plus send bookkeeping.
    pub comm_seconds: f64,
    /// Seconds spent waiting at barriers.
    pub barrier_seconds: f64,
}

/// Build communicators for `p` ranks.
pub fn communicators(p: usize) -> Vec<Comm> {
    // senders[dst][src] / receivers[dst][src]
    let mut txs: Vec<Vec<Sender<Message>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Receiver<Message>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for dst in 0..p {
        for _src in 0..p {
            let (tx, rx) = unbounded();
            txs[dst].push(tx);
            rxs[dst].push(rx);
        }
    }
    let barrier = Arc::new(std::sync::Barrier::new(p));
    // Rank r needs: a sender to every dst (the channel indexed [dst][r]),
    // and its own receiver set rxs[r].
    let mut comms = Vec::with_capacity(p);
    for (r, rx_set) in rxs.into_iter().enumerate() {
        let send_to: Vec<Sender<Message>> = (0..p).map(|dst| txs[dst][r].clone()).collect();
        comms.push(Comm {
            rank: r,
            size: p,
            send_to,
            recv_from: rx_set,
            barrier: Arc::clone(&barrier),
            stats: Mutex::new(CommStats::default()),
        });
    }
    comms
}

/// One rank's endpoint: point-to-point send/recv plus a barrier.
pub struct Comm {
    rank: usize,
    size: usize,
    send_to: Vec<Sender<Message>>,
    recv_from: Vec<Receiver<Message>>,
    barrier: Arc<std::sync::Barrier>,
    stats: Mutex<CommStats>,
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Non-blocking send of a tagged payload.
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        let t0 = Instant::now();
        let n = data.len();
        self.send_to[to]
            .send(Message { tag, data })
            .expect("peer hung up");
        let mut s = self.stats.lock();
        s.messages_sent += 1;
        s.doubles_sent += n;
        s.comm_seconds += t0.elapsed().as_secs_f64();
    }

    /// Blocking receive from `from`; the tag must match the next message.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        let t0 = Instant::now();
        let msg = self.recv_from[from].recv().expect("peer hung up");
        assert_eq!(
            msg.tag, tag,
            "rank {} expected tag {tag} from {from}, got {}",
            self.rank, msg.tag
        );
        self.stats.lock().comm_seconds += t0.elapsed().as_secs_f64();
        msg.data
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.barrier.wait();
        self.stats.lock().barrier_seconds += t0.elapsed().as_secs_f64();
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.lock()
    }

    /// Sum-reduce a scalar across all ranks (naive all-to-root-to-all).
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut total = value;
            for src in 1..self.size {
                total += self.recv(src, TAG_GATHER)[0];
            }
            for dst in 1..self.size {
                self.send(dst, TAG_BCAST, vec![total]);
            }
            total
        } else {
            self.send(0, TAG_GATHER, vec![value]);
            self.recv(0, TAG_BCAST)[0]
        }
    }

    /// Max-reduce a scalar across all ranks.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        const TAG_GATHER: u64 = u64::MAX - 3;
        const TAG_BCAST: u64 = u64::MAX - 4;
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut m = value;
            for src in 1..self.size {
                m = m.max(self.recv(src, TAG_GATHER)[0]);
            }
            for dst in 1..self.size {
                self.send(dst, TAG_BCAST, vec![m]);
            }
            m
        } else {
            self.send(0, TAG_GATHER, vec![value]);
            self.recv(0, TAG_BCAST)[0]
        }
    }
}

/// Run `f` on `p` ranks over scoped threads; returns per-rank results in
/// rank order.
///
/// Each rank's [`Comm`] is *moved into* its thread: if a rank panics, its
/// channels drop and every peer blocked on it fails fast with "peer hung
/// up" instead of deadlocking.
pub fn run_parallel<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let comms = communicators(p);
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for comm in comms {
            let f = &f;
            handles.push(scope.spawn(move |_| f(&comm)));
        }
        let mut first_panic = None;
        for (slot, h) in results.iter_mut().zip(handles) {
            match h.join() {
                Ok(r) => *slot = Some(r),
                Err(e) => {
                    if first_panic.is_none() {
                        first_panic = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_panic {
            std::panic::resume_unwind(e);
        }
    })
    .expect("parallel scope failed");
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let p = 4;
        let results = run_parallel(p, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, vec![c.rank() as f64]);
            let got = c.recv(prev, 1);
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_sum_all_ranks_agree() {
        let results = run_parallel(5, |c| c.allreduce_sum((c.rank() + 1) as f64));
        for r in results {
            assert_eq!(r, 15.0);
        }
    }

    #[test]
    fn allreduce_max() {
        let results = run_parallel(3, |c| c.allreduce_max(c.rank() as f64 * 2.0));
        for r in results {
            assert_eq!(r, 4.0);
        }
    }

    #[test]
    fn stats_count_messages() {
        let results = run_parallel(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0, 2.0, 3.0]);
            } else {
                let _ = c.recv(0, 7);
            }
            c.barrier();
            c.stats()
        });
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[0].doubles_sent, 3);
        assert_eq!(results[1].messages_sent, 0);
    }

    #[test]
    #[should_panic(expected = "expected tag")]
    fn tag_mismatch_panics() {
        // Single pair, deliberately mismatched tags.
        let comms = communicators(2);
        comms[0].send(1, 1, vec![0.0]);
        let _ = comms[1].recv(0, 2);
    }

    #[test]
    fn fifo_ordering_per_pair() {
        let results = run_parallel(2, |c| {
            if c.rank() == 0 {
                for k in 0..10 {
                    c.send(1, k, vec![k as f64]);
                }
                0.0
            } else {
                let mut sum = 0.0;
                for k in 0..10 {
                    sum += c.recv(0, k)[0]; // tags must arrive in order
                }
                sum
            }
        });
        assert_eq!(results[1], 45.0);
    }
}
