//! Strong/weak scaling measurement helpers used by the benchmark harness.

use std::time::Instant;

/// One row of a scaling table.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub workers: usize,
    pub seconds: f64,
    /// `t(1) / t(p)` for strong scaling; `throughput(p) / throughput(1)`
    /// interpretation is the caller's for weak scaling.
    pub speedup: f64,
    /// `speedup / workers`.
    pub efficiency: f64,
}

/// Wall-clock a closure.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Run `run(p)` (which returns wall seconds) for each worker count and
/// derive speedup/efficiency against the first entry.
pub fn strong_scaling(workers: &[usize], mut run: impl FnMut(usize) -> f64) -> Vec<ScalingPoint> {
    assert!(!workers.is_empty());
    let mut out = Vec::with_capacity(workers.len());
    let mut t1 = None;
    for &p in workers {
        let secs = run(p);
        let base = *t1.get_or_insert(secs * workers[0] as f64 / workers[0] as f64);
        let speedup = base / secs * (workers[0] as f64);
        out.push(ScalingPoint {
            workers: p,
            seconds: secs,
            speedup,
            efficiency: speedup / p as f64,
        });
    }
    out
}

/// Weak scaling: `run(p)` returns achieved throughput (work-units/s).
/// Speedup is throughput relative to the first entry.
pub fn weak_scaling(workers: &[usize], mut run: impl FnMut(usize) -> f64) -> Vec<ScalingPoint> {
    assert!(!workers.is_empty());
    let mut out = Vec::with_capacity(workers.len());
    let mut base = None;
    for &p in workers {
        let tput = run(p);
        let b = *base.get_or_insert(tput);
        let speedup = tput / b * (workers[0] as f64);
        out.push(ScalingPoint {
            workers: p,
            seconds: tput, // throughput, reusing the field
            speedup,
            efficiency: speedup / p as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_ideal() {
        // Synthetic perfectly scaling runtime: t(p) = 8 / p.
        let pts = strong_scaling(&[1, 2, 4], |p| 8.0 / p as f64);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert!((pts[1].speedup - 2.0).abs() < 1e-9);
        assert!((pts[2].speedup - 4.0).abs() < 1e-9);
        assert!((pts[2].efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_with_serial_fraction() {
        // Amdahl: t(p) = 1 + 4/p.
        let pts = strong_scaling(&[1, 4], |p| 1.0 + 4.0 / p as f64);
        assert!(pts[1].speedup > 1.0 && pts[1].speedup < 4.0);
        assert!(pts[1].efficiency < 1.0);
    }

    #[test]
    fn weak_scaling_linear_throughput() {
        let pts = weak_scaling(&[1, 2, 8], |p| 10.0 * p as f64);
        assert!((pts[2].speedup - 8.0).abs() < 1e-9);
        assert!((pts[2].efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_it_measures() {
        let (v, secs) = time_it(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(secs >= 0.009);
    }
}
