//! Rectangular 2-D domain decomposition.
//!
//! Mirrors the ROMS tiling strategy (§II-B of the paper): the horizontal
//! domain is split into `pr × pc` rectangular zones, one per rank, with the
//! remainder cells distributed to the leading tiles so loads differ by at
//! most one row/column.

/// A rank's tile: half-open global index ranges.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Tile {
    pub j0: usize,
    pub j1: usize,
    pub i0: usize,
    pub i1: usize,
}

impl Tile {
    pub fn ny(&self) -> usize {
        self.j1 - self.j0
    }

    pub fn nx(&self) -> usize {
        self.i1 - self.i0
    }

    pub fn cells(&self) -> usize {
        self.ny() * self.nx()
    }
}

/// 2-D processor decomposition of an `ny × nx` domain.
#[derive(Clone, Debug)]
pub struct Decomp {
    pub ny: usize,
    pub nx: usize,
    pub pr: usize,
    pub pc: usize,
}

impl Decomp {
    /// Decompose with an explicit processor grid.
    pub fn with_grid(ny: usize, nx: usize, pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1);
        assert!(
            pr <= ny && pc <= nx,
            "more tiles than cells: {pr}x{pc} over {ny}x{nx}"
        );
        Self { ny, nx, pr, pc }
    }

    /// Choose a near-square processor grid for `p` ranks, preferring more
    /// splits along the longer axis.
    pub fn auto(ny: usize, nx: usize, p: usize) -> Self {
        assert!(p >= 1);
        let mut best = (1, p);
        let mut best_score = f64::INFINITY;
        for pr in 1..=p {
            if !p.is_multiple_of(pr) {
                continue;
            }
            let pc = p / pr;
            if pr > ny || pc > nx {
                continue;
            }
            // Aspect mismatch between tile shape and a square.
            let tile_h = ny as f64 / pr as f64;
            let tile_w = nx as f64 / pc as f64;
            let score = (tile_h / tile_w).max(tile_w / tile_h);
            if score < best_score {
                best_score = score;
                best = (pr, pc);
            }
        }
        assert!(
            best_score.is_finite(),
            "cannot place {p} ranks on {ny}x{nx}"
        );
        Self::with_grid(ny, nx, best.0, best.1)
    }

    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Rank of the tile at processor-grid coordinates `(r, c)`.
    pub fn rank_at(&self, r: usize, c: usize) -> usize {
        r * self.pc + c
    }

    /// Processor-grid coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// The tile owned by `rank`.
    pub fn tile(&self, rank: usize) -> Tile {
        let (r, c) = self.coords(rank);
        let (j0, j1) = split_range(self.ny, self.pr, r);
        let (i0, i1) = split_range(self.nx, self.pc, c);
        Tile { j0, j1, i0, i1 }
    }

    /// Neighbor ranks: (west, east, south, north); `None` at domain edges.
    pub fn neighbors(&self, rank: usize) -> Neighbors {
        let (r, c) = self.coords(rank);
        Neighbors {
            west: (c > 0).then(|| self.rank_at(r, c - 1)),
            east: (c + 1 < self.pc).then(|| self.rank_at(r, c + 1)),
            south: (r > 0).then(|| self.rank_at(r - 1, c)),
            north: (r + 1 < self.pr).then(|| self.rank_at(r + 1, c)),
        }
    }

    /// Maximum load imbalance: max tile cells / mean tile cells.
    pub fn imbalance(&self) -> f64 {
        let max = (0..self.size())
            .map(|r| self.tile(r).cells())
            .max()
            .unwrap() as f64;
        let mean = (self.ny * self.nx) as f64 / self.size() as f64;
        max / mean
    }
}

/// Neighbor ranks of a tile.
#[derive(Copy, Clone, Debug, Default)]
pub struct Neighbors {
    pub west: Option<usize>,
    pub east: Option<usize>,
    pub south: Option<usize>,
    pub north: Option<usize>,
}

/// Split `n` items over `p` parts; part `k` gets `[start, end)`.
/// Leading parts absorb the remainder.
pub fn split_range(n: usize, p: usize, k: usize) -> (usize, usize) {
    let base = n / p;
    let rem = n % p;
    let start = k * base + k.min(rem);
    let len = base + usize::from(k < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything() {
        for n in [7usize, 8, 100] {
            for p in [1usize, 2, 3, 7] {
                let mut covered = 0;
                let mut prev_end = 0;
                for k in 0..p {
                    let (s, e) = split_range(n, p, k);
                    assert_eq!(s, prev_end, "ranges must be contiguous");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn tiles_partition_domain() {
        let d = Decomp::with_grid(10, 13, 2, 3);
        let mut count = [0u8; 10 * 13];
        for r in 0..d.size() {
            let t = d.tile(r);
            for j in t.j0..t.j1 {
                for i in t.i0..t.i1 {
                    count[j * 13 + i] += 1;
                }
            }
        }
        assert!(
            count.iter().all(|&c| c == 1),
            "each cell owned exactly once"
        );
    }

    #[test]
    fn auto_prefers_square_tiles() {
        let d = Decomp::auto(100, 100, 4);
        assert_eq!((d.pr, d.pc), (2, 2));
        let d = Decomp::auto(200, 50, 4);
        assert_eq!(d.pr, 4, "long axis should take the splits");
    }

    #[test]
    fn neighbors_edges() {
        let d = Decomp::with_grid(8, 8, 2, 2);
        let n0 = d.neighbors(0); // (r=0, c=0) = south-west tile
        assert!(n0.west.is_none());
        assert!(n0.south.is_none());
        assert_eq!(n0.east, Some(1));
        assert_eq!(n0.north, Some(2));
        let n3 = d.neighbors(3); // (1,1) north-east
        assert_eq!(n3.west, Some(2));
        assert_eq!(n3.south, Some(1));
        assert!(n3.east.is_none());
        assert!(n3.north.is_none());
    }

    #[test]
    fn imbalance_small() {
        let d = Decomp::with_grid(10, 10, 3, 3);
        assert!(d.imbalance() < 1.5);
        let d2 = Decomp::with_grid(9, 9, 3, 3);
        assert!((d2.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coords_roundtrip() {
        let d = Decomp::with_grid(16, 16, 3, 4);
        for r in 0..d.size() {
            let (pr, pc) = d.coords(r);
            assert_eq!(d.rank_at(pr, pc), r);
        }
    }
}
