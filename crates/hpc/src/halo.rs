//! Generic halo exchange between neighboring tiles.
//!
//! Field-type-agnostic: callers supply closures that extract an edge strip
//! to ship and insert a received strip into their halo. Tags encode the
//! direction of travel so both endpoints agree on matching without any
//! global coordination.

use crate::comm::Comm;
use crate::decomp::{Decomp, Neighbors};

/// Which halo a received strip fills (from the receiver's perspective);
/// for sends, the edge of the interior being shipped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    West,
    East,
    South,
    North,
}

impl Side {
    pub const ALL: [Side; 4] = [Side::West, Side::East, Side::South, Side::North];

    /// The side the strip arrives on at the receiver.
    pub fn opposite(self) -> Side {
        match self {
            Side::West => Side::East,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::North => Side::South,
        }
    }

    fn travel_tag(self) -> u64 {
        // Direction of travel: a strip sent from my West edge travels
        // westward.
        match self {
            Side::West => 0,
            Side::East => 1,
            Side::South => 2,
            Side::North => 3,
        }
    }
}

fn neighbor_of(decomp: &Decomp, rank: usize, s: Side) -> Option<usize> {
    let Neighbors {
        west,
        east,
        south,
        north,
    } = decomp.neighbors(rank);
    match s {
        Side::West => west,
        Side::East => east,
        Side::South => south,
        Side::North => north,
    }
}

/// Send phase: ship the interior edge strip returned by `extract(side)` to
/// each existing neighbor (non-blocking).
///
/// `tag_base` namespaces this exchange from others in flight on the same
/// communicator (use a distinct base per field per phase).
pub fn send_halo<F>(comm: &Comm, decomp: &Decomp, tag_base: u64, mut extract: F)
where
    F: FnMut(Side) -> Vec<f64>,
{
    for side in Side::ALL {
        if let Some(to) = neighbor_of(decomp, comm.rank(), side) {
            comm.send(to, tag_base + side.travel_tag(), extract(side));
        }
    }
}

/// Receive phase: drain one strip per existing neighbor and hand it to
/// `insert(side, strip)` — `side` is the halo the strip fills.
pub fn recv_halo<G>(comm: &Comm, decomp: &Decomp, tag_base: u64, mut insert: G)
where
    G: FnMut(Side, Vec<f64>),
{
    for side in Side::ALL {
        if let Some(from) = neighbor_of(decomp, comm.rank(), side) {
            // A strip arriving on my `side` traveled in the direction of
            // the sender's opposite edge.
            let tag = tag_base + side.opposite().travel_tag();
            let strip = comm.recv(from, tag);
            insert(side, strip);
        }
    }
}

/// Full exchange: all sends first, then all receives — the classic
/// deadlock-free MPI pattern. When `extract` and `insert` need to borrow
/// the same field, call [`send_halo`] then [`recv_halo`] directly.
pub fn exchange_halo<F, G>(comm: &Comm, decomp: &Decomp, tag_base: u64, extract: F, insert: G)
where
    F: FnMut(Side) -> Vec<f64>,
    G: FnMut(Side, Vec<f64>),
{
    send_halo(comm, decomp, tag_base, extract);
    recv_halo(comm, decomp, tag_base, insert);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_parallel;

    /// Each rank fills its tile with its rank id, exchanges halos, and
    /// verifies every received strip equals the sending neighbor's id.
    #[test]
    fn halo_strips_carry_neighbor_values() {
        let ny = 8;
        let nx = 12;
        let d = Decomp::with_grid(ny, nx, 2, 3);
        let d2 = d.clone();
        run_parallel(d.size(), move |c| {
            let t = d2.tile(c.rank());
            let me = c.rank() as f64;
            let mut halos: Vec<(Side, Vec<f64>)> = Vec::new();
            exchange_halo(
                c,
                &d2,
                100,
                |side| {
                    let len = match side {
                        Side::West | Side::East => t.ny(),
                        Side::South | Side::North => t.nx(),
                    };
                    vec![me; len]
                },
                |side, strip| halos.push((side, strip)),
            );
            let n = d2.neighbors(c.rank());
            for (side, strip) in halos {
                let expect = match side {
                    Side::West => n.west,
                    Side::East => n.east,
                    Side::South => n.south,
                    Side::North => n.north,
                }
                .unwrap() as f64;
                assert!(strip.iter().all(|&v| v == expect), "{side:?} halo wrong");
                let expect_len = match side {
                    Side::West | Side::East => t.ny(),
                    Side::South | Side::North => t.nx(),
                };
                assert_eq!(strip.len(), expect_len);
            }
        });
    }

    /// Two sequential exchanges with different tag bases must not cross.
    #[test]
    fn repeated_exchanges_keep_order() {
        let d = Decomp::with_grid(4, 8, 1, 2);
        let d2 = d.clone();
        run_parallel(2, move |c| {
            for step in 0..5u64 {
                let mut got = Vec::new();
                exchange_halo(
                    c,
                    &d2,
                    step * 10,
                    |_| vec![step as f64; 4],
                    |_, s| got.push(s),
                );
                for s in got {
                    assert!(s.iter().all(|&v| v == step as f64));
                }
            }
        });
    }
}
