//! # coastal-hpc
//!
//! An MPI-like runtime on threads: rectangular 2-D domain decomposition
//! ([`decomp::Decomp`]), tagged point-to-point messaging over dedicated
//! FIFO channels ([`comm::Comm`]), deadlock-free halo exchange
//! ([`halo::exchange_halo`]), and scaling-measurement helpers. This is the
//! substrate under the "Traditional MPI ROMS" baseline of the paper's
//! Table I, reproduced here with threads on one machine.

pub mod comm;
pub mod decomp;
pub mod halo;
pub mod scaling;

pub use comm::{communicators, run_parallel, Comm, CommStats};
pub use decomp::{split_range, Decomp, Neighbors, Tile};
pub use halo::{exchange_halo, Side};
pub use scaling::{strong_scaling, time_it, weak_scaling, ScalingPoint};
