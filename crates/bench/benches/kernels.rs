//! Criterion micro-benchmarks: tensor/attention kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use ctensor::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = ctensor::init::randn(&[64, 128], 1.0, &mut rng);
    let b = ctensor::init::randn(&[128, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x128x64", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b)))
    });

    let batch = ctensor::init::randn(&[32, 16, 16], 1.0, &mut rng);
    c.bench_function("softmax_batched_32x16x16", |bch| {
        bch.iter(|| std::hint::black_box(batch.softmax_last()))
    });

    let attn = MultiHeadAttention::new("bench", 24, 3, &mut rng);
    let x = ctensor::init::randn(&[8, 32, 24], 0.5, &mut rng);
    c.bench_function("attention_8x32x24", |bch| {
        bch.iter(|| {
            let mut g = Graph::inference();
            let v = g.constant(x.clone());
            std::hint::black_box(attn.forward(&mut g, v))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
