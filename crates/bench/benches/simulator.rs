//! Criterion benches: simulator fast/slow steps (Table I cost model).

use cgrid::{EstuaryParams, Grid, GridParams};
use cocean::{OceanConfig, Roms, TidalForcing};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let grid = Grid::build(&GridParams {
        estuary: EstuaryParams {
            ny: 48,
            nx: 32,
            ..Default::default()
        },
        nz: 4,
        ..Default::default()
    });
    let mut cfg = OceanConfig::for_grid(&grid);
    cfg.forcing = TidalForcing::single(0.3, 12.0);
    let mut model = Roms::new(&grid, cfg);
    model.spinup(3600.0);
    c.bench_function("roms_slow_step_48x32x4", |b| b.iter(|| model.step_slow()));
    c.bench_function("roms_snapshot_48x32x4", |b| {
        b.iter(|| std::hint::black_box(model.snapshot()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
}
criterion_main!(benches);
