//! Criterion benches: surrogate forward pass (the "22 seconds" kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use csurrogate::{SwinConfig, SwinSurrogate};
use ctensor::prelude::*;

fn bench_inference(c: &mut Criterion) {
    let cfg = SwinConfig::tiny(16, 16, 4, 4);
    let model = SwinSurrogate::new(cfg.clone(), 0);
    let x3 = Tensor::zeros(&[1, 3, cfg.ny, cfg.nx, cfg.nz, cfg.t_in()]);
    let x2 = Tensor::zeros(&[1, 1, cfg.ny, cfg.nx, cfg.t_in()]);
    c.bench_function("swin_forward_16x16x4_t4", |b| {
        b.iter(|| {
            let mut g = Graph::inference();
            let a = g.constant(x3.clone());
            let z = g.constant(x2.clone());
            std::hint::black_box(model.forward(&mut g, a, z))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
