//! Criterion benches: loader transfer modes and the mass-residual kernel.

use cgrid::{EstuaryParams, Grid, GridParams};
use cocean::{OceanConfig, Roms, TidalForcing};
use cphysics::water_mass_residual;
use criterion::{criterion_group, criterion_main, Criterion};
use ctensor::f16::{compress, decompress};

fn bench_pipeline(c: &mut Criterion) {
    let grid = Grid::build(&GridParams {
        estuary: EstuaryParams {
            ny: 32,
            nx: 24,
            ..Default::default()
        },
        nz: 4,
        ..Default::default()
    });
    let mut cfg = OceanConfig::for_grid(&grid);
    cfg.forcing = TidalForcing::single(0.3, 12.0);
    let mut model = Roms::new(&grid, cfg);
    model.spinup(3600.0);
    let snaps = model.record(2, model.cfg.dt_slow());

    c.bench_function("mass_residual_32x24x4", |b| {
        b.iter(|| std::hint::black_box(water_mass_residual(&grid, &snaps[0], &snaps[1])))
    });

    let payload: Vec<f32> = snaps[0].u.clone();
    c.bench_function("f16_compress_decompress", |b| {
        b.iter(|| std::hint::black_box(decompress(&compress(&payload))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
