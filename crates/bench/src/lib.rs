//! # coastal-bench
//!
//! Harness regenerating every table and figure of the paper's evaluation
//! on scaled scenarios. Binaries: `table1..table4`, `fig5..fig10`,
//! `repro_all`; criterion benches cover the hot kernels.

use ccore::{train_surrogate, Scenario, TrainedSurrogate};
use cgrid::Grid;
use cocean::Snapshot;

pub mod stamp;
pub mod telemetry;

pub use stamp::RunStamp;

/// A prepared experiment context shared by the harness binaries:
/// grid + trained surrogate + train/test archives.
pub struct Context {
    pub scenario: Scenario,
    pub grid: Grid,
    pub train_archive: Vec<Snapshot>,
    pub test_archive: Vec<Snapshot>,
    pub trained: TrainedSurrogate,
}

impl Context {
    /// Build the default (small) context with at least `test_len` test
    /// snapshots of the held-out forcing year.
    pub fn small(test_len: usize) -> Context {
        Self::build(Scenario::small(), test_len)
    }

    /// Build from an explicit scenario.
    pub fn build(scenario: Scenario, test_len: usize) -> Context {
        let grid = scenario.grid();
        eprintln!(
            "[ctx] mesh {}x{}x{} ({} wet cells), t_out={}",
            grid.ny,
            grid.nx,
            grid.sigma.nz,
            grid.wet_cells(),
            scenario.t_out
        );
        eprintln!("[ctx] simulating training year…");
        let train_archive = scenario.simulate_archive(&grid, 0, scenario.train_snapshots);
        eprintln!("[ctx] simulating test year…");
        let test_archive = scenario.simulate_archive(&grid, 1, test_len.max(scenario.t_out + 1));
        eprintln!("[ctx] training surrogate…");
        let trained = train_surrogate(&scenario, &grid, &train_archive);
        eprintln!(
            "[ctx] trained: loss {:.4}, {:.2} inst/s",
            trained.last_epoch.mean_loss, trained.last_epoch.instances_per_sec
        );
        Context {
            scenario,
            grid,
            train_archive,
            test_archive,
            trained,
        }
    }

    /// Non-overlapping episode windows over the test archive.
    pub fn test_windows(&self) -> Vec<&[Snapshot]> {
        let len = self.scenario.t_out + 1;
        self.test_archive.chunks_exact(len).collect()
    }
}

/// Print a banner shared by all harness binaries.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; scaled mesh — compare shapes, not absolutes)");
    println!("================================================================");
}

/// Write rows to a CSV under `out/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::path::PathBuf {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir).expect("create out/");
    let path = dir.join(name);
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    println!("[csv] wrote {}", path.display());
    path
}
