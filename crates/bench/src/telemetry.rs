//! Registry-snapshot splice for `BENCH_*.json` reports: every harness
//! binary folds the global metrics registry into its report next to the
//! [`crate::RunStamp`], so a benchmark artifact carries the kernel/serve
//! counters and latency histograms that produced its headline numbers.

/// Insert a `"telemetry"` field (the global registry snapshot as JSON)
/// into a finished JSON-object report, just before its closing brace.
///
/// The report must be a single JSON object (every `BENCH_*.json` is);
/// the splice keeps it valid JSON, so downstream parsers see the
/// telemetry as one more top-level field.
pub fn splice_registry(mut report: String) -> String {
    let end = report
        .rfind('}')
        .expect("benchmark report must be a JSON object");
    report.truncate(end);
    while report.ends_with(|c: char| c.is_whitespace()) {
        report.pop();
    }
    report.push_str(&format!(
        ",\n  \"telemetry\": {}\n}}\n",
        cobs::global().snapshot().to_json()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_keeps_report_a_json_object() {
        cobs::counter!("bench.telemetry_splice_test").inc();
        let spliced = splice_registry("{\n  \"bench\": \"x\"\n}\n".to_string());
        assert!(spliced.contains("\"telemetry\": {\"counters\""));
        assert!(spliced.contains("bench.telemetry_splice_test"));
        assert!(spliced.trim_end().ends_with('}'));
        // Braces stay balanced (no string literals contain braces here).
        let open = spliced.matches('{').count();
        let close = spliced.matches('}').count();
        assert_eq!(open, close, "{spliced}");
    }
}
