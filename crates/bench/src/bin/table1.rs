//! Table I: simulation overhead — MPI-style tiled ROMS at several core
//! counts vs the AI surrogate, on the same mesh and horizon.

use cbench::{banner, write_csv, Context};
use cocean::run_tiled;

fn main() {
    banner(
        "Table I — ROMS vs AI surrogate simulation overhead",
        "paper Table I",
    );
    let ctx = Context::small(30);
    let horizon_snaps = 2 * ctx.scenario.t_out; // two episodes of forecast
    let interval = ctx.scenario.snapshot_interval;

    println!("\npaper: 898x598x12, 12-day horizon: MPI ROMS 512 cores = 9,908 s; surrogate (1×A100) = 22 s (450×)");
    println!(
        "ours : {}x{}x{} mesh, {} snapshots of {}s\n",
        ctx.grid.ny, ctx.grid.nx, ctx.grid.sigma.nz, horizon_snaps, interval
    );

    let mut rows = Vec::new();
    let mut roms_best = f64::INFINITY;
    for p in [1usize, 2, 4, 8] {
        let cfg = ctx.scenario.ocean_config(&ctx.grid, 1);
        let run = run_tiled(&ctx.grid, &cfg, p, horizon_snaps, interval);
        let comm: f64 = run.stats.iter().map(|s| s.comm_seconds).sum::<f64>() / p as f64;
        roms_best = roms_best.min(run.wall_seconds);
        println!(
            "ROMS (tiled)     cores={p:<3} wall={:>8.3}s  mean-comm={:>7.3}s",
            run.wall_seconds, comm
        );
        rows.push(format!("roms,{p},{:.6},{:.6}", run.wall_seconds, comm));
    }

    // Surrogate: same horizon = 2 episodes, batched inference.
    let windows = ctx.test_windows();
    let take: Vec<&[cocean::Snapshot]> = windows.iter().take(2).cloned().collect();
    let ai = ctx.trained.time_inference(&take);
    println!("AI surrogate     cores=1   wall={ai:>8.3}s");
    rows.push(format!("surrogate,1,{ai:.6},0.0"));
    let speedup = roms_best / ai;
    println!("\nspeedup of surrogate over fastest ROMS run: {speedup:.1}x");
    rows.push(format!("speedup,,{speedup:.3},"));
    write_csv("table1.csv", "solution,cores,wall_s,comm_s", &rows);
    assert!(speedup > 1.0, "surrogate must beat the simulator");
}
