//! Table II: memory requirement per training-pipeline stage.

use cbench::{banner, write_csv, Context};
use cpipeline::{encode_episode, EncodeConfig};
use csurrogate::episode_loss;
use ctensor::prelude::*;

fn main() {
    banner("Table II — memory per training stage", "paper Table II");
    let ctx = Context::small(10);
    let ep = encode_episode(
        &ctx.train_archive[..ctx.scenario.t_out + 1],
        &ctx.trained.stats,
        &EncodeConfig::default(),
    );

    // Stage 1: training sample loading (episode payload).
    let sample_bytes = ep.nbytes();

    // Stage 2: training sample processing (metered activations).
    let mut g = Graph::new();
    g.training = true;
    let x3 = g.constant(ep.x3d.clone());
    let x2 = g.constant(ep.x2d.clone());
    let (p3, p2) = ctx.trained.model.forward(&mut g, x3, x2);
    let _ = episode_loss(&mut g, p3, p2, &ep.target3, &ep.target2, &ctx.trained.mask);
    let act_bytes = g.meter().peak;

    // Stage 3: model parameter updating (weights + grads + Adam m,v).
    let n_params = ctx.trained.model.num_parameters();
    let update_bytes = n_params * 4 * 4;

    println!("\npaper: loading 4 GB | processing 42 GB | updating 12 GB (per 900x600x12 sample)");
    println!(
        "ours  (scaled mesh {}x{}x{}):",
        ctx.grid.ny, ctx.grid.nx, ctx.grid.sigma.nz
    );
    println!(
        "  sample loading     : {:>12} bytes ({:.2} MB)",
        sample_bytes,
        sample_bytes as f64 / 1e6
    );
    println!(
        "  sample processing  : {:>12} bytes ({:.2} MB peak activations)",
        act_bytes,
        act_bytes as f64 / 1e6
    );
    println!(
        "  parameter updating : {:>12} bytes ({:.2} MB; {} params x 4 states)",
        update_bytes,
        update_bytes as f64 / 1e6,
        n_params
    );
    let rows = vec![
        format!("loading,{sample_bytes}"),
        format!("processing,{act_bytes}"),
        format!("updating,{update_bytes}"),
    ];
    write_csv("table2.csv", "stage,bytes", &rows);
    assert!(
        act_bytes > sample_bytes,
        "activations dominate, as in the paper"
    );
}
