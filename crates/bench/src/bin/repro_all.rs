//! Run every table/figure generator in sequence (each also exists as its
//! own binary for selective reruns).

fn main() {
    let bins = [
        "table1", "table2", "table3", "table4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    ];
    println!("Reproducing all tables and figures → out/*.csv\n");
    for b in bins {
        println!("\n##### {b} #####");
        let status = std::process::Command::new(std::env::current_exe().unwrap().with_file_name(b))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
    println!("\nAll experiments regenerated. See EXPERIMENTS.md for the paper-vs-measured record.");
}
