//! Training-path benchmark: batch-first tape training throughput
//! (samples/sec headline) and every hand-written backward kernel
//! scalar-vs-blocked, emitting a `BENCH_train.json` summary.
//!
//! The backward table mirrors the forward table in `bench_kernels`: the
//! matmul adjoints (strided GEBP), the full linear+bias backward, the
//! GELU gradient chain, softmax/layer-norm row gradients, and the fused
//! attention backward. Acceptance: every row ≥ 2× over the scalar
//! reference; the headline row is the matmul adjoint pair. The fused Adam
//! step is reported separately (it is bandwidth-bound, so its interesting
//! ratio is fused-vs-unfused, not scalar-vs-SIMD).
//!
//! `--smoke` shrinks shapes and repetitions for CI; `BENCH_TRAIN_OUT`
//! overrides the output path.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use cocean::Snapshot;
use cpipeline::{
    encode_episode, stack_episodes, EncodeConfig, Episode, NormStats, TrainConfig, Trainer,
};
use csurrogate::{SwinConfig, SwinSurrogate};
use ctensor::backend::{
    self, AdamStepSpec, AttentionSpec, Backend, Blocked, MatmulSpec, ScalarRef, UnaryOp,
};
use ctensor::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    name: &'static str,
    scalar_ms: f64,
    blocked_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.blocked_ms
    }
}

/// Best-of-`reps` wall time (ms) of `f` under backend `be`.
fn time_under(be: Arc<dyn Backend>, reps: usize, mut f: impl FnMut()) -> f64 {
    let _scope = backend::scoped(be);
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn compare(name: &'static str, reps: usize, mut f: impl FnMut()) -> Row {
    let blocked_ms = time_under(Arc::new(Blocked::from_env()), reps, &mut f);
    let scalar_ms = time_under(Arc::new(ScalarRef), reps, &mut f);
    let r = Row {
        name,
        scalar_ms,
        blocked_ms,
    };
    eprintln!(
        "[train] {name}: scalar {scalar_ms:.2} ms, blocked {blocked_ms:.2} ms ({:.1}x)",
        r.speedup()
    );
    r
}

fn synthetic_episodes(cfg: &SwinConfig, count: usize) -> Vec<Episode> {
    (0..count)
        .map(|e| {
            let snaps: Vec<Snapshot> = (0..=cfg.t_out)
                .map(|t| {
                    let phase = (e * 5 + t) as f32 * 0.4;
                    let mut s = Snapshot {
                        time: t as f64 * 1800.0,
                        nz: cfg.nz,
                        ny: cfg.ny,
                        nx: cfg.nx,
                        zeta: vec![0.0; cfg.ny * cfg.nx],
                        u: vec![0.05; cfg.nz * cfg.ny * cfg.nx],
                        v: vec![0.0; cfg.nz * cfg.ny * cfg.nx],
                        w: vec![0.0; cfg.nz * cfg.ny * cfg.nx],
                    };
                    for (i, z) in s.zeta.iter_mut().enumerate() {
                        *z = 0.3 * (phase + i as f32 * 0.7).sin();
                    }
                    s
                })
                .collect();
            encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default())
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rng = StdRng::seed_from_u64(0);
    let mut rows: Vec<Row> = Vec::new();

    // ------------------------------------------------ backward kernel table

    // Headline: the matmul adjoint pair (dA = g·Bᵀ, dB = Aᵀ·g) on the
    // paper-shaped batched matmul from the forward headline.
    {
        let (batch, m, k, n) = if smoke {
            (2usize, 96usize, 96usize, 96usize)
        } else {
            (8usize, 256usize, 256usize, 256usize)
        };
        let a = ctensor::init::randn(&[batch * m * k], 1.0, &mut rng);
        let b = ctensor::init::randn(&[batch * k * n], 0.1, &mut rng);
        let g = ctensor::init::randn(&[batch * m * n], 0.1, &mut rng);
        let offsets: Vec<(usize, usize)> = (0..batch).map(|i| (i, i)).collect();
        let mut da = vec![0.0f32; batch * m * k];
        let mut db = vec![0.0f32; batch * k * n];
        rows.push(compare(
            "matmul_grad_pair",
            if smoke { 2 } else { 5 },
            || {
                let spec = MatmulSpec {
                    m,
                    k,
                    n,
                    batch_offsets: &offsets,
                    bias: None,
                };
                da.iter_mut().for_each(|v| *v = 0.0);
                db.iter_mut().for_each(|v| *v = 0.0);
                let be = backend::current();
                be.matmul_grad_a(g.as_slice(), b.as_slice(), &mut da, &spec);
                be.matmul_grad_b(a.as_slice(), g.as_slice(), &mut db, &spec);
                std::hint::black_box((&da, &db));
            },
        ));
    }

    // Full linear+bias backward: dX = g·Wᵀ, dW = Xᵀ·g (strided GEBP) and
    // dbias = column sums, on the token-rows × embed-dims linear shape.
    {
        let (rows_n, k, cols) = if smoke {
            (1024usize, 96usize, 288usize)
        } else {
            (4096usize, 96usize, 288usize)
        };
        let x = ctensor::init::randn(&[rows_n * k], 1.0, &mut rng);
        let w = ctensor::init::randn(&[k * cols], 0.1, &mut rng);
        let g = ctensor::init::randn(&[rows_n * cols], 1.0, &mut rng);
        let offsets = [(0usize, 0usize)];
        let mut dx = vec![0.0f32; rows_n * k];
        let mut dw = vec![0.0f32; k * cols];
        let mut dbias = vec![0.0f32; cols];
        rows.push(compare(
            "linear_bias_grad",
            if smoke { 5 } else { 10 },
            || {
                let spec = MatmulSpec {
                    m: rows_n,
                    k,
                    n: cols,
                    batch_offsets: &offsets,
                    bias: None,
                };
                dx.iter_mut().for_each(|v| *v = 0.0);
                dw.iter_mut().for_each(|v| *v = 0.0);
                dbias.iter_mut().for_each(|v| *v = 0.0);
                let be = backend::current();
                be.matmul_grad_a(g.as_slice(), w.as_slice(), &mut dx, &spec);
                be.matmul_grad_b(x.as_slice(), g.as_slice(), &mut dw, &spec);
                be.col_sums(g.as_slice(), &mut dbias, cols);
                std::hint::black_box((&dx, &dw, &dbias));
            },
        ));
    }

    // GELU gradient on an episode-sized activation.
    {
        let len = if smoke { 512 * 1024 } else { 2 * 1024 * 1024 };
        let x = ctensor::init::randn(&[len], 1.0, &mut rng);
        let mut out = vec![0.0f32; len];
        rows.push(compare("gelu_grad", 10, || {
            backend::current().unary(UnaryOp::GeluGrad, x.as_slice(), &mut out);
            std::hint::black_box(&out);
        }));
    }

    // Softmax and layer-norm row gradients over attention-score rows.
    // Cache-resident on purpose: in training these rows are produced and
    // consumed inside a cache-warm attention block, so a DRAM-streaming
    // shape would measure memory bandwidth, not the row kernels.
    {
        let (nrows, rowlen) = if smoke {
            (16 * 64, 64usize)
        } else {
            (32 * 64, 64usize)
        };
        let y = {
            let logits = ctensor::init::randn(&[nrows, rowlen], 1.0, &mut rng);
            logits.softmax_last()
        };
        let x = ctensor::init::randn(&[nrows * rowlen], 1.0, &mut rng);
        let dy = ctensor::init::randn(&[nrows * rowlen], 1.0, &mut rng);
        let mut dx = vec![0.0f32; nrows * rowlen];
        rows.push(compare("softmax_grad_rows", 20, || {
            backend::current().softmax_grad_rows(y.as_slice(), dy.as_slice(), &mut dx, rowlen);
            std::hint::black_box(&dx);
        }));
        rows.push(compare("layernorm_grad_rows", 20, || {
            backend::current().layernorm_grad_rows(
                x.as_slice(),
                dy.as_slice(),
                &mut dx,
                rowlen,
                1e-5,
            );
            std::hint::black_box(&dx);
        }));
    }

    // Fused attention backward: windowed Swin shape.
    {
        let (bh, n, d) = if smoke {
            (24usize, 64usize, 8usize)
        } else {
            (96usize, 64usize, 8usize)
        };
        let sz = bh * n * d;
        let q = ctensor::init::randn(&[sz], 1.0, &mut rng);
        let k = ctensor::init::randn(&[sz], 1.0, &mut rng);
        let v = ctensor::init::randn(&[sz], 1.0, &mut rng);
        let dout = ctensor::init::randn(&[sz], 1.0, &mut rng);
        let scale = 1.0 / (d as f32).sqrt();
        let mut dq = vec![0.0f32; sz];
        let mut dk = vec![0.0f32; sz];
        let mut dv = vec![0.0f32; sz];
        rows.push(compare("attention_grad", if smoke { 3 } else { 5 }, || {
            let spec = AttentionSpec {
                batch: bh,
                heads: 3,
                n,
                d,
                scale,
                mask: None,
                mask_windows: 1,
            };
            dq.iter_mut().for_each(|x| *x = 0.0);
            dk.iter_mut().for_each(|x| *x = 0.0);
            dv.iter_mut().for_each(|x| *x = 0.0);
            backend::current().attention_grad(
                q.as_slice(),
                k.as_slice(),
                v.as_slice(),
                dout.as_slice(),
                &mut dq,
                &mut dk,
                &mut dv,
                &spec,
            );
            std::hint::black_box((&dq, &dk, &dv));
        }));
    }

    // Fused Adam step: single pass over params + grads + both moments,
    // versus the unfused tensor-op composite it replaced (eight whole-array
    // passes with a fresh temporary each). The fused/unfused ratio is the
    // optimizer-fusion win; both run under the Blocked backend. Reported
    // separately from the backward table — the update is O(memory), not a
    // backward kernel, so the scalar-vs-blocked ratio is bandwidth-bound.
    let adam = {
        let len = if smoke { 512 * 1024 } else { 2 * 1024 * 1024 };
        let p0 = ctensor::init::randn(&[len], 1.0, &mut rng);
        let g = ctensor::init::randn(&[len], 0.1, &mut rng);
        let spec = AdamStepSpec {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            bc1: 0.1,
            bc2: 1e-3,
        };
        let mut p = p0.as_slice().to_vec();
        let mut m = vec![0.0f32; len];
        let mut v = vec![0.0f32; len];
        let mut fused = |be: Arc<dyn Backend>, reps: usize| {
            time_under(be, reps, || {
                backend::current().adam_step(&mut p, g.as_slice(), &mut m, &mut v, &spec);
                std::hint::black_box((&p, &m, &v));
            })
        };
        let fused_blocked_ms = fused(Arc::new(Blocked::from_env()), 10);
        let fused_scalar_ms = fused(Arc::new(ScalarRef), 10);

        let gt = Tensor::from_vec(g.as_slice().to_vec(), &[len]);
        let mut pt = p0.clone();
        let mut mt = Tensor::zeros(&[len]);
        let mut vt = Tensor::zeros(&[len]);
        let unfused_blocked_ms = time_under(Arc::new(Blocked::from_env()), 10, || {
            mt = mt.scale(spec.beta1).add(&gt.scale(1.0 - spec.beta1));
            vt = vt
                .scale(spec.beta2)
                .add(&gt.square().scale(1.0 - spec.beta2));
            let m_hat = mt.scale(1.0 / spec.bc1);
            let v_hat = vt.scale(1.0 / spec.bc2);
            let denom = v_hat.sqrt().map(|x| x + spec.eps);
            let update = m_hat.div(&denom).scale(spec.lr);
            let decay = pt.scale(spec.lr * spec.weight_decay);
            pt = pt.sub(&update).sub(&decay);
            std::hint::black_box((&pt, &mt, &vt));
        });
        eprintln!(
            "[train] adam_step: fused blocked {fused_blocked_ms:.2} ms, fused scalar \
             {fused_scalar_ms:.2} ms, unfused blocked {unfused_blocked_ms:.2} ms \
             ({:.1}x fusion win)",
            unfused_blocked_ms / fused_blocked_ms
        );
        (len, fused_blocked_ms, fused_scalar_ms, unfused_blocked_ms)
    };

    // --------------------------------------------- samples/sec headline

    // Batch-first training throughput on the tiny Swin surrogate: stacked
    // 4-episode batches through forward, tape backward, and the fused
    // optimizer — the full training step the paper measures per-GPU.
    let (batch_size, steps) = if smoke {
        (4usize, 2usize)
    } else {
        (4usize, 6usize)
    };
    let model_cfg = SwinConfig::tiny(8, 8, 4, 2);
    let episodes = synthetic_episodes(&model_cfg, batch_size);
    let batch = stack_episodes(&episodes);
    let model = SwinSurrogate::new(model_cfg.clone(), 0);
    let mask = Tensor::ones(&[model_cfg.ny, model_cfg.nx]);
    let mut trainer = Trainer::new(model, mask, TrainConfig::default());
    trainer.step(&batch); // warmup (backend caches, allocator)
    let t0 = Instant::now();
    let mut instances = 0usize;
    for _ in 0..steps {
        instances += trainer.step(&batch).instances;
    }
    let train_wall = t0.elapsed().as_secs_f64();
    let samples_per_sec = instances as f64 / train_wall.max(1e-9);
    eprintln!(
        "[train] batch-first training: {instances} instances in {train_wall:.3}s \
         = {samples_per_sec:.2} samples/sec"
    );

    // ------------------------------------------------------------- report
    let hw_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let headline = rows[0].speedup();
    let all_pass = rows.iter().all(|r| r.speedup() >= 2.0);
    let stamp = cbench::RunStamp::capture("blocked-vs-scalar");
    let mut json = format!(
        "{{\n  \"bench\": \"train\",\n  \"unit\": \"ms\",\n  {},\n  \"hardware_cores\": {},\n  \"smoke\": {},\n  \"samples_per_sec\": {:.3},\n  \"train\": {{\"batch\": {}, \"steps\": {}, \"instances\": {}, \"wall_seconds\": {:.4}}},\n  \"backward_results\": [\n",
        stamp.json_fields(),
        hw_cores,
        smoke,
        samples_per_sec,
        batch_size,
        steps,
        instances,
        train_wall,
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {:.4}, \"blocked_ms\": {:.4}, \"speedup\": {:.3}, \"pass_2x\": {}}}{}\n",
            r.name,
            r.scalar_ms,
            r.blocked_ms,
            r.speedup(),
            r.speedup() >= 2.0,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let (adam_len, adam_fused_blocked, adam_fused_scalar, adam_unfused_blocked) = adam;
    json.push_str(&format!(
        "  ],\n  \"optimizer\": {{\"name\": \"adam_step\", \"elements\": {adam_len}, \
         \"fused_blocked_ms\": {adam_fused_blocked:.4}, \"fused_scalar_ms\": {adam_fused_scalar:.4}, \
         \"unfused_blocked_ms\": {adam_unfused_blocked:.4}, \"fusion_speedup\": {:.3}}},\n  \
         \"headline_backward_speedup\": {headline:.3},\n  \"all_rows_pass_2x\": {all_pass}\n}}\n",
        adam_unfused_blocked / adam_fused_blocked,
    ));

    let json = cbench::telemetry::splice_registry(json);
    let path = std::env::var("BENCH_TRAIN_OUT").unwrap_or_else(|_| "BENCH_train.json".into());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[train] could not write {path}: {e}"));
    println!("{json}");

    eprintln!(
        "[train] headline backward (matmul adjoints) speedup: {headline:.1}x ({}); all rows >= 2x: {all_pass}",
        if headline >= 2.0 { "PASS >= 2x" } else { "below 2x target" }
    );
}
