//! Ensemble-forecasting throughput: the ensemble engine (one shared base
//! simulation + analytic member-window synthesis + members stacked
//! through `predict_batch`) against naive per-member sequential
//! forecasting, emitting `BENCH_ensemble.json`.
//!
//! Both arms solve the same task: given a trained surrogate, an analysis
//! state (`ic`) and the base forcing, forecast N perturbed forcing
//! scenarios (a seeded Latin-hypercube surge study).
//!
//! - **naive** — what the repo supported before the ensemble subsystem:
//!   each member scenario only exists as forcing parameters, so its
//!   episode window (IC + future boundary frames consistent with *its*
//!   forcing) must be produced by running the physics per member, then
//!   forecast with one `predict_episode` each.
//! - **engine** — the perturbation catalog constructs families whose
//!   boundary response is analytic, so ONE base ROMS episode is shared by
//!   every member: windows are synthesized (forcing elevation delta +
//!   surge pulse + seeded IC noise) and forecast in stacked
//!   `predict_batch` chunks.
//!
//! The headline is engine-vs-naive members/sec. The stacked-vs-sequential
//! *inference* ratio on identical windows is also recorded honestly —
//! including the thread-pool fan-out, which is where multi-core hosts
//! gain — so no term of the win hides inside the headline.
//!
//! `--smoke` trims training and the member count for CI; the measured
//! points and the JSON schema are identical.

use std::io::Write;
use std::time::Instant;

use ccore::{train_surrogate, Scenario};
use censemble::{
    synthesize_windows, EnsembleRunner, EnsembleStats, PerturbationCatalog, PerturbationSpace,
    RunnerConfig, SamplingStrategy,
};
use cocean::Roms;
use cphysics::VerifierConfig;
use ctensor::backend::BackendChoice;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_members = if smoke { 8 } else { 16 };
    let seed = 42u64;
    let year = 1u32;

    let mut sc = Scenario::small().with_backend(BackendChoice::Blocked);
    sc.epochs = if smoke { 1 } else { 3 };
    let grid = sc.grid();
    eprintln!("[ensemble] simulating training archive…");
    let train_archive = sc.simulate_archive(&grid, 0, 40);
    eprintln!("[ensemble] training surrogate ({} epochs)…", sc.epochs);
    let trained = train_surrogate(&sc, &grid, &train_archive);

    // The shared operational inputs: an analysis state after spin-up.
    eprintln!("[ensemble] spinning up analysis state (test year)…");
    let ic = sc
        .simulate_archive(&grid, year, 1)
        .pop()
        .expect("one snapshot");
    let t_out = sc.t_out;
    let interval = sc.snapshot_interval;

    let catalog = PerturbationCatalog::new(
        PerturbationSpace::surge_study(),
        SamplingStrategy::LatinHypercube { members: n_members },
        seed,
    );
    let members = catalog.members();
    let _pin = ctensor::backend::scoped(BackendChoice::Blocked.resolve());

    // ---------------------------------------------------- naive baseline
    // Per member: ROMS under the member's forcing supplies the boundary
    // window, then one `predict_episode`.
    eprintln!("[ensemble] naive arm: {n_members} per-member simulations + forecasts…");
    let t_naive = Instant::now();
    let mut naive_sim_s = 0.0;
    let mut naive_infer_s = 0.0;
    let mut naive_forecasts = Vec::with_capacity(n_members);
    for m in &members {
        let member_sc = m.scenario(&sc, year).expect("valid member scenario");
        let t0 = Instant::now();
        let mut roms = Roms::new(&grid, member_sc.ocean_config(&grid, year));
        roms.load(&ic);
        let frames = roms.record(t_out, interval);
        naive_sim_s += t0.elapsed().as_secs_f64();
        let mut window = Vec::with_capacity(t_out + 1);
        window.push(ic.clone());
        window.extend(frames);
        let t0 = Instant::now();
        naive_forecasts.push(std::hint::black_box(trained.predict_episode(&window)));
        naive_infer_s += t0.elapsed().as_secs_f64();
    }
    drop(naive_forecasts);
    let naive_wall = t_naive.elapsed().as_secs_f64();
    let naive_rate = n_members as f64 / naive_wall;
    eprintln!(
        "[ensemble] naive: {naive_wall:.2} s ({naive_rate:.2} members/s; \
         sim {naive_sim_s:.2} s, inference {naive_infer_s:.3} s)"
    );

    // -------------------------------------------------- ensemble engine
    // One base episode simulation shared by all members, synthesized
    // windows, stacked inference.
    eprintln!("[ensemble] engine arm: shared base episode + synthesis + stacked inference…");
    let t_engine = Instant::now();
    let t0 = Instant::now();
    let mut roms = Roms::new(&grid, sc.ocean_config(&grid, year));
    roms.load(&ic);
    let frames = roms.record(t_out, interval);
    let mut base_window = Vec::with_capacity(t_out + 1);
    base_window.push(ic.clone());
    base_window.extend(frames);
    let base_sim_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let windows =
        synthesize_windows(&sc, &grid, &base_window, year, &members).expect("valid members");
    let synth_s = t0.elapsed().as_secs_f64();

    let runner_cfg = RunnerConfig {
        chunk: n_members,
        verifier: None,
        fallback: false,
        threads: 1,
    };
    let runner = EnsembleRunner::new(&grid, &trained, &sc, year, runner_cfg);
    let outcome = runner.run(&windows).expect("ensemble run");
    let engine_wall = t_engine.elapsed().as_secs_f64();
    let engine_rate = n_members as f64 / engine_wall;
    let headline_speedup = naive_wall / engine_wall;
    eprintln!(
        "[ensemble] engine: {engine_wall:.2} s ({engine_rate:.2} members/s; base sim \
         {base_sim_s:.2} s, synthesis {synth_s:.3} s, stacked inference {:.3} s in {} batch(es))",
        outcome.inference_seconds, outcome.batches
    );

    // ------------------------------- stacked-vs-sequential inference only
    // Same synthesized windows, so this isolates what stacking (and the
    // thread pool) buys at the inference layer alone.
    let best_of = |reps: usize, mut f: Box<dyn FnMut() -> f64 + '_>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            best = best.min(f());
        }
        best
    };
    let reps = if smoke { 1 } else { 3 };
    let seq_infer_s = best_of(
        reps,
        Box::new(|| {
            let t0 = Instant::now();
            for w in &windows {
                std::hint::black_box(trained.predict_episode(&w.window));
            }
            t0.elapsed().as_secs_f64()
        }),
    );
    let stacked_infer_s = best_of(
        reps,
        Box::new(|| {
            let t0 = Instant::now();
            std::hint::black_box(runner.run(&windows).expect("stacked run"));
            t0.elapsed().as_secs_f64()
        }),
    );
    let spec = trained.spec();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par_cfg = RunnerConfig {
        chunk: n_members.div_ceil(threads).max(1),
        verifier: None,
        fallback: false,
        threads,
    };
    let par_infer_s = best_of(
        reps,
        Box::new(|| {
            let t0 = Instant::now();
            std::hint::black_box(
                censemble::run_parallel(&spec, &grid, &sc, year, par_cfg, &windows)
                    .expect("parallel run"),
            );
            t0.elapsed().as_secs_f64()
        }),
    );
    let stacked_speedup = seq_infer_s / stacked_infer_s;
    let par_speedup = seq_infer_s / par_infer_s;
    eprintln!(
        "[ensemble] inference only: sequential {:.1} ms, stacked {:.1} ms ({stacked_speedup:.2}x), \
         {threads}-thread pool {:.1} ms ({par_speedup:.2}x)",
        seq_infer_s * 1e3,
        stacked_infer_s * 1e3,
        par_infer_s * 1e3
    );

    // ------------------------------------------ verified surge products
    // The full hybrid product: verification verdicts per member, fallback
    // where physics rejects the surrogate, exceedance map.
    let verified = EnsembleRunner::new(
        &grid,
        &trained,
        &sc,
        year,
        RunnerConfig {
            chunk: n_members,
            verifier: Some(VerifierConfig::default()),
            fallback: true,
            threads: 1,
        },
    )
    .run(&windows)
    .expect("verified run");
    let stats = EnsembleStats::compute(&verified, &EnsembleStats::DEFAULT_PROBS);
    let threshold = 0.3f32;
    let exceed = stats.exceedance(threshold);
    let at_risk = exceed.iter().filter(|&&p| p > 0.5).count();
    eprintln!(
        "[ensemble] verified products: pass rate {:.0}%, {} fallback member(s), \
         {at_risk} cells with P[peak ζ > {threshold} m] > 0.5",
        stats.pass_rate * 100.0,
        verified.fallback_members()
    );

    // ------------------------------------------------------------- report
    let stamp = cbench::RunStamp::capture("blocked");
    let json = format!(
        "{{\n  \"bench\": \"ensemble\",\n  \"smoke\": {smoke},\n  {},\n  \
         \"members\": {n_members},\n  \"t_out\": {t_out},\n  \"seed\": {seed},\n  \
         \"naive_sequential\": {{\"wall_s\": {naive_wall:.4}, \"members_per_s\": {naive_rate:.3}, \
         \"sim_s\": {naive_sim_s:.4}, \"inference_s\": {naive_infer_s:.4}}},\n  \
         \"engine\": {{\"wall_s\": {engine_wall:.4}, \"members_per_s\": {engine_rate:.3}, \
         \"base_sim_s\": {base_sim_s:.4}, \"synthesis_s\": {synth_s:.4}, \
         \"stacked_inference_s\": {:.4}, \"batches\": {}, \"chunk\": {n_members}}},\n  \
         \"stacked_inference\": {{\"sequential_s\": {seq_infer_s:.4}, \"stacked_s\": {stacked_infer_s:.4}, \
         \"speedup\": {stacked_speedup:.3}, \"pool_threads\": {threads}, \"pool_s\": {par_infer_s:.4}, \
         \"pool_speedup\": {par_speedup:.3}}},\n  \
         \"verified\": {{\"pass_rate\": {:.4}, \"fallback_members\": {}, \
         \"exceedance_threshold_m\": {threshold}, \"cells_above_half_probability\": {at_risk}}},\n  \
         \"headline\": {{\"workload\": \"{n_members}-member seeded surge ensemble\", \
         \"mechanism\": \"one shared base simulation + analytic window synthesis + members stacked through predict_batch\", \
         \"note\": \"the dominant win is amortizing per-member physics window generation across the ensemble; the stacked-vs-sequential inference ratio on identical windows is recorded separately above (batching inference wins with cores, not on single-core hosts)\", \
         \"members_per_s\": {engine_rate:.3}, \"speedup_vs_naive\": {headline_speedup:.3}}}\n}}\n",
        stamp.json_fields(),
        outcome.inference_seconds,
        outcome.batches,
        stats.pass_rate,
        verified.fallback_members(),
    );

    let json = cbench::telemetry::splice_registry(json);
    let path = std::env::var("BENCH_ENSEMBLE_OUT").unwrap_or_else(|_| "BENCH_ensemble.json".into());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[ensemble] could not write {path}: {e}"));
    println!("{json}");

    eprintln!(
        "[ensemble] headline ensemble-engine speedup vs naive per-member forecasting: \
         {headline_speedup:.1}x ({})",
        if headline_speedup >= 2.0 {
            "PASS >= 2x"
        } else {
            "below 2x target"
        }
    );
}
