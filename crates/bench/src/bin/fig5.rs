//! Fig. 5: spatial maps — ROMS vs surrogate vs difference for u, v, ζ.

use cbench::{banner, write_csv, Context};

fn main() {
    banner(
        "Fig. 5 — spatial forecast maps (ROMS vs AI vs diff)",
        "paper Fig. 5",
    );
    let ctx = Context::small(20);
    let w = &ctx.test_archive[..ctx.scenario.t_out + 1];
    let pred = ctx.trained.predict_episode(w);
    let reference = &w[w.len() - 1];
    let ai = pred.last().unwrap();
    let k = ctx.grid.sigma.nz - 1; // surface layer

    for (name, rf, pf) in [("u", &reference.u, &ai.u), ("v", &reference.v, &ai.v)] {
        let mut rows = Vec::new();
        let mut max_diff = 0.0f32;
        for j in 0..reference.ny {
            for i in 0..reference.nx {
                let idx = reference.idx3(k, j, i);
                let d = pf[idx] - rf[idx];
                max_diff = max_diff.max(d.abs());
                rows.push(format!("{j},{i},{},{},{}", rf[idx], pf[idx], d));
            }
        }
        write_csv(&format!("fig5_{name}.csv"), "j,i,roms,ai,diff", &rows);
        println!("{name}: surface-layer max |diff| = {max_diff:.4} m/s");
    }
    let mut rows = Vec::new();
    let mut max_diff = 0.0f32;
    for j in 0..reference.ny {
        for i in 0..reference.nx {
            let idx = reference.idx2(j, i);
            let d = ai.zeta[idx] - reference.zeta[idx];
            max_diff = max_diff.max(d.abs());
            rows.push(format!(
                "{j},{i},{},{},{}",
                reference.zeta[idx], ai.zeta[idx], d
            ));
        }
    }
    write_csv("fig5_zeta.csv", "j,i,roms,ai,diff", &rows);
    println!("ζ: max |diff| = {max_diff:.4} m (tidal range ~0.75 m)");
}
