//! Fig. 9: training-throughput ablation — full pipeline vs each
//! optimization removed.

use cbench::{banner, write_csv};
use ccore::Scenario;
use cpipeline::{
    DataLoader, EncodeConfig, LoaderConfig, NormStats, SnapshotStore, TrainConfig, Trainer,
    WindowSpec,
};
use csurrogate::{CheckpointPolicy, SwinSurrogate};
use ctensor::prelude::*;
use std::sync::Arc;

fn main() {
    banner("Fig. 9 — pipeline-optimization ablation", "paper Fig. 9");
    let sc = Scenario::small();
    let grid = sc.grid();
    let archive = sc.simulate_archive(&grid, 0, 40);
    let store = Arc::new(SnapshotStore::build(&archive));
    // Make "I/O" non-trivial, like the paper's SSD leg.
    let mask_vec: Vec<f64> = (0..grid.ny)
        .flat_map(|j| {
            let m = &grid.mask_rho;
            (0..grid.nx).map(move |i| m.get(j as isize, i as isize))
        })
        .collect();
    let stats = NormStats::from_snapshots(&archive, &mask_vec);
    let mask = Tensor::from_vec(
        mask_vec.iter().map(|&v| v as f32).collect(),
        &[grid.ny, grid.nx],
    );
    let starts = WindowSpec::train(sc.t_out).starts(archive.len());

    println!(
        "\npaper: ours 1.36 inst/s | w/o ckpt 0.81 | w/o pin-memory 0.74 | w/o prefetch 0.45\n"
    );
    let mut rows = Vec::new();
    let variants: [(&str, usize, bool, CheckpointPolicy, usize); 4] = [
        ("full", 2, true, CheckpointPolicy::DiscardWMsa, 2),
        ("w/o ckpt", 2, true, CheckpointPolicy::None, 1),
        ("w/o pinned", 2, false, CheckpointPolicy::DiscardWMsa, 2),
        ("w/o prefetch", 0, true, CheckpointPolicy::DiscardWMsa, 2),
    ];
    for (name, workers, pinned, ckpt, batch) in variants {
        let mut store_l = SnapshotStore::build(&archive);
        store_l.fetch_latency_us = 2_000; // 2 ms per snapshot "SSD read"
        let loader = DataLoader::new(
            Arc::new(store_l),
            starts.clone(),
            sc.t_out,
            stats,
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: workers,
                prefetch_factor: 4,
                pinned,
                batch_size: batch,
                shuffle_seed: Some(0),
            },
        );
        let mut model = SwinSurrogate::new(sc.swin.clone(), sc.seed);
        model.checkpoint = ckpt;
        let mut trainer = Trainer::new(model, mask.clone(), TrainConfig::default());
        let e = trainer.train_epoch(&loader, 0);
        println!(
            "{name:<14} {:>6.2} inst/s  (loss {:.4})",
            e.instances_per_sec, e.mean_loss
        );
        rows.push(format!("{name},{}", e.instances_per_sec));
    }
    let _ = store;
    write_csv("fig9.csv", "variant,instances_per_sec", &rows);
}
