//! Table III: MAE/RMSE of the surrogate at short and long horizons.

use cbench::{banner, write_csv, Context};
use ccore::{train_surrogate, ErrorTable};

fn main() {
    banner(
        "Table III — surrogate MAE/RMSE per variable",
        "paper Table III",
    );
    let ctx = Context::small(30);

    // Short horizon (the paper's 12-hour model): per-episode prediction.
    let mut refs = Vec::new();
    let mut preds = Vec::new();
    for w in ctx.test_windows() {
        let p = ctx.trained.predict_episode(w);
        refs.extend(w[1..].iter().cloned());
        preds.extend(p);
    }
    let short = ErrorTable::between(&ctx.grid, &refs, &preds);

    // Long horizon (the paper's 12-day model): a coarse model at 4x the
    // snapshot stride, evaluated on the strided test archive.
    let mut sc_coarse = ctx.scenario.clone();
    sc_coarse.snapshot_interval = ctx.scenario.snapshot_interval * 4.0;
    let coarse_train: Vec<_> = ctx.train_archive.iter().step_by(4).cloned().collect();
    let coarse = train_surrogate(&sc_coarse, &ctx.grid, &coarse_train);
    let coarse_test: Vec<_> = ctx.test_archive.iter().step_by(4).cloned().collect();
    let mut crefs = Vec::new();
    let mut cpreds = Vec::new();
    let len = sc_coarse.t_out + 1;
    for w in coarse_test.chunks_exact(len) {
        let p = coarse.predict_episode(w);
        crefs.extend(w[1..].iter().cloned());
        cpreds.extend(p);
    }
    let long = ErrorTable::between(&ctx.grid, &crefs, &cpreds);

    println!("\npaper 12-hour: MAE u=1.80e-2 v=1.73e-2 w=9.60e-5 ζ=4.58e-2 | RMSE u=2.89e-2 v=2.61e-2 w=3.57e-4 ζ=7.25e-2");
    println!("paper 12-day : MAE u=1.49e-2 v=1.40e-2 w=8.27e-5 ζ=4.79e-2 | RMSE u=2.50e-2 v=2.10e-2 w=2.61e-4 ζ=7.74e-2\n");
    println!("{}", short.row("short"));
    println!("{}", long.row("long"));
    let rows = vec![
        format!(
            "short,{},{},{},{},{},{},{},{}",
            short.mae[0],
            short.mae[1],
            short.mae[2],
            short.mae[3],
            short.rmse[0],
            short.rmse[1],
            short.rmse[2],
            short.rmse[3]
        ),
        format!(
            "long,{},{},{},{},{},{},{},{}",
            long.mae[0],
            long.mae[1],
            long.mae[2],
            long.mae[3],
            long.rmse[0],
            long.rmse[1],
            long.rmse[2],
            long.rmse[3]
        ),
    ];
    write_csv(
        "table3.csv",
        "horizon,mae_u,mae_v,mae_w,mae_z,rmse_u,rmse_v,rmse_w,rmse_z",
        &rows,
    );
    // Shape check: w errors are orders of magnitude below u/v (w ≈ 0).
    assert!(short.mae[2] < short.mae[0]);
}
