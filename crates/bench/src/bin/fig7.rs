//! Fig. 7: verification pass rate vs water-mass-residual threshold.

use cbench::{banner, write_csv, Context};
use cphysics::{pass_rate_curve, Verifier, VerifierConfig};

fn main() {
    banner("Fig. 7 — pass rate vs residual threshold", "paper Fig. 7");
    let ctx = Context::small(30);
    let verifier = Verifier::new(&ctx.grid, VerifierConfig::default());

    // Residual of every AI-predicted transition over the test year.
    let mut residuals = Vec::new();
    for w in ctx.test_windows() {
        let pred = ctx.trained.predict_episode(w);
        let mut prev = w[0].clone();
        for p in pred {
            residuals.push(verifier.check_pair(&prev, &p).mean_residual);
            prev = p;
        }
    }
    residuals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = residuals[residuals.len() / 2];
    println!(
        "\n{} transitions; residual median {median:.3e} m/s (paper's scale: 3e-4..5.5e-4)",
        residuals.len()
    );

    // Sweep thresholds spanning our residual distribution (same shape as
    // the paper's sweep around its scale).
    let thresholds: Vec<f64> = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|m| m * median)
        .collect();
    let curve = pass_rate_curve(&residuals, &thresholds);
    let mut rows = Vec::new();
    for (t, r) in &curve {
        println!("threshold {t:.3e} m/s → pass rate {:.1}%", r * 100.0);
        rows.push(format!("{t},{r}"));
    }
    write_csv("fig7.csv", "threshold,pass_rate", &rows);
    // Shape: monotone increasing.
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1);
    }
}
