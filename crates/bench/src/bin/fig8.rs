//! Fig. 8: end-to-end hybrid workflow time and speedup vs threshold.

use cbench::{banner, write_csv, Context};
use ccore::HybridForecaster;
use cocean::Roms;
use cphysics::{Verifier, VerifierConfig};

fn main() {
    banner(
        "Fig. 8 — hybrid workflow time & speedup vs threshold",
        "paper Fig. 8",
    );
    let ctx = Context::small(30);
    let n_episodes = 3usize;
    let t_out = ctx.scenario.t_out;
    let interval = ctx.scenario.snapshot_interval;
    let ocean = ctx.scenario.ocean_config(&ctx.grid, 1);

    // All-ROMS baseline for the same horizon.
    let t0 = std::time::Instant::now();
    let mut roms = Roms::new(&ctx.grid, ocean.clone());
    roms.load(&ctx.test_archive[0]);
    let _ = roms.record(n_episodes * t_out, interval);
    let roms_wall = t0.elapsed().as_secs_f64();
    println!(
        "\nall-ROMS baseline: {roms_wall:.3}s for {} steps",
        n_episodes * t_out
    );

    // Threshold sweep anchored at the AI residual median (shape matches
    // the paper's absolute sweep around its own residual scale).
    let verifier = Verifier::new(&ctx.grid, VerifierConfig::default());
    let mut sample = Vec::new();
    for w in ctx.test_windows().iter().take(2) {
        let pred = ctx.trained.predict_episode(w);
        let mut prev = w[0].clone();
        for p in pred {
            sample.push(verifier.check_pair(&prev, &p).mean_residual);
            prev = p;
        }
    }
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sample[sample.len() / 2];

    let mut rows = Vec::new();
    for mult in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let threshold = mult * median;
        let fc = HybridForecaster::new(
            &ctx.grid,
            &ctx.trained,
            ocean.clone(),
            VerifierConfig { threshold },
        );
        let r = fc
            .forecast(&ctx.test_archive, 0, n_episodes)
            .expect("reference long enough");
        let total = r.total_seconds();
        let speedup = roms_wall / total;
        println!(
            "threshold {threshold:.3e}: total {total:>7.3}s (AI {} / fallback {}) → speedup {speedup:>6.1}x",
            r.episodes_ai, r.episodes_fallback
        );
        rows.push(format!(
            "{threshold},{total},{},{},{speedup}",
            r.episodes_ai, r.episodes_fallback
        ));
    }
    write_csv(
        "fig8.csv",
        "threshold,total_s,episodes_ai,episodes_fallback,speedup",
        &rows,
    );
}
