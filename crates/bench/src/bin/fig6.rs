//! Fig. 6: ζ time series at three probe locations, ROMS vs surrogate.

use cbench::{banner, write_csv, Context};

fn main() {
    banner("Fig. 6 — ζ time series at 3 locations", "paper Fig. 6");
    let ctx = Context::small(30);
    // Three wet probes: ocean, inlet, inner estuary (like the paper's
    // spread across the domain).
    let probes = pick_probes(&ctx);
    println!("probes: {probes:?}");

    // Episode-chained forecast across the test archive.
    let mut pred = Vec::new();
    let mut reference = Vec::new();
    for w in ctx.test_windows() {
        pred.extend(ctx.trained.predict_episode(w));
        reference.extend(w[1..].iter().cloned());
    }
    let mut rows = Vec::new();
    for (t, (r, p)) in reference.iter().zip(&pred).enumerate() {
        let mut row = format!("{t}");
        for &(j, i) in &probes {
            row.push_str(&format!(",{},{}", r.zeta_at(j, i), p.zeta_at(j, i)));
        }
        rows.push(row);
    }
    write_csv("fig6_series.csv", "t,roms1,ai1,roms2,ai2,roms3,ai3", &rows);
    for (n, &(j, i)) in probes.iter().enumerate() {
        let rmse = (reference
            .iter()
            .zip(&pred)
            .map(|(r, p)| {
                let d = (r.zeta_at(j, i) - p.zeta_at(j, i)) as f64;
                d * d
            })
            .sum::<f64>()
            / reference.len() as f64)
            .sqrt();
        println!(
            "location {} ({j},{i}): ζ RMSE = {rmse:.4} m over {} steps",
            n + 1,
            reference.len()
        );
    }
}

fn pick_probes(ctx: &cbench::Context) -> Vec<(usize, usize)> {
    let g = &ctx.grid;
    let mut out = Vec::new();
    for frac in [0.15f64, 0.4, 0.7] {
        let i = (g.nx as f64 * frac) as usize;
        for j in (2..g.ny - 2).rev() {
            if g.mask_rho.get(j as isize, i as isize) > 0.5 && g.h.get(j as isize, i as isize) > 1.0
            {
                out.push((j, i));
                break;
            }
        }
    }
    out
}
