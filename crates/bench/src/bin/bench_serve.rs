//! Serving-throughput benchmark: the micro-batched replica server vs the
//! sequential (batch=1) baseline, emitting `BENCH_serve.json`.
//!
//! Two workloads, 64 concurrent requests each, both on the Blocked
//! backend with the forecast cache disabled (so every win is earned by
//! the serving machinery, not by memoized results):
//!
//! - **distinct**: 64 unique episode windows swept over
//!   `(workers, max_batch)` — pure batched-compute scaling. On multi-core
//!   hosts this is where stacked forwards pull ahead; the JSON records
//!   whatever the hardware gives.
//! - **mixed** (the headline): 64 requests drawn round-robin from 8
//!   distinct windows — the paper's deployment traffic, where many users
//!   ask for the same storm forecast. Single-flight coalescing collapses
//!   duplicates onto one in-flight computation and the 8 leaders form one
//!   micro-batch, so the server answers 64 requests with 8 forwards. The
//!   sequential baseline (one `predict_episode` per request, no serving
//!   stack) recomputes all 64.
//!
//! Headline criterion: mixed-traffic micro-batched throughput ≥ 3× the
//! sequential baseline.
//!
//! Every sweep point (and the sequential baseline) is best-of-N over
//! fresh servers — scheduler noise on small hosts easily swamps the
//! effect being measured, and best-of is the standard cure.
//!
//! The ops plane rides along: the mixed headline is re-measured with the
//! flight recorder disabled (the always-on recorder + SLO engine must
//! keep the recorder-on run ≥ 0.95× of recorder-off), a Prometheus
//! scraper hammers `/metrics` over real TCP *while* the mixed load runs
//! (scrape latency is reported), and the flight-recorder state is dumped
//! to `INCIDENT_serve.json`. With `--ops-hold-secs N` the ops server is
//! additionally held on `COASTAL_OPS_ADDR` (default `127.0.0.1:9464`)
//! after the report is written, so CI can curl the live endpoints.
//!
//! `--smoke` trims training and repeats so CI finishes in seconds; the
//! measured points and the JSON schema are identical.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccore::{train_surrogate, Scenario, SurrogateSpec};
use cocean::Snapshot;
use cserve::{ForecastRequest, ForecastServer, ServeConfig};
use ctensor::backend::BackendChoice;

struct RunResult {
    workers: usize,
    max_batch: usize,
    wall_s: f64,
    rps: f64,
    speedup: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    coalesced: u64,
}

fn episode_windows(archive: &[Snapshot], t_out: usize, n: usize) -> Vec<Vec<Snapshot>> {
    // Stride-1 sliding windows: n distinct requests (distinct cache keys).
    (0..n).map(|i| archive[i..i + t_out + 1].to_vec()).collect()
}

/// Push `requests` through a fresh server and measure wall-clock
/// first-submit → last-response. Repeated `reps` times (fresh server and
/// cold queue each time); the best-throughput repetition is reported.
fn serve_run(
    spec: &SurrogateSpec,
    requests: &[Vec<Snapshot>],
    t_out: usize,
    workers: usize,
    max_batch: usize,
    seq_rps: f64,
    reps: usize,
) -> RunResult {
    let mut best: Option<RunResult> = None;
    for _ in 0..reps {
        let server = ForecastServer::new(
            spec.clone(),
            ServeConfig {
                workers,
                max_batch,
                max_wait: Duration::from_millis(2),
                queue_capacity: requests.len() * 2,
                cache_capacity: 0, // measure the serving machinery, not the LRU
                backend: BackendChoice::Blocked,
                scenario_id: None,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let handles: Vec<_> = requests
            .iter()
            .map(|w| {
                server
                    .submit(ForecastRequest::new(0, w.clone(), t_out))
                    .expect("benchmark stays under queue capacity")
            })
            .collect();
        for h in handles {
            h.wait().expect("request answered");
        }
        let wall = t0.elapsed().as_secs_f64();
        let m = server.metrics();
        let rps = requests.len() as f64 / wall;
        let r = RunResult {
            workers,
            max_batch,
            wall_s: wall,
            rps,
            speedup: rps / seq_rps,
            p50_ms: m.p50_ms,
            p95_ms: m.p95_ms,
            p99_ms: m.p99_ms,
            mean_batch: m.mean_batch_size(),
            coalesced: m.coalesced,
        };
        if best.as_ref().is_none_or(|b| r.rps > b.rps) {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

fn result_json(r: &RunResult) -> String {
    format!(
        "{{\"workers\": {}, \"max_batch\": {}, \"wall_s\": {:.4}, \"throughput_rps\": {:.2}, \
         \"speedup_vs_sequential\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"mean_batch\": {:.2}, \"coalesced\": {}}}",
        r.workers,
        r.max_batch,
        r.wall_s,
        r.rps,
        r.speedup,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        r.mean_batch,
        r.coalesced
    )
}

/// Minimal HTTP/1.1 GET against the ops plane (the server answers
/// `Connection: close`, so read-to-EOF frames the response).
fn ops_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

struct ScrapeStats {
    scrapes: usize,
    failed: usize,
    p50_ms: f64,
    max_ms: f64,
    /// Mixed-traffic throughput while the scraper was hammering.
    load_rps: f64,
}

/// Push the mixed workload through `server` while a scraper thread GETs
/// `/metrics` in a tight loop — the "scrape under load" number: a live
/// Prometheus scrape must stay cheap and well-formed while the admission
/// queue is full.
fn scrape_under_load(
    server: &ForecastServer,
    ops_addr: SocketAddr,
    requests: &[Vec<Snapshot>],
    t_out: usize,
) -> ScrapeStats {
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut lat_ms = Vec::new();
            let mut failed = 0usize;
            loop {
                let t0 = Instant::now();
                match ops_get(ops_addr, "/metrics") {
                    Ok((200, body)) if body.contains("serve_") && body.ends_with('\n') => {
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    _ => failed += 1,
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (lat_ms, failed)
        })
    };

    let t0 = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|w| {
            server
                .submit(ForecastRequest::new(0, w.clone(), t_out))
                .expect("benchmark stays under queue capacity")
        })
        .collect();
    for h in handles {
        h.wait().expect("request answered");
    }
    let load_rps = requests.len() as f64 / t0.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let (mut lat_ms, failed) = scraper.join().expect("scraper thread");
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let p50_ms = lat_ms.get(lat_ms.len() / 2).copied().unwrap_or(0.0);
    let max_ms = lat_ms.last().copied().unwrap_or(0.0);
    ScrapeStats {
        scrapes: lat_ms.len(),
        failed,
        p50_ms,
        max_ms,
        load_rps,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let argv: Vec<String> = std::env::args().collect();
    let mut hold_secs = 0u64;
    for (i, a) in argv.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--ops-hold-secs=") {
            hold_secs = v.parse().unwrap_or(0);
        } else if a == "--ops-hold-secs" {
            hold_secs = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0);
        }
    }
    let n_requests = 64usize;
    let n_distinct_mixed = 8usize;

    let mut sc = Scenario::small().with_backend(BackendChoice::Blocked);
    sc.epochs = if smoke { 1 } else { 3 };
    let grid = sc.grid();
    eprintln!("[serve] simulating training archive…");
    let train_archive = sc.simulate_archive(&grid, 0, 40);
    eprintln!("[serve] training surrogate ({} epochs)…", sc.epochs);
    let trained = train_surrogate(&sc, &grid, &train_archive);
    eprintln!("[serve] simulating test archive…");
    let test_archive = sc.simulate_archive(&grid, 1, n_requests + sc.t_out + 1);
    let distinct = episode_windows(&test_archive, sc.t_out, n_requests);
    // Mixed traffic: 64 requests round-robin over 8 distinct forecasts.
    let mixed: Vec<Vec<Snapshot>> = (0..n_requests)
        .map(|i| distinct[i % n_distinct_mixed].clone())
        .collect();
    let spec = trained.spec();

    let reps = if smoke { 2 } else { 3 };

    // ------------------------------------------------ sequential baseline
    // One thread, one `predict_episode` per request, no serving stack —
    // the pre-serving deployment recomputes every request, so distinct
    // and mixed traffic cost the same. Best-of-`reps` like the sweep.
    let _pin = ctensor::backend::scoped(BackendChoice::Blocked.resolve());
    let mut seq_wall = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for w in &distinct {
            std::hint::black_box(trained.predict_episode(w));
        }
        seq_wall = seq_wall.min(t0.elapsed().as_secs_f64());
    }
    drop(_pin);
    let seq_rps = n_requests as f64 / seq_wall;
    eprintln!("[serve] sequential baseline: {seq_rps:.1} req/s ({seq_wall:.3} s for {n_requests})");

    // ------------------------------------------- distinct-request sweep
    let points: &[(usize, usize)] = if smoke {
        &[(1, 1), (1, 8), (2, 16)]
    } else {
        &[(1, 1), (1, 4), (1, 8), (1, 16), (2, 8), (2, 16), (4, 16)]
    };
    let mut sweep = Vec::new();
    for &(w, b) in points {
        let r = serve_run(&spec, &distinct, sc.t_out, w, b, seq_rps, reps);
        eprintln!(
            "[serve] distinct workers={w} max_batch={b:>2}: {:>7.1} req/s ({:.2}x seq), \
             p50 {:.1} ms, p99 {:.1} ms, mean batch {:.1}",
            r.rps, r.speedup, r.p50_ms, r.p99_ms, r.mean_batch
        );
        sweep.push(r);
    }

    // ------------------------------------------- mixed-traffic headline
    let workers = 2;
    let mixed_run = serve_run(&spec, &mixed, sc.t_out, workers, 16, seq_rps, reps);
    eprintln!(
        "[serve] mixed ({n_distinct_mixed} distinct / {n_requests} requests) workers={workers} \
         max_batch=16: {:>7.1} req/s ({:.2}x seq), {} coalesced, mean batch {:.1}",
        mixed_run.rps, mixed_run.speedup, mixed_run.coalesced, mixed_run.mean_batch
    );

    // ------------------------------------------- ops-plane overhead gate
    // The flight recorder + SLO engine are on by default in every run
    // above; the deployment bar is that they stay effectively free: the
    // recorder-on mixed headline must hold ≥ 0.95× of recorder-off.
    // Off/on runs are interleaved back-to-back (best-of each side), so
    // slow drift on a shared host cancels instead of deciding the gate.
    cobs::recorder::global().thaw();
    // Each gate run carries 3× the headline's *distinct* windows (more
    // requests alone would just coalesce onto the same leaders): a single
    // mixed pass is ~0.1 s in release, where one scheduler hiccup swings
    // throughput by more than the effect being gated.
    let gate_distinct = (3 * n_distinct_mixed).min(n_requests);
    let gate_load: Vec<Vec<Snapshot>> = (0..3 * n_requests)
        .map(|i| distinct[i % gate_distinct].clone())
        .collect();
    // The gate statistic is the **median of paired on/off ratios**: the
    // two runs of a pair are adjacent in time, so host-load noise is
    // correlated and cancels inside each ratio, and the median discards
    // outlier rounds entirely. Pair order alternates so "second run of a
    // pair" effects (cold caches, turbo decay) don't bias one side.
    let gate_rounds = reps.max(5) + 2;
    let (mut mixed_off, mut mixed_on): (Option<RunResult>, Option<RunResult>) = (None, None);
    let mut ratios = Vec::new();
    for round in 0..gate_rounds {
        let mut pair = [0.0f64; 2]; // [off, on]
        for phase in 0..2 {
            let on = (round + phase) % 2 == 0;
            cobs::recorder::global().set_enabled(on);
            let r = serve_run(&spec, &gate_load, sc.t_out, workers, 16, seq_rps, 1);
            pair[on as usize] = r.rps;
            let best = if on { &mut mixed_on } else { &mut mixed_off };
            if best.as_ref().is_none_or(|b| r.rps > b.rps) {
                *best = Some(r);
            }
        }
        ratios.push(pair[1] / pair[0]);
    }
    cobs::recorder::global().set_enabled(true);
    let (mixed_off, mixed_on) = (mixed_off.unwrap(), mixed_on.unwrap());
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_ratio = ratios[ratios.len() / 2];
    let overhead_pass = overhead_ratio >= 0.95;
    eprintln!(
        "[serve] recorder overhead: median on/off {:.3}x over {} pairs \
         (best on {:.1} req/s, best off {:.1} req/s) ({})",
        overhead_ratio,
        gate_rounds,
        mixed_on.rps,
        mixed_off.rps,
        if overhead_pass {
            "PASS >= 0.95x"
        } else {
            "FAIL < 0.95x"
        }
    );

    // ------------------------------------------------- scrape under load
    // One live server with the ops plane bound; a scraper thread GETs
    // /metrics in a loop while the mixed workload saturates the queue.
    let ops_server = ForecastServer::new(
        spec.clone(),
        ServeConfig {
            workers,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: mixed.len() * 2,
            cache_capacity: 0,
            backend: BackendChoice::Blocked,
            scenario_id: None,
            ..Default::default()
        },
    );
    let ops = ops_server
        .serve_ops("127.0.0.1:0")
        .expect("bind ops plane on an ephemeral port");
    let scrape = scrape_under_load(&ops_server, ops.local_addr(), &mixed, sc.t_out);
    eprintln!(
        "[serve] scrape under load: {} scrapes ({} failed), p50 {:.2} ms, max {:.2} ms \
         while serving {:.1} req/s",
        scrape.scrapes, scrape.failed, scrape.p50_ms, scrape.max_ms, scrape.load_rps
    );

    // ------------------------------------------------------------- report
    let stamp = cbench::RunStamp::capture("blocked");
    let mut json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"requests\": {n_requests},\n  \
         \"best_of\": {reps},\n  \
         {},\n  \
         \"sequential\": {{\"wall_s\": {seq_wall:.4}, \"throughput_rps\": {seq_rps:.2}}},\n  \
         \"distinct_results\": [\n",
        stamp.json_fields()
    );
    for (i, r) in sweep.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&result_json(r));
        json.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    json.push_str(&format!(
        "  ],\n  \"mixed\": {{\"distinct\": {n_distinct_mixed}, \"result\": {}}},\n",
        result_json(&mixed_run)
    ));
    json.push_str(&format!(
        "  \"ops_plane\": {{\n    \"recorder_on\": {},\n    \"recorder_off\": {},\n    \
         \"overhead_ratio\": {overhead_ratio:.3}, \"gate\": 0.95, \"gate_pass\": {overhead_pass},\n    \
         \"scrape_under_load\": {{\"scrapes\": {}, \"failed\": {}, \"p50_ms\": {:.3}, \
         \"max_ms\": {:.3}, \"throughput_rps\": {:.2}}}\n  }},\n",
        result_json(&mixed_on),
        result_json(&mixed_off),
        scrape.scrapes,
        scrape.failed,
        scrape.p50_ms,
        scrape.max_ms,
        scrape.load_rps
    ));
    json.push_str(&format!(
        "  \"headline\": {{\"workload\": \"mixed\", \
         \"mechanism\": \"single-flight coalescing + micro-batching\", \
         \"note\": \"distinct-request batching alone is ~1x on single-core hosts (see distinct_results); the headline win comes from answering {} duplicate requests with {} batched forwards\", \
         \"workers\": {}, \"max_batch\": {}, \
         \"throughput_rps\": {:.2}, \"speedup_vs_sequential\": {:.3}}}\n}}\n",
        mixed_run.coalesced,
        n_requests as u64 - mixed_run.coalesced,
        mixed_run.workers,
        mixed_run.max_batch,
        mixed_run.rps,
        mixed_run.speedup
    ));

    let json = cbench::telemetry::splice_registry(json);
    let path = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[serve] could not write {path}: {e}"));
    println!("{json}");

    // Standalone telemetry artifacts: the registry as JSON and in
    // Prometheus text exposition format. With COASTAL_PROFILE=1 the JSON
    // additionally carries per-kernel `kernel.*` histograms.
    let snap = cobs::global().snapshot();
    for (suffix, body) in [("json", snap.to_json()), ("prom", snap.to_prometheus())] {
        let tpath = format!("TELEMETRY_serve.{suffix}");
        std::fs::File::create(&tpath)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .unwrap_or_else(|e| eprintln!("[serve] could not write {tpath}: {e}"));
    }
    eprintln!(
        "[serve] telemetry: {} kernel histogram series recorded (COASTAL_PROFILE={})",
        snap.histograms
            .keys()
            .filter(|k| k.starts_with("kernel."))
            .count(),
        std::env::var("COASTAL_PROFILE").unwrap_or_else(|_| "0".into()),
    );

    // Incident artifact: the flight recorder's full state (ring,
    // exemplars, freeze metadata) after the benchmark traffic — what an
    // operator would pull when paged, and what CI uploads.
    let ipath =
        std::env::var("BENCH_INCIDENT_OUT").unwrap_or_else(|_| "INCIDENT_serve.json".into());
    let dump = cobs::recorder::global().dump_json();
    std::fs::File::create(&ipath)
        .and_then(|mut f| f.write_all(dump.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[serve] could not write {ipath}: {e}"));
    eprintln!(
        "[serve] incident dump: {} records retained -> {ipath}",
        cobs::recorder::global().len()
    );

    eprintln!(
        "[serve] headline serving speedup (mixed traffic; coalescing + micro-batching): {:.1}x ({})",
        mixed_run.speedup,
        if mixed_run.speedup >= 3.0 {
            "PASS >= 3x"
        } else {
            "below 3x target"
        }
    );

    // CI hook: hold a live ops plane (backed by the scrape server, whose
    // global-registry metrics cover everything above) so an external
    // probe can curl /metrics, /healthz, /readyz and /debug/traces.
    if hold_secs > 0 {
        let addr = std::env::var("COASTAL_OPS_ADDR").unwrap_or_else(|_| "127.0.0.1:9464".into());
        match ops_server.serve_ops(addr.as_str()) {
            Ok(held) => {
                eprintln!("[serve] ops plane held at http://{addr} for {hold_secs}s");
                std::thread::sleep(Duration::from_secs(hold_secs));
                drop(held);
            }
            Err(e) => eprintln!("[serve] could not hold ops plane on {addr}: {e}"),
        }
    }
    drop(ops);
}
