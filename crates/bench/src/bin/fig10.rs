//! Fig. 10: weak scaling of data-parallel training, with and without
//! activation checkpointing.

use cbench::{banner, write_csv};
use ccore::Scenario;
use cpipeline::{encode_episode, train_data_parallel, EncodeConfig, ParallelConfig};
use csurrogate::CheckpointPolicy;
use ctensor::prelude::*;

fn main() {
    banner(
        "Fig. 10 — weak scaling of data-parallel training",
        "paper Fig. 10",
    );
    let sc = Scenario::small();
    let grid = sc.grid();
    let archive = sc.simulate_archive(&grid, 0, 30);
    let mask_vec: Vec<f32> = (0..grid.ny)
        .flat_map(|j| {
            let m = &grid.mask_rho;
            (0..grid.nx).map(move |i| m.get(j as isize, i as isize) as f32)
        })
        .collect();
    let mask = Tensor::from_vec(mask_vec, &[grid.ny, grid.nx]);
    let stats = cpipeline::NormStats::identity();
    let episodes: Vec<_> = archive
        .windows(sc.t_out + 1)
        .step_by(3)
        .map(|w| encode_episode(w, &stats, &EncodeConfig::default()))
        .collect();

    println!("\npaper: near-linear weak scaling 1→32 GPUs; ckpt (batch 2/GPU) above no-ckpt (batch 1/GPU)\n");
    let mut rows = Vec::new();
    for (label, ckpt, batch) in [
        ("ckpt", CheckpointPolicy::DiscardWMsa, 2usize),
        ("no-ckpt", CheckpointPolicy::None, 1usize),
    ] {
        for workers in [1usize, 2, 4, 8] {
            let cfg = ParallelConfig {
                model: sc.swin.clone(),
                seed: 1,
                lr: 1e-3,
                grad_clip: 1.0,
                checkpoint: ckpt,
                per_worker_batch: batch,
                steps: 2,
            };
            let s = train_data_parallel(&cfg, &episodes, &mask, workers);
            println!(
                "{label:<8} workers={workers:<3} {:>7.2} inst/s  ({} instances in {:.2}s)",
                s.instances_per_sec, s.instances, s.wall_seconds
            );
            rows.push(format!("{label},{workers},{}", s.instances_per_sec));
        }
    }
    write_csv("fig10.csv", "variant,workers,instances_per_sec", &rows);
}
