//! Kernel-layer backend comparison: `ScalarRef` vs `Blocked` on
//! paper-shaped workloads, emitting a `BENCH_kernels.json` summary.
//!
//! Workloads mirror the surrogate's hot shapes: the batched matmul of the
//! qkv/projection linears, windowed-attention score blocks, softmax rows,
//! and a GELU elementwise chain. Each kernel is timed as best-of-N wall
//! time per backend; the headline number is the `B=8, 256×256×256` batched
//! matmul speedup.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use ctensor::backend::{self, Backend, Blocked, ScalarRef};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct KernelResult {
    name: &'static str,
    scalar_ms: f64,
    blocked_ms: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.blocked_ms
    }
}

/// Best-of-`reps` wall time (ms) of `f` under backend `be`.
fn time_under(be: Arc<dyn Backend>, reps: usize, mut f: impl FnMut()) -> f64 {
    let _scope = backend::scoped(be);
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn compare(name: &'static str, reps: usize, mut f: impl FnMut()) -> KernelResult {
    let blocked_ms = time_under(Arc::new(Blocked::from_env()), reps, &mut f);
    let scalar_ms = time_under(Arc::new(ScalarRef), reps, &mut f);
    let r = KernelResult {
        name,
        scalar_ms,
        blocked_ms,
    };
    eprintln!(
        "[kernels] {name}: scalar {scalar_ms:.2} ms, blocked {blocked_ms:.2} ms ({:.1}x)",
        r.speedup()
    );
    r
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut results: Vec<KernelResult> = Vec::new();

    // Headline: paper-shaped batched matmul (acceptance: blocked >= 2x).
    let a = ctensor::init::randn(&[8, 256, 256], 1.0, &mut rng);
    let b = ctensor::init::randn(&[8, 256, 256], 1.0, &mut rng);
    results.push(compare("matmul_b8_256x256x256", 5, || {
        std::hint::black_box(a.matmul(&b));
    }));

    // Linear-layer shape: token rows x embed dims with fused bias.
    let x = ctensor::init::randn(&[4096, 96], 1.0, &mut rng);
    let w = ctensor::init::randn(&[96, 288], 0.1, &mut rng);
    let bias = ctensor::init::randn(&[288], 0.1, &mut rng);
    results.push(compare("linear_4096x96x288_bias", 10, || {
        std::hint::black_box(x.matmul_bias(&w, &bias));
    }));

    // Windowed attention: B*H = 96 windows of 64 tokens, head dim 8.
    {
        let (bh, n, d) = (96usize, 64usize, 8usize);
        let q = ctensor::init::randn(&[bh * n * d], 1.0, &mut rng);
        let k = ctensor::init::randn(&[bh * n * d], 1.0, &mut rng);
        let v = ctensor::init::randn(&[bh * n * d], 1.0, &mut rng);
        let spec_scale = 1.0 / (d as f32).sqrt();
        let mut out = vec![0.0f32; bh * n * d];
        results.push(compare("attention_fused_96x64x8", 10, || {
            let spec = ctensor::backend::AttentionSpec {
                batch: bh,
                heads: 3,
                n,
                d,
                scale: spec_scale,
                mask: None,
                mask_windows: 1,
            };
            backend::current().attention(q.as_slice(), k.as_slice(), v.as_slice(), &mut out, &spec);
            std::hint::black_box(&out);
        }));
    }

    // Softmax over attention-score rows.
    let scores = ctensor::init::randn(&[96, 64, 64], 1.0, &mut rng);
    results.push(compare("softmax_96x64x64", 10, || {
        std::hint::black_box(scores.softmax_last());
    }));

    // Elementwise chain (GELU on an episode-sized activation).
    let act = ctensor::init::randn(&[2 * 1024 * 1024], 1.0, &mut rng);
    results.push(compare("gelu_2m", 10, || {
        std::hint::black_box(act.gelu());
    }));

    // Quantized serving path on the linear shape: f32 Blocked matmul_bias
    // vs the fused int8 dequant GEMM (including dynamic activation
    // quantization — the real per-request cost) vs the f16 tier
    // (widen-then-matmul, exactly what `forward_quantized` runs).
    // Acceptance: int8 >= 2x the f32 Blocked time on this shape.
    let quant = {
        let (m, k, n) = (4096usize, 96usize, 288usize);
        let qw = ctensor::quant::QuantizedTensor::quantize(w.as_slice(), k, n);
        let fw = ctensor::quant::F16Weight::compress(w.as_slice(), k, n);
        let mut out = vec![0.0f32; m * n];
        let blocked: Arc<dyn Backend> = Arc::new(Blocked::from_env());
        let f32_ms = time_under(Arc::clone(&blocked), 10, || {
            std::hint::black_box(x.matmul_bias(&w, &bias));
        });
        let int8_ms = time_under(Arc::clone(&blocked), 10, || {
            let acts = ctensor::quant::quantize_acts(x.as_slice(), m, k);
            backend::current().qlinear_i8(&acts, &qw, Some(bias.as_slice()), &mut out);
            std::hint::black_box(&out);
        });
        let f16_ms = time_under(blocked, 10, || {
            let wt = ctensor::tensor::Tensor::from_vec(fw.decompress(), &[k, n]);
            std::hint::black_box(x.matmul_bias(&wt, &bias));
        });
        eprintln!(
            "[kernels] quantized linear_{m}x{k}x{n}: f32 {f32_ms:.2} ms, int8 {int8_ms:.2} ms \
             ({:.1}x), f16 {f16_ms:.2} ms ({:.1}x)",
            f32_ms / int8_ms,
            f32_ms / f16_ms
        );
        (format!("linear_{m}x{k}x{n}_bias"), f32_ms, int8_ms, f16_ms)
    };

    // Threads axis: the same parallel matmul at 1/2/4 worker threads via
    // the ThreadPoolBuilder facade (the shim allows reconfiguration, so
    // the sweep runs in-process). Output is bitwise thread-invariant; only
    // wall time moves.
    let hw_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for &t in &[1usize, 2, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global()
            .expect("thread pool override");
        let ms = time_under(Arc::new(Blocked::from_env()), 5, || {
            std::hint::black_box(a.matmul(&b));
        });
        eprintln!("[kernels] matmul_b8_256x256x256 @ {t} threads: {ms:.2} ms");
        scaling.push((t, ms));
    }
    rayon::ThreadPoolBuilder::new().build_global().ok(); // restore default
    let scale_1_to_4 = scaling[0].1 / scaling[2].1;
    let scaling_note = if hw_cores < 4 {
        format!(
            "host exposes {hw_cores} hardware core(s); 1->4 thread scaling is bounded by physical parallelism, not the kernel"
        )
    } else {
        String::new()
    };

    // ------------------------------------------------------------- report
    let stamp = cbench::RunStamp::capture("blocked-vs-scalar");
    let mut json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"unit\": \"ms\",\n  {},\n  \"hardware_cores\": {},\n  \"results\": [\n",
        stamp.json_fields(),
        hw_cores
    );
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {:.4}, \"blocked_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.scalar_ms,
            r.blocked_ms,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"quantized\": {{\"name\": \"{}\", \"f32_ms\": {:.4}, \"int8_ms\": {:.4}, \
         \"f16_ms\": {:.4}, \"speedup_int8_vs_f32\": {:.3}, \"speedup_f16_vs_f32\": {:.3}}},\n",
        quant.0,
        quant.1,
        quant.2,
        quant.3,
        quant.1 / quant.2,
        quant.1 / quant.3
    ));
    json.push_str("  \"matmul_thread_scaling\": {\n    \"workload\": \"matmul_b8_256x256x256\",\n    \"points\": [\n");
    for (i, (t, ms)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {t}, \"blocked_ms\": {ms:.4}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"speedup_1_to_4\": {scale_1_to_4:.3},\n    \"note\": \"{scaling_note}\"\n  }}\n"
    ));
    json.push('}');
    json.push('\n');

    let json = cbench::telemetry::splice_registry(json);
    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[kernels] could not write {path}: {e}"));
    println!("{json}");

    let headline = &results[0];
    eprintln!(
        "[kernels] headline matmul speedup: {:.1}x ({})",
        headline.speedup(),
        if headline.speedup() >= 2.0 {
            "PASS >= 2x"
        } else {
            "below 2x target"
        }
    );
    let int8_speedup = quant.1 / quant.2;
    eprintln!(
        "[kernels] int8 fused dequant GEMM vs f32 Blocked on {}: {:.1}x ({})",
        quant.0,
        int8_speedup,
        if int8_speedup >= 2.0 {
            "PASS >= 2x"
        } else {
            "below 2x target"
        }
    );
}
