//! Table IV: sensitivity to patch size — parameters, time/instance, errors.

use cbench::{banner, write_csv, Context};
use ccore::{train_surrogate, ErrorTable};

fn main() {
    banner("Table IV — patch-size sensitivity", "paper Table IV");
    let ctx = Context::small(20);
    println!("\npaper: patch 5 → 3.39M params (3.08 enc + 0.31 dec), 0.888 s/inst, best MAE;");
    println!("       patch 15/25 → fewer params, slightly slower, worse MAE\n");

    let mut rows = Vec::new();
    for patch_h in [2usize, 4, 8] {
        let mut sc = ctx.scenario.clone();
        sc.swin.patch = [patch_h, patch_h, sc.swin.patch[2]];
        sc.epochs = 2;
        let trained = train_surrogate(&sc, &ctx.grid, &ctx.train_archive);
        let enc = trained.model.encoder_parameters();
        let dec = trained.model.decoder_parameters();
        // Inference time per instance.
        let w0 = &ctx.test_archive[..sc.t_out + 1];
        let t = trained.time_inference(&[w0]);
        // Error on a few test episodes.
        let mut refs = Vec::new();
        let mut preds = Vec::new();
        for w in ctx.test_archive.chunks_exact(sc.t_out + 1).take(3) {
            preds.extend(trained.predict_episode(w));
            refs.extend(w[1..].iter().cloned());
        }
        let e = ErrorTable::between(&ctx.grid, &refs, &preds);
        println!(
            "patch {patch_h:<2} params={:>8} ({enc} enc + {dec} dec)  time/inst={t:>7.3}s  MAE ζ={:.3e} u={:.3e}",
            enc + dec, e.mae[3], e.mae[0]
        );
        rows.push(format!(
            "{patch_h},{},{enc},{dec},{t:.4},{:.6},{:.6}",
            enc + dec,
            e.mae[0],
            e.mae[3]
        ));
    }
    write_csv(
        "table4.csv",
        "patch,params,enc_params,dec_params,time_s,mae_u,mae_z",
        &rows,
    );
}
