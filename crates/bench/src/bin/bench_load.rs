//! Replayable load harness for the forecast server, emitting
//! `BENCH_load.json` with per-precision latency/throughput summaries.
//!
//! A seeded LCG draws a fixed trace of `N` requests over `D` distinct
//! episode windows with zipf(s = 1.0) popularity — the paper's deployment
//! pattern, where a few active storm forecasts dominate traffic. The
//! *same* trace (same seed → same window sequence) is replayed against a
//! fresh server at each serving precision (f32, f16, int8), in two modes:
//!
//! - **closed loop**: `C` client threads, each walking its slice of the
//!   trace and submitting the next request only after the previous one
//!   answers — classic throughput probe, concurrency bounded by clients.
//! - **open loop**: requests submitted on a fixed schedule at 80% of the
//!   measured closed-loop throughput, from one pacing thread — latency
//!   under scheduled arrivals, where queueing (not client back-pressure)
//!   sets the tail.
//!
//! Every phase gets a fresh server so the latency reservoir and cache
//! stats describe exactly one (precision, mode) cell. The cache is
//! enabled (capacity `D`): repeat popularity is the point of the zipf
//! trace, and the hit rate is part of the report.
//!
//! `--smoke` shrinks the trace and training so CI finishes in seconds;
//! the JSON schema is identical. `BENCH_LOAD_OUT` overrides the output
//! path.

use std::io::Write;
use std::time::{Duration, Instant};

use ccore::{train_surrogate, Scenario, SurrogateSpec};
use cocean::Snapshot;
use cserve::{ForecastRequest, ForecastServer, ServeConfig};
use ctensor::backend::BackendChoice;
use ctensor::quant::Precision;

/// Deterministic 64-bit LCG (same multiplier/increment as the repo's
/// calibration probes) — the trace is a pure function of the seed.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(s) sampler over ranks `0..d` by inverse CDF — rank 0 is the most
/// popular window.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(d: usize, s: f64) -> Self {
        let mut cdf: Vec<f64> = Vec::with_capacity(d);
        let mut acc = 0.0;
        for r in 0..d {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

struct PhaseResult {
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    completed: u64,
}

fn phase_json(r: &PhaseResult, offered_rps: Option<f64>) -> String {
    let offered = offered_rps
        .map(|o| format!("\"offered_rps\": {o:.2}, "))
        .unwrap_or_default();
    format!(
        "{{{offered}\"wall_s\": {:.4}, \"throughput_rps\": {:.2}, \"p50_ms\": {:.3}, \
         \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hit_rate\": {:.4}, \"completed\": {}}}",
        r.wall_s, r.rps, r.p50_ms, r.p95_ms, r.p99_ms, r.cache_hit_rate, r.completed
    )
}

fn fresh_server(spec: &SurrogateSpec, precision: Precision, d: usize, n: usize) -> ForecastServer {
    ForecastServer::new(
        spec.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: n * 2,
            cache_capacity: d,
            backend: BackendChoice::Blocked,
            scenario_id: None,
            precision,
            ..Default::default()
        },
    )
}

/// Closed loop: `clients` threads round-robin the trace, each submitting
/// its next request only after the previous one returns.
fn closed_loop(
    server: &ForecastServer,
    windows: &[Vec<Snapshot>],
    trace: &[usize],
    t_out: usize,
    clients: usize,
) -> (f64, u64) {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                for (i, &widx) in trace.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    let h = server
                        .submit(ForecastRequest::new(0, windows[widx].clone(), t_out))
                        .expect("trace stays under queue capacity");
                    h.wait().expect("request answered");
                }
            });
        }
    });
    (t0.elapsed().as_secs_f64(), trace.len() as u64)
}

/// Open loop: one pacing thread submits on a fixed schedule at
/// `offered_rps`, then waits for everything.
fn open_loop(
    server: &ForecastServer,
    windows: &[Vec<Snapshot>],
    trace: &[usize],
    t_out: usize,
    offered_rps: f64,
) -> (f64, u64) {
    let dt = Duration::from_secs_f64(1.0 / offered_rps);
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(trace.len());
    for (i, &widx) in trace.iter().enumerate() {
        let deadline = t0 + dt * i as u32;
        if let Some(wait) = deadline.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        handles.push(
            server
                .submit(ForecastRequest::new(0, windows[widx].clone(), t_out))
                .expect("open loop stays under queue capacity"),
        );
    }
    let n = handles.len() as u64;
    for h in handles {
        h.wait().expect("request answered");
    }
    (t0.elapsed().as_secs_f64(), n)
}

fn run_phase(
    spec: &SurrogateSpec,
    precision: Precision,
    windows: &[Vec<Snapshot>],
    trace: &[usize],
    t_out: usize,
    mode: Mode,
) -> PhaseResult {
    let mut server = fresh_server(spec, precision, windows.len(), trace.len());
    let (wall_s, submitted) = match mode {
        Mode::Closed { clients } => closed_loop(&server, windows, trace, t_out, clients),
        Mode::Open { offered_rps } => open_loop(&server, windows, trace, t_out, offered_rps),
    };
    let m = server.metrics();
    server.shutdown();
    assert_eq!(m.completed, submitted, "every trace request must complete");
    PhaseResult {
        wall_s,
        rps: submitted as f64 / wall_s,
        p50_ms: m.p50_ms,
        p95_ms: m.p95_ms,
        p99_ms: m.p99_ms,
        cache_hit_rate: m.cache_hit_rate,
        completed: m.completed,
    }
}

#[derive(Copy, Clone)]
enum Mode {
    Closed { clients: usize },
    Open { offered_rps: f64 },
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = 42u64;
    let zipf_s = 1.0f64;
    let (distinct, n_requests, clients) = if smoke { (8, 48, 4) } else { (16, 256, 8) };

    // ------------------------------------------------ model + trace setup
    let mut sc = Scenario::small().with_backend(BackendChoice::Blocked);
    sc.epochs = if smoke { 1 } else { 3 };
    let grid = sc.grid();
    eprintln!("[load] simulating training archive…");
    let train_archive = sc.simulate_archive(&grid, 0, 40);
    eprintln!("[load] training surrogate ({} epochs)…", sc.epochs);
    let trained = train_surrogate(&sc, &grid, &train_archive);
    let spec = trained.spec();
    eprintln!("[load] simulating {distinct} distinct request windows…");
    let test_archive = sc.simulate_archive(&grid, 1, distinct + sc.t_out + 1);
    let windows: Vec<Vec<Snapshot>> = (0..distinct)
        .map(|i| test_archive[i..i + sc.t_out + 1].to_vec())
        .collect();

    let mut lcg = Lcg(seed);
    let zipf = Zipf::new(distinct, zipf_s);
    let trace: Vec<usize> = (0..n_requests)
        .map(|_| zipf.sample(lcg.next_f64()))
        .collect();
    let hottest = trace.iter().filter(|&&w| w == 0).count();
    eprintln!(
        "[load] trace: {n_requests} requests over {distinct} windows, zipf s={zipf_s} \
         (hottest window: {hottest} requests), seed {seed}"
    );

    // ------------------------------------------------- per-precision runs
    let precisions = [Precision::F32, Precision::F16, Precision::Int8];
    let mut rows: Vec<String> = Vec::new();
    for &p in &precisions {
        let closed = run_phase(
            &spec,
            p,
            &windows,
            &trace,
            sc.t_out,
            Mode::Closed { clients },
        );
        eprintln!(
            "[load] {p} closed-loop ({clients} clients): {:>7.1} req/s, p50 {:.1} ms, \
             p99 {:.1} ms, cache hit {:.0}%",
            closed.rps,
            closed.p50_ms,
            closed.p99_ms,
            closed.cache_hit_rate * 100.0
        );
        let offered = closed.rps * 0.8;
        let open = run_phase(
            &spec,
            p,
            &windows,
            &trace,
            sc.t_out,
            Mode::Open {
                offered_rps: offered,
            },
        );
        eprintln!(
            "[load] {p} open-loop (offered {offered:.1} req/s): {:>7.1} req/s, p50 {:.1} ms, \
             p99 {:.1} ms",
            open.rps, open.p50_ms, open.p99_ms
        );
        rows.push(format!(
            "    {{\"precision\": \"{p}\", \"closed_loop\": {}, \"open_loop\": {}}}",
            phase_json(&closed, None),
            phase_json(&open, Some(offered))
        ));
    }

    // ------------------------------------------------------------- report
    let stamp = cbench::RunStamp::capture("blocked");
    let json = format!(
        "{{\n  \"bench\": \"load\",\n  \"smoke\": {smoke},\n  {},\n  \
         \"trace\": {{\"seed\": {seed}, \"requests\": {n_requests}, \"distinct\": {distinct}, \
         \"zipf_s\": {zipf_s:.1}, \"clients\": {clients}}},\n  \"precisions\": [\n{}\n  ]\n}}\n",
        stamp.json_fields(),
        rows.join(",\n")
    );

    let json = cbench::telemetry::splice_registry(json);
    let path = std::env::var("BENCH_LOAD_OUT").unwrap_or_else(|_| "BENCH_load.json".into());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("[load] could not write {path}: {e}"));
    println!("{json}");
}
