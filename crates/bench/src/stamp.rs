//! Provenance stamp shared by every `BENCH_*.json` emitter: git revision,
//! ISO-8601 UTC timestamp, backend under test, detected SIMD feature set,
//! and actual rayon thread count — so the perf trajectory across commits
//! is attributable without digging through CI logs.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Run provenance recorded into benchmark reports.
#[derive(Clone, Debug)]
pub struct RunStamp {
    /// Short git revision (or `unknown` outside a checkout).
    pub git_rev: String,
    /// ISO-8601 UTC timestamp (`YYYY-MM-DDTHH:MM:SSZ`).
    pub timestamp_utc: String,
    /// Compute backend the benchmark exercises.
    pub backend: String,
    /// SIMD feature set the kernels dispatch to (`avx2+fma` / `scalar`).
    pub simd: String,
    /// Worker threads rayon reports at capture time (reflects any
    /// `ThreadPoolBuilder` override, not a hardcoded constant).
    pub threads: usize,
}

impl RunStamp {
    /// Capture the current revision/time/simd/thread provenance.
    pub fn capture(backend: &str) -> Self {
        Self {
            git_rev: git_rev(),
            timestamp_utc: iso8601_utc_now(),
            backend: backend.to_string(),
            simd: ctensor::simd::feature_string().to_string(),
            threads: rayon::current_num_threads(),
        }
    }

    /// The stamp as JSON object fields (no surrounding braces), ready to
    /// splice into a report: `"git_rev": "…", "timestamp_utc": "…",
    /// "backend": "…", "simd": "…", "threads": N`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"git_rev\": \"{}\", \"timestamp_utc\": \"{}\", \"backend\": \"{}\", \"simd\": \"{}\", \"threads\": {}",
            self.git_rev, self.timestamp_utc, self.backend, self.simd, self.threads
        )
    }
}

fn git_rev() -> String {
    let from_git = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    from_git
        .or_else(|| {
            std::env::var("GITHUB_SHA")
                .ok()
                .map(|s| s[..s.len().min(12)].to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Current UTC time as ISO-8601, computed from the epoch (no external
/// time crates in this offline workspace).
fn iso8601_utc_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    iso8601_from_epoch(secs)
}

fn iso8601_from_epoch(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// Gregorian date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_rendering_matches_known_dates() {
        assert_eq!(iso8601_from_epoch(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC = 951827696.
        assert_eq!(iso8601_from_epoch(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-01-01 00:00:00 UTC = 1767225600.
        assert_eq!(iso8601_from_epoch(1_767_225_600), "2026-01-01T00:00:00Z");
    }

    #[test]
    fn stamp_fields_are_well_formed() {
        let s = RunStamp::capture("blocked");
        assert!(!s.git_rev.is_empty());
        assert_eq!(s.timestamp_utc.len(), 20, "{}", s.timestamp_utc);
        assert!(s.timestamp_utc.ends_with('Z'));
        assert!(s.threads >= 1);
        let json = s.json_fields();
        assert!(json.contains("\"git_rev\""));
        assert!(json.contains("\"backend\": \"blocked\""));
    }
}
