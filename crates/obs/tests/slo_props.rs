//! Property tests for the burn-rate window math: burn must be monotone
//! in the error rate, fast and slow windows must agree at steady state,
//! and the burn/budget identity must hold across objectives.

use cobs::slo::{SloSpec, SloTracker};
use proptest::prelude::*;

/// Feed `n` requests uniformly across `[t0, t1)` at a steady error rate:
/// bad samples are interleaved evenly (Bresenham accumulation), so every
/// sub-window of the stream sees error rate ≈ `err` — the steady-state
/// regime the multi-window rule assumes.
fn feed(t: &SloTracker, t0: f64, t1: f64, n: usize, err: f64) {
    for i in 0..n {
        let now = t0 + (t1 - t0) * i as f64 / n as f64;
        let bad = ((i + 1) as f64 * err).floor() > (i as f64 * err).floor();
        t.record(now, !bad);
    }
}

proptest! {
    /// More errors never burn less: for the same traffic shape, a higher
    /// error rate yields burn rates at least as high in both windows.
    #[test]
    fn burn_is_monotone_in_error_rate(err_lo in 0.0f64..0.5, bump in 0.05f64..0.5) {
        let err_hi = (err_lo + bump).min(1.0);
        let spec = SloSpec::availability("prop_mono", 0.99);
        let a = SloTracker::new(spec);
        let b = SloTracker::new(spec);
        // Identical timing, different error rates, spanning both windows.
        feed(&a, 0.0, 800.0, 4000, err_lo);
        feed(&b, 0.0, 800.0, 4000, err_hi);
        let (fa, sa) = a.burn_rates(800.0);
        let (fb, sb) = b.burn_rates(800.0);
        // The fast window holds ≥ 300 samples, so interleaving
        // quantization perturbs its burn by ≤ 2/300/0.01 ≈ 0.7 — far
        // under the ≥ 5.0 burn gap the bump guarantees.
        prop_assert!(fb >= fa + 1.0, "fast burn not monotone: {} vs {}", fa, fb);
        prop_assert!(sb >= sa + 1.0, "slow burn not monotone: {} vs {}", sa, sb);
    }

    /// At steady state (a constant error rate sustained for longer than
    /// the slow window), the fast and slow windows measure the same
    /// process and must agree — within the coarse-bucket quantization at
    /// the window edges.
    #[test]
    fn fast_and_slow_agree_at_steady_state(err in 0.0f64..1.0, objective in 0.9f64..0.999) {
        let spec = SloSpec::availability("prop_steady", objective);
        let t = SloTracker::new(spec);
        // Sustain the rate past the slow window, densely enough that the
        // fast window always holds ≥ 1000 samples.
        let horizon = spec.slow_window + 100.0;
        feed(&t, 0.0, horizon, 16_000, err);
        let (fast, slow) = t.burn_rates(horizon);
        let expected = err / spec.budget();
        // Edge buckets quantize the window by ~1 bucket out of 12 plus a
        // ±2-sample interleaving wobble on ≥1000 samples.
        let tol = 0.2 * expected + 0.002 / spec.budget() + 0.1;
        prop_assert!((fast - expected).abs() <= tol, "fast {} vs {}", fast, expected);
        prop_assert!((slow - expected).abs() <= tol, "slow {} vs {}", slow, expected);
        prop_assert!((fast - slow).abs() <= 2.0 * tol, "windows disagree: {} vs {}", fast, slow);
    }

    /// Burn equals error-rate ÷ budget: scaling the budget down scales
    /// the burn up by the same factor (the identity alerting relies on).
    #[test]
    fn burn_scales_inversely_with_budget(err in 0.05f64..0.95) {
        let tight = SloTracker::new(SloSpec::availability("prop_tight", 0.999));
        let loose = SloTracker::new(SloSpec::availability("prop_loose", 0.99));
        feed(&tight, 0.0, 800.0, 8000, err);
        feed(&loose, 0.0, 800.0, 8000, err);
        let (_, s_tight) = tight.burn_rates(800.0);
        let (_, s_loose) = loose.burn_rates(800.0);
        // budgets 0.001 vs 0.01 → tight burns 10× the loose burn.
        prop_assert!(s_loose > 0.0);
        let ratio = s_tight / s_loose;
        prop_assert!((ratio - 10.0).abs() < 0.5, "budget scaling broken: {}", ratio);
    }

    /// A window that saw no traffic burns at zero, never NaN — regardless
    /// of when it is asked.
    #[test]
    fn empty_windows_burn_zero(at in 0.0f64..1.0e6) {
        let t = SloTracker::new(SloSpec::availability("prop_empty", 0.999));
        let (fast, slow) = t.burn_rates(at);
        prop_assert_eq!(fast, 0.0);
        prop_assert_eq!(slow, 0.0);
    }
}
