//! Flight-recorder concurrency: eight threads hammer one small ring so
//! it wraps thousands of times. The retained records must never be torn
//! (every field of a record belongs to the same logical request), the
//! ring must respect its capacity, and the recorder must stay internally
//! consistent when a freeze lands mid-storm.

use std::sync::Arc;

use cobs::recorder::{AnomalyPolicy, FlightRecorder, Outcome};

const THREADS: usize = 8;
const PER_THREAD: usize = 2_000;

/// Labels are per-thread so a record's consistency is checkable from the
/// outside: thread t always records latency `t + k/1000` with its own
/// label, cache flag `t % 2 == 0`, coalesce flag `t % 3 == 0`.
const LABELS: [&str; THREADS] = [
    "req-0", "req-1", "req-2", "req-3", "req-4", "req-5", "req-6", "req-7",
];

fn thread_of_label(label: &str) -> usize {
    LABELS
        .iter()
        .position(|&l| l == label)
        .expect("known label")
}

#[test]
fn ring_wrap_under_eight_threads_keeps_records_untorn() {
    // Tiny capacity against 16k records → the ring wraps ~250×. Spike
    // detection is disarmed (factor ∞ is not expressible; a huge factor
    // is) so the storm never freezes the ring mid-test.
    let rec = Arc::new(FlightRecorder::new(
        64,
        AnomalyPolicy {
            latency_spike_factor: 1e18,
            min_samples: u64::MAX,
        },
    ));
    std::thread::scope(|s| {
        for (t, label) in LABELS.iter().enumerate() {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for k in 0..PER_THREAD {
                    rec.record(
                        label,
                        Outcome::Ok,
                        t as f64 + k as f64 * 1e-3,
                        t.is_multiple_of(2),
                        t.is_multiple_of(3),
                        None,
                    );
                }
            });
        }
    });

    assert_eq!(rec.len(), 64, "ring must hold exactly its capacity");
    let records = rec.records();
    let mut last_seq = None;
    for r in &records {
        // Torn-record check: every field must be the one its writer
        // thread always pairs with its label.
        let t = thread_of_label(r.label);
        assert!(
            r.latency_seconds >= t as f64 && r.latency_seconds < t as f64 + 2.0,
            "latency {} torn across threads for {}",
            r.latency_seconds,
            r.label
        );
        assert_eq!(
            r.from_cache,
            t.is_multiple_of(2),
            "cache flag torn for {}",
            r.label
        );
        assert_eq!(
            r.coalesced,
            t.is_multiple_of(3),
            "coalesce flag torn for {}",
            r.label
        );
        assert_eq!(r.outcome, Outcome::Ok);
        // Sequence numbers must be unique and ascending through the ring.
        if let Some(prev) = last_seq {
            assert!(r.seq > prev, "non-monotone seqs: {prev} then {}", r.seq);
        }
        last_seq = Some(r.seq);
    }
    // The ring holds the newest records: all 16k were admitted.
    assert_eq!(
        records.last().unwrap().seq,
        (THREADS * PER_THREAD - 1) as u64
    );
    // The dump renders every record without panicking and stays valid
    // enough to hand to an artifact uploader.
    let dump = rec.dump_json();
    assert!(dump.starts_with('{') && dump.ends_with('}'));
    assert!(dump.contains("\"frozen\": false"));
}

#[test]
fn freeze_during_concurrent_storm_snapshots_a_consistent_ring() {
    let rec = Arc::new(FlightRecorder::new(
        128,
        AnomalyPolicy {
            latency_spike_factor: 1e18,
            min_samples: u64::MAX,
        },
    ));
    std::thread::scope(|s| {
        for (t, label) in LABELS.iter().enumerate() {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for k in 0..PER_THREAD {
                    rec.record(
                        label,
                        Outcome::Ok,
                        t as f64 + k as f64 * 1e-3,
                        false,
                        false,
                        None,
                    );
                }
            });
        }
        // Freeze from a ninth thread mid-storm.
        let rec_f = Arc::clone(&rec);
        s.spawn(move || {
            while rec_f.len() < 128 {
                std::hint::spin_loop();
            }
            rec_f.freeze("mid-storm incident");
        });
    });
    assert!(rec.is_frozen());
    assert_eq!(rec.freeze_reason().as_deref(), Some("mid-storm incident"));
    let records = rec.records();
    assert_eq!(records.len(), 128, "frozen ring keeps exactly capacity");
    for w in records.windows(2) {
        assert!(w[0].seq < w[1].seq, "frozen ring must be seq-ordered");
    }
    // Everything recorded after the freeze was counted, not silently lost.
    let dump = rec.dump_json();
    assert!(dump.contains("\"dropped_while_frozen\": "), "{dump:.200}");
}
