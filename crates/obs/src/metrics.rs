//! The metrics registry: lock-sharded counters, gauges, log-bucketed
//! histograms, and the bounded latency [`Reservoir`], all registered by
//! static name and snapshot-able as JSON or Prometheus text.
//!
//! Write paths are wait-free after registration: counters add to a
//! per-thread shard (no shared cache line under contention), gauges and
//! histogram cells are single atomics. Registration itself takes the
//! registry lock once per call site (the [`crate::counter!`] family of
//! macros memoizes the returned handle in a `OnceLock`), so steady-state
//! recording never touches a map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------- counter

/// Shards per counter: enough to keep 8 replica/worker threads off each
/// other's cache lines without bloating every counter to a page.
const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so concurrent writers never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// This thread's fixed shard index, assigned round-robin at first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Monotone event counter, sharded across cache lines.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over shards. Concurrent adds may or may not be visible — the
    /// value is exact once writers have quiesced (joined/synchronized).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

// ------------------------------------------------------------------ gauge

/// Last-value-wins instantaneous measurement (f64 bits in an atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// -------------------------------------------------------------- histogram

/// Log-bucketed histogram geometry: two buckets per octave (√2 steps)
/// starting at [`HIST_MIN`]. 96 buckets cover `1e-9 · 2^48 ≈ 2.8e5`, so a
/// seconds-unit histogram spans nanoseconds to ~3 days.
pub(crate) const HIST_BUCKETS: usize = 96;
const HIST_MIN: f64 = 1e-9;
const HIST_SUB: f64 = 2.0; // buckets per octave

/// Bucket index of `v` (bucket 0 collects everything ≤ [`HIST_MIN`],
/// the last bucket everything beyond the covered range).
pub(crate) fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= HIST_MIN {
        // NaN and non-positive values land in bucket 0 rather than
        // poisoning the distribution.
        return 0;
    }
    let idx = ((v / HIST_MIN).log2() * HIST_SUB).ceil() as isize;
    idx.clamp(0, (HIST_BUCKETS - 1) as isize) as usize
}

/// Upper edge of bucket `i` (inclusive; `f64::INFINITY` for the last).
pub(crate) fn bucket_upper(i: usize) -> f64 {
    if i + 1 >= HIST_BUCKETS {
        f64::INFINITY
    } else {
        HIST_MIN * (i as f64 / HIST_SUB).exp2()
    }
}

/// Lock-free log-bucketed histogram.
///
/// Counts are exact (every `record` lands in exactly one bucket with one
/// atomic add); the sum is accumulated with a CAS loop, so it applies
/// every sample exactly once (f64 rounding aside, order-dependent like
/// any float sum).
pub struct Histogram {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: Box::new([0u64; HIST_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: f64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let v = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Convenience for wall-time series: record a `Duration` in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Immutable copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Frozen histogram state with quantile estimation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    /// Per-bucket counts (fixed [`HIST_BUCKETS`] geometry).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile: the upper edge of the bucket containing
    /// the q-th sample (an overestimate by at most one √2 step). 0.0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = bucket_upper(i);
                return if edge.is_finite() { edge } else { self.sum };
            }
        }
        0.0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `(upper_edge, count)` for the non-empty buckets, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

// -------------------------------------------------------------- reservoir

/// Bounded most-recent-window sample reservoir: once full, the ring
/// overwrites the oldest sample, so quantiles over [`Reservoir::samples`]
/// describe the most recent `capacity` observations in O(capacity)
/// memory regardless of stream length.
///
/// This is the exact-percentile companion to [`Histogram`] (which is
/// unbounded-stream, bucketed): `cserve`'s latency percentiles ride on
/// it. Not thread-safe by itself — wrap in a lock.
#[derive(Debug)]
pub struct Reservoir {
    buf: Vec<f64>,
    /// Next overwrite position once the buffer is full.
    next: usize,
    capacity: usize,
}

impl Reservoir {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "reservoir capacity must be >= 1");
        Self {
            buf: Vec::new(),
            next: 0,
            capacity,
        }
    }

    pub fn push(&mut self, v: f64) {
        if self.buf.len() < self.capacity {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// The retained window, unordered.
    pub fn samples(&self) -> &[f64] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

// --------------------------------------------------------------- registry

/// Named-metric registry. One process-global instance ([`global`]) backs
/// the `counter!`/`gauge!`/`histogram!` macros; independent registries
/// can be built for tests.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    /// Help text per series name, emitted as `# HELP` lines in the
    /// Prometheus exposition (last [`Registry::describe`] wins).
    help: Mutex<BTreeMap<&'static str, &'static str>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(name).or_default())
    }

    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(name).or_default())
    }

    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(lock(&self.histograms).entry(name).or_default())
    }

    /// Attach help text to the series `name` (any kind). Surfaced as a
    /// `# HELP` line in the Prometheus exposition, with backslashes and
    /// newlines escaped per the format. Idempotent; last call wins.
    pub fn describe(&self, name: &'static str, help: &'static str) {
        lock(&self.help).insert(name, help);
    }

    /// Freeze every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            help: lock(&self.help)
                .iter()
                .map(|(&k, &v)| (k.to_string(), v.to_string()))
                .collect(),
            counters: lock(&self.counters)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::default)
}

/// Counter handle memoized per call site — one atomic add steady-state.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __COBS_C: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**__COBS_C.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// Gauge handle memoized per call site.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static __COBS_G: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__COBS_G.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
}

/// Histogram handle memoized per call site.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static __COBS_H: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__COBS_H.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

// --------------------------------------------------------------- snapshot

/// Immutable registry state, serializable as JSON or Prometheus text.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Help text per original series name ([`Registry::describe`]).
    pub help: BTreeMap<String, String>,
}

fn json_f64(v: f64) -> String {
    // JSON has no inf/nan literals; clamp to 0 (telemetry, not science).
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// `series.name` → `series_name` (Prometheus metric-name charset).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape `# HELP` text per the exposition format: backslash and newline
/// become the two-character sequences `\\` and `\n` so the line stays one
/// physical line and round-trips through a conforming parser.
fn prom_escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// The snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {"name":
    /// {"count": n, "sum": s, "mean": m, "p50": …, "p95": …, "p99": …,
    /// "buckets": [[le, count], …]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {}", json_f64(*v)));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{k}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                json_f64(h.sum),
                json_f64(h.mean()),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.95)),
                json_f64(h.quantile(0.99)),
            ));
            for (j, (le, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                if le.is_finite() {
                    out.push_str(&format!("[{}, {c}]", json_f64(*le)));
                } else {
                    out.push_str(&format!("[\"+Inf\", {c}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition format (cumulative `le` buckets), with
    /// `# HELP` lines for every series registered via
    /// [`Registry::describe`].
    pub fn to_prometheus(&self) -> String {
        let help_line = |out: &mut String, k: &str, n: &str| {
            if let Some(h) = self.help.get(k) {
                out.push_str(&format!("# HELP {n} {}\n", prom_escape_help(h)));
            }
        };
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            help_line(&mut out, k, &n);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            help_line(&mut out, k, &n);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", json_f64(*v)));
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            help_line(&mut out, k, &n);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (le, c) in h.nonzero_buckets() {
                cum += c;
                if le.is_finite() {
                    out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", json_f64(le)));
                }
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", json_f64(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let g = Gauge::default();
        g.set(1.5);
        g.add(2.5);
        assert_eq!(g.get(), 4.0);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_cover() {
        // Edges strictly increase and every positive value maps into a
        // bucket whose upper edge is >= the value.
        let mut prev = 0.0;
        for i in 0..HIST_BUCKETS - 1 {
            let e = bucket_upper(i);
            assert!(e > prev, "bucket {i} edge {e} <= {prev}");
            prev = e;
        }
        for v in [1e-10, 1e-9, 3e-7, 1e-3, 0.5, 1.0, 17.3, 2.5e5] {
            let b = bucket_of(v);
            assert!(
                bucket_upper(b) >= v,
                "value {v} above its bucket edge {}",
                bucket_upper(b)
            );
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "value {v} not in lowest bucket");
            }
        }
        // Hostile inputs land in bucket 0 instead of panicking.
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.sum - 500.5).abs() < 1e-6);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        // Bucketed quantiles overestimate by at most one √2 step.
        assert!((0.5..=0.5 * 1.5).contains(&p50), "p50 = {p50}");
        assert!((0.99..=0.99 * 1.5).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn reservoir_wraps_to_recent_window() {
        let mut r = Reservoir::new(4);
        for i in 0..10 {
            r.push(i as f64);
        }
        let mut s = r.samples().to_vec();
        s.sort_by(f64::total_cmp);
        assert_eq!(s, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let r = Registry::new();
        let a = r.counter("test.same");
        let b = r.counter("test.same");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("test.same").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_serializes_json_and_prometheus() {
        let r = Registry::new();
        r.counter("unit.requests").add(7);
        r.gauge("unit.depth").set(3.25);
        let h = r.histogram("unit.latency_seconds");
        h.record(0.010);
        h.record(0.020);
        let s = r.snapshot();

        let json = s.to_json();
        assert!(json.contains("\"unit.requests\": 7"), "{json}");
        assert!(json.contains("\"unit.depth\": 3.25"), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");

        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE unit_requests counter"), "{prom}");
        assert!(prom.contains("unit_requests 7"), "{prom}");
        assert!(prom.contains("# TYPE unit_latency_seconds histogram"));
        assert!(prom.contains("unit_latency_seconds_count 2"), "{prom}");
        assert!(prom.contains("le=\"+Inf\"}} 2".replace("}}", "}").as_str()));
    }

    #[test]
    fn prometheus_exposition_conforms() {
        // Format-conformance over a registry exercising every series kind
        // plus hostile help text: each # HELP precedes its # TYPE, help
        // backslashes/newlines are escaped onto one physical line, metric
        // names use the legal charset, sample lines are `name[{labels}]
        // value`, and histogram buckets are cumulative and end at +Inf.
        let r = Registry::new();
        r.counter("conf.requests").add(3);
        r.describe("conf.requests", "requests with a \\ backslash\nand newline");
        r.gauge("conf.depth").set(1.0);
        r.describe("conf.depth", "queue depth");
        let h = r.histogram("conf.latency_seconds");
        for v in [0.001, 0.002, 0.004, 0.5] {
            h.record(v);
        }
        r.describe("conf.latency_seconds", "latency");
        let prom = r.snapshot().to_prometheus();

        let help_at = prom.find("# HELP conf_requests").unwrap();
        let type_at = prom.find("# TYPE conf_requests counter").unwrap();
        assert!(help_at < type_at, "{prom}");
        assert!(
            prom.contains("# HELP conf_requests requests with a \\\\ backslash\\nand newline\n"),
            "help escaping broken:\n{prom}"
        );
        assert!(prom.contains("# HELP conf_latency_seconds latency\n"));

        let name_ok = |n: &str| {
            !n.is_empty()
                && !n.starts_with(|c: char| c.is_ascii_digit())
                && n.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut inf_cum = None;
        let mut last_cum = 0u64;
        for line in prom.lines() {
            assert!(!line.is_empty(), "blank line in exposition");
            if line.starts_with('#') {
                let mut parts = line.splitn(4, ' ');
                assert_eq!(parts.next(), Some("#"));
                let kind = parts.next().unwrap();
                assert!(kind == "HELP" || kind == "TYPE", "{line}");
                assert!(name_ok(parts.next().unwrap()), "{line}");
                continue;
            }
            // Sample line: name or name{le="..."} then one float value.
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let base = series.split('{').next().unwrap();
            assert!(name_ok(base), "bad metric name in {line}");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line}"
            );
            if let Some(le) = series.strip_prefix("conf_latency_seconds_bucket{le=\"") {
                let cum: u64 = value.parse().unwrap();
                assert!(cum >= last_cum, "buckets not cumulative: {line}");
                last_cum = cum;
                if le.starts_with("+Inf") {
                    inf_cum = Some(cum);
                }
            }
        }
        assert_eq!(inf_cum, Some(4), "+Inf bucket must equal count");
        assert!(prom.ends_with('\n'));
    }

    #[test]
    fn global_macros_memoize_and_record() {
        crate::counter!("unit.macro_counter").add(5);
        crate::counter!("unit.macro_counter").inc();
        assert_eq!(global().counter("unit.macro_counter").get(), 6);
        crate::gauge!("unit.macro_gauge").set(1.0);
        crate::histogram!("unit.macro_hist").record(0.5);
        let s = global().snapshot();
        assert_eq!(s.counters["unit.macro_counter"], 6);
        assert_eq!(s.histograms["unit.macro_hist"].count, 1);
    }
}
