//! # coastal-obs (`cobs`)
//!
//! End-to-end telemetry for the coastal surrogate stack — the substrate
//! every vertical crate (serve, pipeline, ensemble, tensor backends)
//! reports through. Dependency-free (std only), so it sits below every
//! other crate in the workspace graph.
//!
//! Three subsystems:
//!
//! - [`metrics`] — a process-global **metrics registry** of lock-sharded
//!   [`metrics::Counter`]s, [`metrics::Gauge`]s and log-bucketed
//!   [`metrics::Histogram`]s, registered by static name and snapshot-able
//!   as JSON ([`metrics::MetricsSnapshot::to_json`]) or Prometheus text
//!   exposition format ([`metrics::MetricsSnapshot::to_prometheus`]).
//!   Call sites use the [`counter!`]/[`gauge!`]/[`histogram!`] macros,
//!   which cache the registry lookup in a per-call-site `OnceLock` so the
//!   hot path is one atomic op, never a map probe.
//!
//! - [`trace`] — **structured tracing**: per-request traces minted with
//!   [`trace::start`], cheap nested span guards ([`span!`]) recording
//!   wall time into a per-trace span tree, and cross-thread
//!   [`trace::TraceHandle`]s so a request's trace follows it from the
//!   admission thread through the batcher to a replica worker. Disabled
//!   (the default) a span guard is a single atomic load; tracing is
//!   enabled per process via [`trace::set_enabled`] or `COASTAL_TRACE=1`.
//!
//! - [`metrics::Reservoir`] — the bounded latency ring shared with
//!   `cserve`'s percentile metrics (windowed exact quantiles, O(1) in
//!   request count).
//!
//! Kernel-level profiling (`COASTAL_PROFILE=1`) lives in
//! `ctensor::backend::Profiled`, which records per-op wall time into this
//! registry and emits kernel spans into whatever trace is active on the
//! calling thread.
//!
//! The **ops plane** (PR 10) adds three more subsystems on the same
//! substrate:
//!
//! - [`recorder`] — an always-on rolling **flight recorder**: a bounded
//!   ring of the last N completed request traces plus per-latency-bucket
//!   exemplars, with anomaly-triggered freeze + JSON incident dumps
//!   ([`recorder::FlightRecorder`]).
//!
//! - [`slo`] — declarative **SLO specs** with multi-window burn-rate
//!   alerting ([`slo::SloEngine`]); windows are driven through a
//!   [`slo::Clock`] trait so tests never sleep.
//!
//! - [`drift`] — the **physics-drift watchdog** core: windowed pass-rate
//!   and ζ summary statistics versus a calibration baseline, emitting
//!   escalate/recover events that `cserve`'s governor turns into
//!   precision-ladder steps and ROMS-fallback routing.
//!
//! These are scraped over HTTP by `cserve::ops` (`/metrics`, `/healthz`,
//! `/readyz`, `/debug/traces`).

pub mod drift;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod trace;

pub use drift::{DriftBaseline, DriftConfig, DriftEvent, DriftMonitor};
pub use metrics::{global, Counter, Gauge, Histogram, MetricsSnapshot, Registry, Reservoir};
pub use recorder::{FlightRecorder, Outcome, RequestRecord};
pub use slo::{AlertState, Clock, ManualClock, SloEngine, SloSpec, SloStatus, SystemClock};
pub use trace::{SpanId, TraceHandle, TraceId};
