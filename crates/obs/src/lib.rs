//! # coastal-obs (`cobs`)
//!
//! End-to-end telemetry for the coastal surrogate stack — the substrate
//! every vertical crate (serve, pipeline, ensemble, tensor backends)
//! reports through. Dependency-free (std only), so it sits below every
//! other crate in the workspace graph.
//!
//! Three subsystems:
//!
//! - [`metrics`] — a process-global **metrics registry** of lock-sharded
//!   [`metrics::Counter`]s, [`metrics::Gauge`]s and log-bucketed
//!   [`metrics::Histogram`]s, registered by static name and snapshot-able
//!   as JSON ([`metrics::MetricsSnapshot::to_json`]) or Prometheus text
//!   exposition format ([`metrics::MetricsSnapshot::to_prometheus`]).
//!   Call sites use the [`counter!`]/[`gauge!`]/[`histogram!`] macros,
//!   which cache the registry lookup in a per-call-site `OnceLock` so the
//!   hot path is one atomic op, never a map probe.
//!
//! - [`trace`] — **structured tracing**: per-request traces minted with
//!   [`trace::start`], cheap nested span guards ([`span!`]) recording
//!   wall time into a per-trace span tree, and cross-thread
//!   [`trace::TraceHandle`]s so a request's trace follows it from the
//!   admission thread through the batcher to a replica worker. Disabled
//!   (the default) a span guard is a single atomic load; tracing is
//!   enabled per process via [`trace::set_enabled`] or `COASTAL_TRACE=1`.
//!
//! - [`metrics::Reservoir`] — the bounded latency ring shared with
//!   `cserve`'s percentile metrics (windowed exact quantiles, O(1) in
//!   request count).
//!
//! Kernel-level profiling (`COASTAL_PROFILE=1`) lives in
//! `ctensor::backend::Profiled`, which records per-op wall time into this
//! registry and emits kernel spans into whatever trace is active on the
//! calling thread.

pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, MetricsSnapshot, Registry, Reservoir};
pub use trace::{SpanId, TraceHandle, TraceId};
