//! The rolling flight recorder: an always-on bounded ring of the last N
//! completed request records, plus per-latency-bucket **exemplars** (the
//! slowest record retained per histogram bucket), with anomaly-triggered
//! freezing so an incident's traces survive the traffic that follows it.
//!
//! Metrics tell you *that* p99 spiked; the recorder tells you *which
//! requests* spiked and (when tracing is on) where their time went. Every
//! completed request is recorded as a small [`RequestRecord`] — label,
//! outcome, latency, cache/coalesce flags, and the full span-tree JSON
//! when the request carried a trace. The ring holds the most recent
//! `capacity` records in O(capacity) memory; exemplars pin one record per
//! log-latency bucket (same √2 geometry as [`crate::Histogram`]), so the
//! tail of the distribution keeps representatives even after the ring
//! has wrapped past them.
//!
//! **Freezing**: when an anomaly fires — a recorded latency more than
//! [`AnomalyPolicy::latency_spike_factor`]× the running mean (after
//! [`AnomalyPolicy::min_samples`] warm-up), or an explicit
//! [`FlightRecorder::freeze`] from e.g. the physics-drift watchdog — the
//! ring stops overwriting. The spiking record itself is retained (freeze
//! happens *after* it is pushed); later records are counted as dropped.
//! [`FlightRecorder::dump_json`] serializes the frozen state for an
//! incident artifact; [`FlightRecorder::thaw`] resumes recording.
//!
//! Cost model: recording is one short mutex hold on a small struct push
//! (plus a `to_json` render only for traced requests), cheap against a
//! model forward; `bench_serve` gates the recorder-on mixed-traffic
//! headline at ≥0.95× of the recorder-off run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::{bucket_of, bucket_upper, HIST_BUCKETS};
use crate::trace::TraceHandle;

/// Terminal outcome of a recorded request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    Ok,
    Failed,
    Rejected,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Failed => "failed",
            Outcome::Rejected => "rejected",
        }
    }
}

/// One completed request, as retained by the ring.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Process-monotone sequence number (gaps mean records were dropped
    /// while frozen or recording was disabled).
    pub seq: u64,
    pub label: &'static str,
    pub outcome: Outcome,
    pub latency_seconds: f64,
    pub from_cache: bool,
    pub coalesced: bool,
    /// The request's trace id when it was traced.
    pub trace_id: Option<u64>,
    /// Full span tree (`TraceHandle::to_json`) when the request was
    /// traced; `None` for untraced requests (the record is still useful —
    /// latency, outcome and flags survive without tracing enabled).
    pub trace_json: Option<String>,
}

impl RequestRecord {
    fn to_json(&self) -> String {
        let trace_id = match self.trace_id {
            Some(id) => format!("\"{id:016x}\""),
            None => "null".into(),
        };
        let trace = self.trace_json.as_deref().unwrap_or("null");
        format!(
            "{{\"seq\": {}, \"label\": \"{}\", \"outcome\": \"{}\", \
             \"latency_seconds\": {:.9}, \"from_cache\": {}, \"coalesced\": {}, \
             \"trace_id\": {trace_id}, \"trace\": {trace}}}",
            self.seq,
            self.label,
            self.outcome.as_str(),
            self.latency_seconds,
            self.from_cache,
            self.coalesced,
        )
    }
}

/// When the recorder freezes itself.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyPolicy {
    /// Freeze when a completed latency exceeds this multiple of the
    /// running mean latency.
    pub latency_spike_factor: f64,
    /// Completions observed before the spike detector arms (the mean is
    /// meaningless over the first few samples).
    pub min_samples: u64,
}

impl Default for AnomalyPolicy {
    fn default() -> Self {
        Self {
            latency_spike_factor: 16.0,
            min_samples: 64,
        }
    }
}

#[derive(Clone, Debug)]
struct FreezeInfo {
    reason: String,
    /// Sequence number of the last record admitted before the freeze.
    at_seq: u64,
    /// Records rejected since (they arrived while frozen).
    dropped: u64,
}

struct Inner {
    ring: VecDeque<RequestRecord>,
    exemplars: Vec<Option<RequestRecord>>,
    frozen: Option<FreezeInfo>,
    /// Running mean latency of completed requests (spike baseline).
    mean_latency: f64,
    completions: u64,
}

/// The rolling flight recorder. One process-global instance ([`global`])
/// is fed by `cserve`; independent recorders can be built for tests.
pub struct FlightRecorder {
    capacity: usize,
    policy: AnomalyPolicy,
    enabled: AtomicBool,
    seq: AtomicU64,
    inner: Mutex<Inner>,
}

fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    pub fn new(capacity: usize, policy: AnomalyPolicy) -> Self {
        let reg = crate::metrics::global();
        reg.describe(
            "obs.recorder.freezes",
            "Flight-recorder freezes (anomaly or explicit incident)",
        );
        reg.describe(
            "obs.recorder.frozen",
            "1 while the flight recorder is frozen on an incident",
        );
        reg.describe(
            "obs.recorder.dropped_while_frozen",
            "Request records rejected because the recorder was frozen",
        );
        reg.gauge("obs.recorder.frozen").set(0.0);
        Self {
            capacity: capacity.max(1),
            policy,
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                exemplars: vec![None; HIST_BUCKETS],
                frozen: None,
                mean_latency: 0.0,
                completions: 0,
            }),
        }
    }

    /// Turn recording on or off (the overhead knob `bench_serve`
    /// measures). Off, [`Self::record`] is one atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        lock(&self.inner).ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record one completed request. The trace (when present) is rendered
    /// to JSON here, so the record survives the trace ring's eviction.
    pub fn record(
        &self,
        label: &'static str,
        outcome: Outcome,
        latency_seconds: f64,
        from_cache: bool,
        coalesced: bool,
        trace: Option<&TraceHandle>,
    ) {
        if !self.enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let rec = RequestRecord {
            seq,
            label,
            outcome,
            latency_seconds,
            from_cache,
            coalesced,
            trace_id: trace.map(|t| t.id().0),
            trace_json: trace.map(TraceHandle::to_json),
        };
        let mut inner = lock(&self.inner);
        if let Some(f) = &mut inner.frozen {
            f.dropped += 1;
            crate::counter!("obs.recorder.dropped_while_frozen").inc();
            return;
        }
        // Spike detection against the running mean *before* this sample
        // joins it; the spiking record itself is pushed first, so the
        // frozen ring contains the anomaly that triggered it.
        let spike = outcome == Outcome::Ok
            && inner.completions >= self.policy.min_samples
            && inner.mean_latency > 0.0
            && latency_seconds > self.policy.latency_spike_factor * inner.mean_latency;
        if outcome == Outcome::Ok {
            inner.completions += 1;
            let n = inner.completions as f64;
            inner.mean_latency += (latency_seconds - inner.mean_latency) / n;
        }
        let b = bucket_of(latency_seconds);
        let replace = inner.exemplars[b]
            .as_ref()
            .is_none_or(|e| latency_seconds > e.latency_seconds);
        if replace {
            inner.exemplars[b] = Some(rec.clone());
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(rec);
        if spike {
            let mean = inner.mean_latency;
            Self::freeze_locked(
                &mut inner,
                format!(
                    "tail-latency spike: {latency_seconds:.6}s > {}x mean {mean:.6}s",
                    self.policy.latency_spike_factor
                ),
                seq,
            );
        }
    }

    fn freeze_locked(inner: &mut Inner, reason: String, at_seq: u64) {
        if inner.frozen.is_some() {
            return; // first incident wins; keep its ring
        }
        inner.frozen = Some(FreezeInfo {
            reason,
            at_seq,
            dropped: 0,
        });
        crate::counter!("obs.recorder.freezes").inc();
        crate::gauge!("obs.recorder.frozen").set(1.0);
    }

    /// Freeze the ring explicitly (e.g. a physics-fail burst observed by
    /// the drift watchdog). Idempotent: the first freeze's reason and
    /// ring contents win.
    pub fn freeze(&self, reason: &str) {
        let at_seq = self.seq.load(Ordering::Relaxed);
        Self::freeze_locked(&mut lock(&self.inner), reason.to_string(), at_seq);
    }

    /// Resume recording after an incident. The ring keeps its contents
    /// (new records age them out naturally); the spike baseline restarts
    /// so a post-incident regime change doesn't re-trigger immediately.
    pub fn thaw(&self) {
        let mut inner = lock(&self.inner);
        inner.frozen = None;
        inner.completions = 0;
        inner.mean_latency = 0.0;
        crate::gauge!("obs.recorder.frozen").set(0.0);
    }

    pub fn is_frozen(&self) -> bool {
        lock(&self.inner).frozen.is_some()
    }

    /// The freeze reason, when frozen.
    pub fn freeze_reason(&self) -> Option<String> {
        lock(&self.inner).frozen.as_ref().map(|f| f.reason.clone())
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<RequestRecord> {
        lock(&self.inner).ring.iter().cloned().collect()
    }

    /// The whole recorder state as one JSON object — the incident-dump
    /// artifact: ring (oldest first), per-bucket exemplars, and freeze
    /// metadata.
    pub fn dump_json(&self) -> String {
        let inner = lock(&self.inner);
        let (frozen, reason, at_seq, dropped) = match &inner.frozen {
            Some(f) => (true, json_escape(&f.reason), f.at_seq, f.dropped),
            None => (false, String::new(), 0, 0),
        };
        let mut out = format!(
            "{{\"frozen\": {frozen}, \"freeze_reason\": \"{reason}\", \
             \"frozen_at_seq\": {at_seq}, \"dropped_while_frozen\": {dropped}, \
             \"capacity\": {}, \"records\": [",
            self.capacity
        );
        for (i, r) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_json());
        }
        out.push_str("], \"exemplars\": [");
        let mut first = true;
        for (b, e) in inner.exemplars.iter().enumerate() {
            let Some(rec) = e else { continue };
            if !first {
                out.push_str(", ");
            }
            first = false;
            let le = bucket_upper(b);
            let le = if le.is_finite() {
                format!("{le:.9}")
            } else {
                "\"+Inf\"".into()
            };
            out.push_str(&format!("{{\"le\": {le}, \"record\": {}}}", rec.to_json()));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The process-global flight recorder (capacity via
/// `COASTAL_RECORDER_CAP`, default 256; `COASTAL_RECORDER=0` starts it
/// disabled).
pub fn global() -> &'static FlightRecorder {
    static R: OnceLock<FlightRecorder> = OnceLock::new();
    R.get_or_init(|| {
        let cap = std::env::var("COASTAL_RECORDER_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let rec = FlightRecorder::new(cap, AnomalyPolicy::default());
        if matches!(
            std::env::var("COASTAL_RECORDER").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ) {
            rec.set_enabled(false);
        }
        rec
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(r: &FlightRecorder, latency: f64) {
        r.record("req", Outcome::Ok, latency, false, false, None);
    }

    #[test]
    fn ring_keeps_most_recent_capacity_records() {
        let r = FlightRecorder::new(4, AnomalyPolicy::default());
        for i in 0..10 {
            rec(&r, 0.001 * (i + 1) as f64);
        }
        let records = r.records();
        assert_eq!(records.len(), 4);
        let seqs: Vec<u64> = records.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn exemplars_pin_slowest_per_bucket_across_wrap() {
        let r = FlightRecorder::new(2, AnomalyPolicy::default());
        // The slow outlier wraps out of the tiny ring...
        rec(&r, 1.0);
        rec(&r, 0.001);
        rec(&r, 0.0011);
        rec(&r, 0.0012);
        assert_eq!(r.records().len(), 2);
        // ...but its exemplar survives in the ~1 s bucket.
        let dump = r.dump_json();
        assert!(dump.contains("\"latency_seconds\": 1.000000000"), "{dump}");
    }

    #[test]
    fn latency_spike_freezes_after_recording_the_spike() {
        let policy = AnomalyPolicy {
            latency_spike_factor: 10.0,
            min_samples: 8,
        };
        let r = FlightRecorder::new(64, policy);
        for _ in 0..20 {
            rec(&r, 0.010);
        }
        assert!(!r.is_frozen());
        rec(&r, 1.0); // 100x the mean
        assert!(r.is_frozen());
        assert!(
            r.freeze_reason().unwrap().contains("tail-latency spike"),
            "{:?}",
            r.freeze_reason()
        );
        // The spike itself is the last retained record; later records drop.
        let last_seq = r.records().last().unwrap().seq;
        rec(&r, 0.010);
        assert_eq!(r.records().last().unwrap().seq, last_seq);
        let dump = r.dump_json();
        assert!(dump.contains("\"frozen\": true"), "{dump}");
        assert!(dump.contains("\"dropped_while_frozen\": 1"), "{dump}");
        // Thaw resumes recording.
        r.thaw();
        rec(&r, 0.010);
        assert!(r.records().last().unwrap().seq > last_seq);
    }

    #[test]
    fn explicit_freeze_is_idempotent_first_reason_wins() {
        let r = FlightRecorder::new(8, AnomalyPolicy::default());
        rec(&r, 0.01);
        r.freeze("physics-fail burst");
        r.freeze("second incident");
        assert_eq!(r.freeze_reason().as_deref(), Some("physics-fail burst"));
        assert_eq!(r.records().len(), 1);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::new(8, AnomalyPolicy::default());
        r.set_enabled(false);
        rec(&r, 0.01);
        assert!(r.is_empty());
        r.set_enabled(true);
        rec(&r, 0.01);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dump_json_carries_trace_when_present() {
        crate::trace::set_enabled(true);
        let t = crate::trace::start("req");
        t.close();
        let r = FlightRecorder::new(8, AnomalyPolicy::default());
        r.record("forecast", Outcome::Ok, 0.005, true, false, Some(&t));
        let dump = r.dump_json();
        assert!(dump.contains("\"trace_id\": \""), "{dump}");
        assert!(dump.contains("\"spans\": ["), "{dump}");
        assert!(dump.contains("\"from_cache\": true"), "{dump}");
    }
}
