//! Physics-drift watchdog core: windowed monitoring of per-member
//! physics verdict pass-rate and ζ (free-surface) summary statistics
//! against a calibration baseline.
//!
//! The source paper's deployment story leans on verification: the
//! surrogate is trusted only while its episodes pass the mass-residual
//! check, and failing episodes fall back to the physics model. That is a
//! *per-episode* guarantee. This module adds the *fleet-level* guarantee:
//! if the surrogate as a whole drifts out of the envelope it was
//! calibrated in (distribution shift, a bad weight push, quantization
//! gone stale), the windowed pass-rate and ζ statistics move, and the
//! monitor emits escalation events that the serving layer turns into
//! precision-ladder steps and ultimately ROMS-fallback routing
//! (`cserve`'s `DriftGovernor`).
//!
//! The monitor itself is dependency-free and unit-testable: feed it
//! `(passed, ζ_mean, ζ_extreme)` per member, read [`DriftEvent`]s out.
//! Windows are counted in members (not seconds) because drift is a
//! property of the model's output distribution, not of wall time.

use std::collections::VecDeque;

/// Calibration-time reference statistics, captured on a healthy
/// surrogate over a representative member population.
#[derive(Clone, Copy, Debug)]
pub struct DriftBaseline {
    /// Fraction of members whose whole episode passed verification.
    pub pass_rate: f64,
    /// Mean over members of the episode-mean ζ (meters).
    pub zeta_mean: f64,
    /// Mean over members of the episode-extreme |ζ| (meters).
    pub zeta_extreme: f64,
}

impl DriftBaseline {
    /// Compute a baseline from calibration members.
    pub fn from_members<I: IntoIterator<Item = (bool, f64, f64)>>(members: I) -> Self {
        let (mut n, mut passed, mut mean, mut extreme) = (0u64, 0u64, 0.0, 0.0);
        for (p, zm, zx) in members {
            n += 1;
            passed += p as u64;
            mean += zm;
            extreme += zx;
        }
        let n = n.max(1) as f64;
        Self {
            pass_rate: passed as f64 / n,
            zeta_mean: mean / n,
            zeta_extreme: extreme / n,
        }
    }
}

/// Thresholds and window sizing.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Member observations per evaluation window.
    pub window: usize,
    /// A window breaches when its pass rate falls more than this below
    /// the baseline pass rate.
    pub max_pass_rate_drop: f64,
    /// A window breaches when |window ζ-mean − baseline ζ-mean| exceeds
    /// this (meters).
    pub max_mean_drift: f64,
    /// A window breaches when |window ζ-extreme − baseline ζ-extreme|
    /// exceeds this (meters).
    pub max_extreme_drift: f64,
    /// Consecutive breaching windows before an escalation fires.
    pub trip_windows: usize,
    /// Consecutive clean windows before a recovery fires.
    pub recover_windows: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 32,
            max_pass_rate_drop: 0.15,
            max_mean_drift: 0.05,
            max_extreme_drift: 0.25,
            trip_windows: 2,
            recover_windows: 4,
        }
    }
}

/// What a completed window showed.
#[derive(Clone, Debug)]
pub struct WindowStats {
    pub pass_rate: f64,
    pub zeta_mean: f64,
    pub zeta_extreme: f64,
    /// Human-readable breach descriptions (empty = clean window).
    pub breaches: Vec<String>,
}

/// Emitted by [`DriftMonitor::observe`] when streak thresholds cross.
#[derive(Clone, Debug)]
pub enum DriftEvent {
    /// `trip_windows` consecutive windows breached: step down the ladder.
    Escalate(WindowStats),
    /// `recover_windows` consecutive windows were clean: step back up.
    Recover(WindowStats),
}

/// The windowed drift monitor. Not thread-safe by itself — the serving
/// layer wraps it in a lock (`cserve::DriftGovernor`).
pub struct DriftMonitor {
    cfg: DriftConfig,
    baseline: DriftBaseline,
    /// Current partial window of `(passed, ζ_mean, ζ_extreme)`.
    buf: VecDeque<(bool, f64, f64)>,
    bad_streak: usize,
    good_streak: usize,
    windows_evaluated: u64,
}

impl DriftMonitor {
    pub fn new(baseline: DriftBaseline, cfg: DriftConfig) -> Self {
        assert!(cfg.window >= 1, "drift window must be >= 1");
        Self {
            cfg,
            baseline,
            buf: VecDeque::new(),
            bad_streak: 0,
            good_streak: 0,
            windows_evaluated: 0,
        }
    }

    pub fn baseline(&self) -> DriftBaseline {
        self.baseline
    }

    pub fn config(&self) -> DriftConfig {
        self.cfg
    }

    pub fn windows_evaluated(&self) -> u64 {
        self.windows_evaluated
    }

    /// Feed one member's outcome. Returns an event when this observation
    /// completes a window whose streak crosses a threshold.
    pub fn observe(
        &mut self,
        passed: bool,
        zeta_mean: f64,
        zeta_extreme: f64,
    ) -> Option<DriftEvent> {
        self.buf.push_back((passed, zeta_mean, zeta_extreme));
        if self.buf.len() < self.cfg.window {
            return None;
        }
        let stats = self.evaluate_window();
        self.buf.clear();
        self.windows_evaluated += 1;

        crate::gauge!("drift.window_pass_rate").set(stats.pass_rate);
        crate::gauge!("drift.zeta_mean_drift")
            .set((stats.zeta_mean - self.baseline.zeta_mean).abs());
        crate::gauge!("drift.zeta_extreme_drift")
            .set((stats.zeta_extreme - self.baseline.zeta_extreme).abs());

        if stats.breaches.is_empty() {
            self.bad_streak = 0;
            self.good_streak += 1;
            if self.good_streak >= self.cfg.recover_windows {
                self.good_streak = 0;
                return Some(DriftEvent::Recover(stats));
            }
        } else {
            self.good_streak = 0;
            self.bad_streak += 1;
            crate::counter!("drift.windows_breached").inc();
            if self.bad_streak >= self.cfg.trip_windows {
                self.bad_streak = 0;
                return Some(DriftEvent::Escalate(stats));
            }
        }
        None
    }

    fn evaluate_window(&self) -> WindowStats {
        let n = self.buf.len() as f64;
        let pass_rate = self.buf.iter().filter(|m| m.0).count() as f64 / n;
        let zeta_mean = self.buf.iter().map(|m| m.1).sum::<f64>() / n;
        let zeta_extreme = self.buf.iter().map(|m| m.2).sum::<f64>() / n;
        let mut breaches = Vec::new();
        let drop = self.baseline.pass_rate - pass_rate;
        if drop > self.cfg.max_pass_rate_drop {
            breaches.push(format!(
                "pass rate {pass_rate:.3} fell {drop:.3} below baseline {:.3} (max {:.3})",
                self.baseline.pass_rate, self.cfg.max_pass_rate_drop
            ));
        }
        let mean_drift = (zeta_mean - self.baseline.zeta_mean).abs();
        if mean_drift > self.cfg.max_mean_drift {
            breaches.push(format!(
                "zeta mean drift {mean_drift:.4} m exceeds {:.4} m",
                self.cfg.max_mean_drift
            ));
        }
        let extreme_drift = (zeta_extreme - self.baseline.zeta_extreme).abs();
        if extreme_drift > self.cfg.max_extreme_drift {
            breaches.push(format!(
                "zeta extreme drift {extreme_drift:.4} m exceeds {:.4} m",
                self.cfg.max_extreme_drift
            ));
        }
        WindowStats {
            pass_rate,
            zeta_mean,
            zeta_extreme,
            breaches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> DriftBaseline {
        DriftBaseline {
            pass_rate: 1.0,
            zeta_mean: 0.10,
            zeta_extreme: 0.80,
        }
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            window: 4,
            trip_windows: 2,
            recover_windows: 2,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn healthy_stream_never_escalates() {
        let mut m = DriftMonitor::new(baseline(), cfg());
        for i in 0..64 {
            let ev = m.observe(true, 0.10, 0.80);
            match ev {
                None | Some(DriftEvent::Recover(_)) => {}
                Some(DriftEvent::Escalate(s)) => panic!("escalated at {i}: {s:?}"),
            }
        }
        assert_eq!(m.windows_evaluated(), 16);
    }

    #[test]
    fn pass_rate_collapse_escalates_after_trip_windows() {
        let mut m = DriftMonitor::new(baseline(), cfg());
        let mut events = Vec::new();
        // 8 members = 2 windows of total verification failure.
        for _ in 0..8 {
            if let Some(e) = m.observe(false, 0.10, 0.80) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1, "{events:?}");
        let DriftEvent::Escalate(s) = &events[0] else {
            panic!("{events:?}");
        };
        assert_eq!(s.pass_rate, 0.0);
        assert!(s.breaches.iter().any(|b| b.contains("pass rate")), "{s:?}");
    }

    #[test]
    fn zeta_drift_alone_escalates() {
        let mut m = DriftMonitor::new(baseline(), cfg());
        // Members still pass verification but the surface drifted 30 cm.
        let mut escalated = false;
        for _ in 0..8 {
            if let Some(DriftEvent::Escalate(s)) = m.observe(true, 0.40, 0.80) {
                assert!(s.breaches.iter().any(|b| b.contains("zeta mean")), "{s:?}");
                escalated = true;
            }
        }
        assert!(escalated);
    }

    #[test]
    fn single_bad_window_does_not_trip() {
        let mut m = DriftMonitor::new(baseline(), cfg());
        for _ in 0..4 {
            assert!(m.observe(false, 0.10, 0.80).is_none());
        }
        // Clean window resets the bad streak.
        for _ in 0..4 {
            m.observe(true, 0.10, 0.80);
        }
        for _ in 0..4 {
            assert!(
                m.observe(false, 0.10, 0.80).is_none(),
                "streak must restart after a clean window"
            );
        }
    }

    #[test]
    fn recovery_fires_after_consecutive_clean_windows() {
        let mut m = DriftMonitor::new(baseline(), cfg());
        for _ in 0..8 {
            m.observe(false, 0.10, 0.80); // escalate
        }
        let mut recovered = false;
        for _ in 0..8 {
            if let Some(DriftEvent::Recover(_)) = m.observe(true, 0.10, 0.80) {
                recovered = true;
            }
        }
        assert!(recovered);
    }

    #[test]
    fn baseline_from_members_averages() {
        let b = DriftBaseline::from_members(vec![(true, 0.1, 0.5), (false, 0.3, 1.5)]);
        assert_eq!(b.pass_rate, 0.5);
        assert!((b.zeta_mean - 0.2).abs() < 1e-12);
        assert!((b.zeta_extreme - 1.0).abs() < 1e-12);
    }
}
