//! Structured tracing: per-request span trees.
//!
//! A trace is minted once per request ([`start`]) and its [`TraceHandle`]
//! travels with the request across threads (admission → batcher → replica
//! worker). Any thread holding the handle can [`enter`] it, making
//! [`span!`](crate::span!) guards on that thread record into the trace's
//! span tree; explicit-bounds spans ([`TraceHandle::record`]) cover
//! intervals measured without a guard on the stack (e.g. queue wait,
//! observed as `enqueued → dequeued` from different threads).
//!
//! Cost model: tracing is **off by default** — a [`span!`] then costs one
//! relaxed atomic load. Enable per process with [`set_enabled`] or
//! `COASTAL_TRACE=1`. Enabled, a span is one short mutex hold on the
//! trace's own data (never a global lock).
//!
//! Span guards are panic-safe: a guard dropped during unwinding closes its
//! span and restores the thread's span stack to the guard's parent, so a
//! panicking replica worker leaves the trace well-formed (inner guards
//! drop before outer ones during unwind).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-unique trace identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Index of a span within its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// ---------------------------------------------------------------- enabled

static ENABLED: AtomicBool = AtomicBool::new(false);

fn env_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if matches!(
            std::env::var("COASTAL_TRACE").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        ) {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Turn tracing on or off for the whole process.
pub fn set_enabled(on: bool) {
    env_init();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether traces are being minted/recorded (also keyed by
/// `COASTAL_TRACE=1` at first check).
pub fn enabled() -> bool {
    env_init();
    ENABLED.load(Ordering::Relaxed)
}

// ------------------------------------------------------------------ data

#[derive(Clone, Debug)]
struct Span {
    name: &'static str,
    parent: Option<SpanId>,
    start_ns: u64,
    end_ns: Option<u64>,
}

#[derive(Debug)]
struct TraceData {
    label: &'static str,
    spans: Vec<Span>,
}

/// Shared, cloneable handle to one trace. All recording goes through the
/// trace's own mutex; handles are `Send + Sync` so a request can carry
/// its trace across the batcher into a replica thread.
#[derive(Clone)]
pub struct TraceHandle {
    id: TraceId,
    /// Start-of-trace anchor; span times are offsets from it.
    epoch: Instant,
    data: Arc<Mutex<TraceData>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").field("id", &self.id).finish()
    }
}

fn lock(m: &Mutex<TraceData>) -> std::sync::MutexGuard<'_, TraceData> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TraceHandle {
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The root span (always present, opened by [`start`]).
    pub fn root(&self) -> SpanId {
        SpanId(0)
    }

    fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    fn open_span(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let mut d = lock(&self.data);
        let id = SpanId(d.spans.len() as u32);
        d.spans.push(Span {
            name,
            parent,
            start_ns: self.ns_since_epoch(Instant::now()),
            end_ns: None,
        });
        id
    }

    fn close_span(&self, id: SpanId) {
        let end = self.ns_since_epoch(Instant::now());
        let mut d = lock(&self.data);
        if let Some(s) = d.spans.get_mut(id.0 as usize) {
            if s.end_ns.is_none() {
                s.end_ns = Some(end);
            }
        }
    }

    /// Record a span with explicit bounds (measured elsewhere, e.g. a
    /// queue wait observed from the dequeuing thread).
    pub fn record(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start: Instant,
        end: Instant,
    ) -> SpanId {
        let parent = Some(parent.unwrap_or(SpanId(0)));
        let (start_ns, end_ns) = (self.ns_since_epoch(start), self.ns_since_epoch(end));
        let mut d = lock(&self.data);
        let id = SpanId(d.spans.len() as u32);
        d.spans.push(Span {
            name,
            parent,
            start_ns,
            end_ns: Some(end_ns),
        });
        id
    }

    /// Close the root span (idempotent). Call when the request completes.
    pub fn close(&self) {
        self.close_span(SpanId(0));
    }

    /// Total wall time of span `id` in seconds, if closed.
    pub fn span_seconds(&self, id: SpanId) -> Option<f64> {
        let d = lock(&self.data);
        let s = d.spans.get(id.0 as usize)?;
        Some((s.end_ns? - s.start_ns) as f64 * 1e-9)
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        lock(&self.data).spans.len()
    }

    /// Render the span tree as indented text. Groups of same-named
    /// childless siblings collapse into one `name ×count (total)` line so
    /// per-kernel spans don't flood the output. Spans with children also
    /// print their **self time** (total minus time covered by direct
    /// children), so a profile tree distinguishes "slow here" from "slow
    /// below".
    pub fn render(&self) -> String {
        let d = lock(&self.data);
        let mut out = format!("trace {} [{}]\n", self.id, d.label);
        // children[i] = indices of spans whose parent is span i.
        let n = d.spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in d.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                if (p.0 as usize) < n && p.0 as usize != i {
                    children[p.0 as usize].push(i);
                }
            }
        }
        fn fmt_dur(ns: u64) -> String {
            let s = ns as f64 * 1e-9;
            if s >= 1.0 {
                format!("{s:.3}s")
            } else if s >= 1e-3 {
                format!("{:.3}ms", s * 1e3)
            } else {
                format!("{:.1}us", s * 1e6)
            }
        }
        fn walk(
            d: &TraceData,
            children: &[Vec<usize>],
            idx: usize,
            depth: usize,
            out: &mut String,
        ) {
            let s = &d.spans[idx];
            let span_ns = |i: usize| {
                let s = &d.spans[i];
                s.end_ns.unwrap_or(s.start_ns).saturating_sub(s.start_ns)
            };
            let dur = match s.end_ns {
                Some(e) => fmt_dur(e.saturating_sub(s.start_ns)),
                None => "(open)".into(),
            };
            // Self time = total minus direct-child time. Children of one
            // span run sequentially on a thread (guards nest), so the sum
            // is the covered interval; explicit-bounds spans recorded from
            // other threads can exceed the parent, hence the saturation.
            if children[idx].is_empty() {
                out.push_str(&format!(
                    "{:indent$}{} {}\n",
                    "",
                    s.name,
                    dur,
                    indent = depth * 2
                ));
            } else {
                let child_ns: u64 = children[idx].iter().map(|&c| span_ns(c)).sum();
                let self_ns = span_ns(idx).saturating_sub(child_ns);
                out.push_str(&format!(
                    "{:indent$}{} {} (self {})\n",
                    "",
                    s.name,
                    dur,
                    fmt_dur(self_ns),
                    indent = depth * 2
                ));
            }
            // Partition this span's children: aggregate runs of same-named
            // childless spans, recurse into the rest in start order.
            let kids = &children[idx];
            let mut i = 0;
            while i < kids.len() {
                let k = kids[i];
                let name = d.spans[k].name;
                // Count the contiguous same-named childless run.
                let mut j = i;
                while j < kids.len()
                    && d.spans[kids[j]].name == name
                    && children[kids[j]].is_empty()
                {
                    j += 1;
                }
                if j - i > 1 {
                    let total: u64 = kids[i..j]
                        .iter()
                        .map(|&c| {
                            let s = &d.spans[c];
                            s.end_ns.unwrap_or(s.start_ns).saturating_sub(s.start_ns)
                        })
                        .sum();
                    out.push_str(&format!(
                        "{:indent$}{} x{} ({})\n",
                        "",
                        name,
                        j - i,
                        fmt_dur(total),
                        indent = (depth + 1) * 2
                    ));
                    i = j;
                } else {
                    walk(d, children, k, depth + 1, out);
                    i += 1;
                }
            }
        }
        if !d.spans.is_empty() {
            walk(&d, &children, 0, 0, &mut out);
        }
        out
    }

    /// The trace as one JSON object (span times in microseconds from the
    /// trace epoch; `end_us` is null for open spans).
    pub fn to_json(&self) -> String {
        let d = lock(&self.data);
        let mut out = format!(
            "{{\"trace_id\": \"{}\", \"label\": \"{}\", \"spans\": [",
            self.id, d.label
        );
        for (i, s) in d.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let parent = match s.parent {
                Some(p) => p.0.to_string(),
                None => "null".into(),
            };
            let end = match s.end_ns {
                Some(e) => format!("{:.1}", e as f64 * 1e-3),
                None => "null".into(),
            };
            out.push_str(&format!(
                "{{\"id\": {i}, \"parent\": {parent}, \"name\": \"{}\", \
                 \"start_us\": {:.1}, \"end_us\": {end}}}",
                s.name,
                s.start_ns as f64 * 1e-3,
            ));
        }
        out.push_str("]}");
        out
    }
}

// -------------------------------------------------------- trace registry

/// Recent traces kept for lookup by id (e.g. from a response handle).
const KEEP_TRACES: usize = 256;

fn registry() -> &'static Mutex<VecDeque<TraceHandle>> {
    static R: OnceLock<Mutex<VecDeque<TraceHandle>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Mint a new trace with an open root span named `label`, and retain it
/// in the recent-trace ring for [`lookup`].
pub fn start(label: &'static str) -> TraceHandle {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let handle = TraceHandle {
        id: TraceId(NEXT.fetch_add(1, Ordering::Relaxed)),
        epoch: Instant::now(),
        data: Arc::new(Mutex::new(TraceData {
            label,
            spans: vec![Span {
                name: label,
                parent: None,
                start_ns: 0,
                end_ns: None,
            }],
        })),
    };
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.push_back(handle.clone());
    while reg.len() > KEEP_TRACES {
        reg.pop_front();
    }
    handle
}

/// Find a recently minted trace by id.
pub fn lookup(id: TraceId) -> Option<TraceHandle> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter().rev().find(|h| h.id == id).cloned()
}

// ------------------------------------------------------- per-thread state

struct Active {
    handle: TraceHandle,
    /// Open span guards on this thread, innermost last.
    stack: Vec<SpanId>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// Make `handle` the active trace on this thread until the guard drops;
/// `parent` is the span new guards on this thread nest under.
pub fn enter(handle: &TraceHandle, parent: SpanId) -> EnterGuard {
    ACTIVE.with(|a| {
        a.borrow_mut().push(Active {
            handle: handle.clone(),
            stack: vec![parent],
        })
    });
    EnterGuard {
        id: handle.id,
        _not_send: std::marker::PhantomData,
    }
}

/// The active trace on this thread, if any.
pub fn current() -> Option<TraceHandle> {
    ACTIVE.with(|a| a.borrow().last().map(|e| e.handle.clone()))
}

/// Scope guard for [`enter`]; restores the previously active trace.
pub struct EnterGuard {
    id: TraceId,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            let mut v = a.borrow_mut();
            // Normally ours is last; under panic-unwind inner span guards
            // already dropped, so a plain pop of the matching entry holds.
            if let Some(pos) = v.iter().rposition(|e| e.handle.id == self.id) {
                v.remove(pos);
            }
        });
    }
}

/// Open a nested span in this thread's active trace; no-op (one atomic
/// load) when tracing is disabled or no trace is active here.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let open = ACTIVE.with(|a| {
        let mut v = a.borrow_mut();
        let entry = v.last_mut()?;
        let parent = entry.stack.last().copied();
        let id = entry.handle.open_span(name, parent);
        entry.stack.push(id);
        Some((entry.handle.clone(), id))
    });
    SpanGuard { open }
}

/// RAII guard closing its span (and unwinding the thread's span stack to
/// its parent) on drop — including during panic unwind.
pub struct SpanGuard {
    open: Option<(TraceHandle, SpanId)>,
}

impl SpanGuard {
    /// The span this guard opened, if tracing was live.
    pub fn id(&self) -> Option<SpanId> {
        self.open.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((handle, id)) = self.open.take() else {
            return;
        };
        handle.close_span(id);
        ACTIVE.with(|a| {
            let mut v = a.borrow_mut();
            if let Some(entry) = v.iter_mut().rfind(|e| e.handle.id == handle.id) {
                // Pop through our id: anything above it belongs to guards
                // leaked by the unwind already past.
                if let Some(pos) = entry.stack.iter().rposition(|&s| s == id) {
                    entry.stack.truncate(pos);
                }
            }
        });
    }
}

/// Open a named span in the thread's active trace:
/// `let _s = cobs::span!("batcher.flush");`
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::trace::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        // Tests in this module share the process-wide flag; they only ever
        // turn it on, so no teardown race.
        set_enabled(true);
        f()
    }

    #[test]
    fn spans_nest_and_render() {
        with_tracing(|| {
            let t = start("req");
            {
                let _e = enter(&t, t.root());
                let _a = span("outer");
                {
                    let _b = span("inner");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            t.close();
            let r = t.render();
            assert!(r.contains("req"), "{r}");
            let outer_at = r.find("outer").unwrap();
            let inner_at = r.find("inner").unwrap();
            assert!(inner_at > outer_at);
            // inner is indented deeper than outer
            let indent = |at: usize| r[..at].rfind('\n').map(|n| at - n - 1).unwrap_or(at);
            assert!(indent(inner_at) > indent(outer_at), "{r}");
            assert!(t.span_seconds(t.root()).unwrap() >= 0.001);
        });
    }

    #[test]
    fn disabled_span_is_noop() {
        // Even with a trace entered, a guard minted via span() after
        // disabling records nothing.
        with_tracing(|| {
            let t = start("req");
            let _e = enter(&t, t.root());
            set_enabled(false);
            let before = t.span_count();
            {
                let _s = span("ghost");
            }
            set_enabled(true);
            assert_eq!(t.span_count(), before);
        });
    }

    #[test]
    fn explicit_record_defaults_parent_to_root() {
        with_tracing(|| {
            let t = start("req");
            let now = Instant::now();
            t.record("queue.wait", None, now, now + Duration::from_millis(2));
            t.close();
            let r = t.render();
            assert!(r.contains("queue.wait"), "{r}");
        });
    }

    #[test]
    fn panic_unwind_restores_span_stack() {
        with_tracing(|| {
            let t = start("req");
            let _e = enter(&t, t.root());
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _a = span("will_unwind");
                let _b = span("inner_unwind");
                panic!("boom");
            }));
            assert!(res.is_err());
            // Stack restored to root: a fresh span nests under root, and
            // both unwound spans are closed.
            let id = span("after").id().unwrap();
            drop(span("noop"));
            let d = lock(&t.data);
            let after = &d.spans[id.0 as usize];
            assert_eq!(after.parent, Some(SpanId(0)));
            for s in d.spans.iter() {
                if s.name == "will_unwind" || s.name == "inner_unwind" {
                    assert!(s.end_ns.is_some(), "{} left open", s.name);
                }
            }
        });
    }

    #[test]
    fn render_prints_self_time_on_parents_only() {
        with_tracing(|| {
            let t = start("req");
            {
                let _e = enter(&t, t.root());
                let _a = span("parent");
                {
                    let _b = span("child");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            t.close();
            let r = t.render();
            // Parents (root + "parent") carry a self-time annotation;
            // the leaf does not.
            let parent_line = r.lines().find(|l| l.contains("parent")).unwrap();
            assert!(parent_line.contains("(self "), "{r}");
            let child_line = r.lines().find(|l| l.contains("child")).unwrap();
            assert!(!child_line.contains("(self "), "{r}");
            // The child's sleep dominates: parent self-time is far below
            // its total, i.e. "slow below", not "slow here".
            let total_ms = t.span_seconds(SpanId(1)).unwrap() * 1e3;
            assert!(total_ms >= 5.0, "{r}");
            let self_part = parent_line.split("(self ").nth(1).unwrap();
            assert!(
                self_part.contains("us") || self_part.starts_with("0."),
                "parent self-time should be tiny: {parent_line}"
            );
        });
    }

    #[test]
    fn childless_sibling_runs_aggregate_in_render() {
        with_tracing(|| {
            let t = start("req");
            {
                let _e = enter(&t, t.root());
                for _ in 0..5 {
                    let _k = span("kernel.matmul.f32");
                }
            }
            t.close();
            let r = t.render();
            assert!(r.contains("kernel.matmul.f32 x5"), "{r}");
            assert_eq!(r.matches("kernel.matmul.f32").count(), 1, "{r}");
        });
    }

    #[test]
    fn lookup_finds_recent_trace_and_json_parses_shape() {
        with_tracing(|| {
            let t = start("req");
            assert_eq!(lookup(t.id()).map(|h| h.id()), Some(t.id()));
            t.close();
            let j = t.to_json();
            assert!(j.starts_with("{\"trace_id\""), "{j}");
            assert!(j.contains("\"spans\": ["), "{j}");
            assert!(j.ends_with("]}"), "{j}");
        });
    }

    #[test]
    fn cross_thread_recording_via_handle() {
        with_tracing(|| {
            let t = start("req");
            let t2 = t.clone();
            std::thread::spawn(move || {
                let _e = enter(&t2, t2.root());
                let _s = span("worker.compute");
            })
            .join()
            .unwrap();
            assert!(t.render().contains("worker.compute"));
        });
    }
}
