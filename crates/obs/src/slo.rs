//! Declarative SLOs evaluated with multi-window burn-rate math.
//!
//! An [`SloSpec`] names an objective — a target fraction of *good*
//! requests, where good is either "not an error" (availability) or
//! "answered within [`SloSpec::latency_threshold`]" (latency). The error
//! budget is `1 − objective`; the **burn rate** over a window is the
//! window's observed error rate divided by the budget, so burn 1.0 spends
//! the budget exactly at the sustainable pace and burn 14.4 exhausts a
//! 30-day budget in 50 hours (the classic page threshold).
//!
//! Alerts use the **multi-window** rule: a severity fires only when the
//! burn rate exceeds its threshold over *both* a fast and a slow window.
//! The slow window keeps one noisy minute from paging; the fast window
//! makes the alert reset quickly once the bleeding stops. The per-spec
//! [`AlertState`] machine escalates `ok → warning → page` immediately when
//! both windows agree, and de-escalates one level per evaluation once
//! both burn rates fall below the warning threshold (hysteresis: a
//! flapping error rate ratchets down slowly, not instantly).
//!
//! Time is injected via the [`Clock`] trait: production uses
//! [`SystemClock`] (monotonic), tests use [`ManualClock`] and never
//! sleep. Window counts live in coarse time-bucket rings, so recording is
//! O(1) and memory is O(slow_window / bucket) per spec.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Source of monotone time in seconds (injectable for tests).
pub trait Clock: Send + Sync {
    fn now_seconds(&self) -> f64;
}

/// Monotonic wall clock, anchored at construction.
pub struct SystemClock {
    anchor: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self {
            anchor: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_seconds(&self) -> f64 {
        self.anchor.elapsed().as_secs_f64()
    }
}

/// Test clock advanced by hand.
#[derive(Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    pub fn new(t: f64) -> Self {
        let c = Self::default();
        c.set(t);
        c
    }

    pub fn set(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::Relaxed);
    }

    pub fn advance(&self, dt: f64) {
        self.set(self.now_seconds() + dt);
    }
}

impl Clock for ManualClock {
    fn now_seconds(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ------------------------------------------------------------------ spec

/// One service-level objective.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    pub name: &'static str,
    /// Target good fraction (e.g. `0.999` = 99.9%).
    pub objective: f64,
    /// `None`: availability (good = request succeeded). `Some(thr)`:
    /// latency (good = succeeded *and* answered within `thr` seconds).
    pub latency_threshold: Option<f64>,
    /// Fast alert window, seconds.
    pub fast_window: f64,
    /// Slow alert window, seconds.
    pub slow_window: f64,
    /// Burn rate (over both windows) that pages.
    pub page_burn: f64,
    /// Burn rate (over both windows) that warns.
    pub warn_burn: f64,
}

impl SloSpec {
    /// Availability SLO with the classic fast/slow pairing scaled to a
    /// serving process (60 s fast / 12 min slow).
    pub fn availability(name: &'static str, objective: f64) -> Self {
        Self {
            name,
            objective,
            latency_threshold: None,
            fast_window: 60.0,
            slow_window: 720.0,
            page_burn: 14.4,
            warn_burn: 6.0,
        }
    }

    /// Latency SLO: `objective` of requests answered within `threshold`
    /// seconds.
    pub fn latency(name: &'static str, threshold: f64, objective: f64) -> Self {
        Self {
            latency_threshold: Some(threshold),
            ..Self::availability(name, objective)
        }
    }

    /// Error budget (bad fraction allowed), floored away from zero so a
    /// 100% objective cannot divide by zero.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// Alert severity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    Ok,
    Warning,
    Page,
}

impl AlertState {
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Page => "page",
        }
    }

    fn step_down(self) -> Self {
        match self {
            AlertState::Page => AlertState::Warning,
            _ => AlertState::Ok,
        }
    }
}

// --------------------------------------------------------------- buckets

/// Coarse time-bucketed good/bad counts. Slot `abs % len` holds the
/// counts of absolute bucket `abs`; a slot is lazily reset when a newer
/// absolute bucket claims it, so no timer thread is needed.
struct Buckets {
    width: f64,
    abs: Vec<u64>,
    good: Vec<u64>,
    bad: Vec<u64>,
}

const EMPTY: u64 = u64::MAX;

impl Buckets {
    fn new(fast_window: f64, slow_window: f64) -> Self {
        // ≥12 buckets across the fast window keeps its edge quantization
        // under ~8%; the ring must span the slow window plus one bucket.
        let width = (fast_window / 12.0).max(1e-3);
        let len = (slow_window / width).ceil() as usize + 2;
        Self {
            width,
            abs: vec![EMPTY; len],
            good: vec![0; len],
            bad: vec![0; len],
        }
    }

    fn record(&mut self, now: f64, good: bool) {
        let abs = (now.max(0.0) / self.width) as u64;
        let slot = (abs as usize) % self.abs.len();
        if self.abs[slot] != abs {
            self.abs[slot] = abs;
            self.good[slot] = 0;
            self.bad[slot] = 0;
        }
        if good {
            self.good[slot] += 1;
        } else {
            self.bad[slot] += 1;
        }
    }

    /// `(good, bad)` over the last `window` seconds ending at `now`.
    fn counts(&self, now: f64, window: f64) -> (u64, u64) {
        let cur = (now.max(0.0) / self.width) as u64;
        let span = (window / self.width).ceil() as u64;
        let min = cur.saturating_sub(span);
        let (mut g, mut b) = (0, 0);
        for slot in 0..self.abs.len() {
            let abs = self.abs[slot];
            if abs != EMPTY && abs >= min && abs <= cur {
                g += self.good[slot];
                b += self.bad[slot];
            }
        }
        (g, b)
    }
}

// --------------------------------------------------------------- tracker

/// Evaluated state of one SLO at one instant.
#[derive(Clone, Debug)]
pub struct SloStatus {
    pub name: &'static str,
    pub state: AlertState,
    pub fast_burn: f64,
    pub slow_burn: f64,
    /// `(good, bad)` over the slow window.
    pub counts: (u64, u64),
}

impl SloStatus {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"state\": \"{}\", \"burn_fast\": {:.3}, \
             \"burn_slow\": {:.3}, \"good\": {}, \"bad\": {}}}",
            self.name,
            self.state.as_str(),
            self.fast_burn,
            self.slow_burn,
            self.counts.0,
            self.counts.1
        )
    }
}

struct TrackerInner {
    buckets: Buckets,
    state: AlertState,
}

/// One SLO's counters plus its alert state machine.
pub struct SloTracker {
    pub spec: SloSpec,
    inner: Mutex<TrackerInner>,
    /// Leaked-once gauge names (`slo.<name>.{burn_fast,burn_slow,state}`).
    gauges: (&'static str, &'static str, &'static str),
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

impl SloTracker {
    pub fn new(spec: SloSpec) -> Self {
        let gauges = (
            leak(format!("slo.{}.burn_fast", spec.name)),
            leak(format!("slo.{}.burn_slow", spec.name)),
            leak(format!("slo.{}.state", spec.name)),
        );
        let reg = crate::metrics::global();
        reg.describe(
            gauges.0,
            "Fast-window error-budget burn rate (error rate / budget)",
        );
        reg.describe(
            gauges.1,
            "Slow-window error-budget burn rate (error rate / budget)",
        );
        reg.describe(gauges.2, "SLO alert state: 0 = ok, 1 = warning, 2 = page");
        // Intern the gauges now so the series are scrapeable (at their
        // resting values) before the first `evaluate` runs.
        reg.gauge(gauges.0).set(0.0);
        reg.gauge(gauges.1).set(0.0);
        reg.gauge(gauges.2).set(AlertState::Ok as u8 as f64);
        Self {
            spec,
            inner: Mutex::new(TrackerInner {
                buckets: Buckets::new(spec.fast_window, spec.slow_window),
                state: AlertState::Ok,
            }),
            gauges,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TrackerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn record(&self, now: f64, good: bool) {
        self.lock().buckets.record(now, good);
    }

    /// `(fast, slow)` burn rates at `now`. Windows with no samples burn
    /// at 0 (no data is not an outage — absence alerting is a separate
    /// concern from budget burn).
    pub fn burn_rates(&self, now: f64) -> (f64, f64) {
        let inner = self.lock();
        let rate = |(g, b): (u64, u64)| {
            let n = g + b;
            if n == 0 {
                0.0
            } else {
                b as f64 / n as f64 / self.spec.budget()
            }
        };
        (
            rate(inner.buckets.counts(now, self.spec.fast_window)),
            rate(inner.buckets.counts(now, self.spec.slow_window)),
        )
    }

    /// Step the alert state machine and export gauges.
    pub fn evaluate(&self, now: f64) -> SloStatus {
        let mut inner = self.lock();
        let rate = |(g, b): (u64, u64)| {
            let n = g + b;
            if n == 0 {
                0.0
            } else {
                b as f64 / n as f64 / self.spec.budget()
            }
        };
        let counts = inner.buckets.counts(now, self.spec.slow_window);
        let fast = rate(inner.buckets.counts(now, self.spec.fast_window));
        let slow = rate(counts);
        let both_over = |thr: f64| fast >= thr && slow >= thr;
        inner.state = if both_over(self.spec.page_burn) {
            AlertState::Page
        } else if both_over(self.spec.warn_burn) {
            // Escalating to warning is immediate; an active page holds
            // until the burn drops below the warning threshold.
            inner.state.max(AlertState::Warning)
        } else {
            // Recovery ratchets down one level per evaluation.
            inner.state.step_down()
        };
        let status = SloStatus {
            name: self.spec.name,
            state: inner.state,
            fast_burn: fast,
            slow_burn: slow,
            counts,
        };
        drop(inner);
        crate::metrics::global().gauge(self.gauges.0).set(fast);
        crate::metrics::global().gauge(self.gauges.1).set(slow);
        crate::metrics::global()
            .gauge(self.gauges.2)
            .set(status.state as u8 as f64);
        status
    }
}

// ---------------------------------------------------------------- engine

/// A set of SLOs fed from one request stream.
pub struct SloEngine {
    clock: Arc<dyn Clock>,
    trackers: Vec<SloTracker>,
}

impl SloEngine {
    pub fn new(clock: Arc<dyn Clock>, specs: Vec<SloSpec>) -> Self {
        Self {
            clock,
            trackers: specs.into_iter().map(SloTracker::new).collect(),
        }
    }

    /// The serving defaults: 99.9% availability plus 99% of requests
    /// under 250 ms, on the system clock.
    pub fn standard() -> Self {
        Self::new(
            Arc::new(SystemClock::default()),
            vec![
                SloSpec::availability("availability", 0.999),
                SloSpec::latency("latency_p99", 0.250, 0.99),
            ],
        )
    }

    /// Feed one finished request into every SLO: availability SLOs count
    /// `ok`, latency SLOs count `ok && latency ≤ threshold`.
    pub fn record_request(&self, latency_seconds: f64, ok: bool) {
        let now = self.clock.now_seconds();
        for t in &self.trackers {
            let good = match t.spec.latency_threshold {
                None => ok,
                Some(thr) => ok && latency_seconds <= thr,
            };
            t.record(now, good);
        }
    }

    /// Evaluate every SLO at the clock's now (steps state machines and
    /// exports gauges).
    pub fn evaluate(&self) -> Vec<SloStatus> {
        let now = self.clock.now_seconds();
        self.trackers.iter().map(|t| t.evaluate(now)).collect()
    }

    /// The most severe state across SLOs (evaluating them all).
    pub fn worst_state(&self) -> AlertState {
        self.evaluate()
            .iter()
            .map(|s| s.state)
            .max()
            .unwrap_or(AlertState::Ok)
    }

    /// `/healthz` fragment: every SLO's status as a JSON array.
    pub fn health_json(&self) -> String {
        let statuses = self.evaluate();
        let mut out = String::from("[");
        for (i, s) in statuses.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        out
    }

    pub fn trackers(&self) -> &[SloTracker] {
        &self.trackers
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::availability("unit_avail", 0.99) // budget 1%
    }

    /// Feed `n` requests with `bad` failures spread across `[t0, t1)`.
    fn feed(t: &SloTracker, t0: f64, t1: f64, n: usize, bad: usize) {
        for i in 0..n {
            let now = t0 + (t1 - t0) * i as f64 / n as f64;
            t.record(now, i >= bad);
        }
    }

    #[test]
    fn burn_rate_matches_error_rate_over_budget() {
        let t = SloTracker::new(spec());
        // 10% errors against a 1% budget → burn ≈ 10.
        feed(&t, 0.0, 50.0, 200, 20);
        let (fast, slow) = t.burn_rates(50.0);
        assert!((fast - 10.0).abs() < 2.0, "fast burn {fast}");
        assert!((slow - 10.0).abs() < 2.0, "slow burn {slow}");
    }

    #[test]
    fn multi_window_pages_only_when_both_agree() {
        let t = SloTracker::new(spec());
        // A long healthy history fills the slow window...
        feed(&t, 0.0, 700.0, 7000, 0);
        // ...then 30 s of 100% errors: fast window sees burn 100, but the
        // slow window still averages ≈ 4 — no page yet.
        feed(&t, 700.0, 730.0, 300, 300);
        let s = t.evaluate(730.0);
        assert!(s.fast_burn >= 14.4, "fast {s:?}");
        assert!(s.state < AlertState::Page, "one bad window paged: {s:?}");
        // Sustained bleeding pushes the slow window over too.
        feed(&t, 730.0, 1150.0, 4200, 4200);
        let s = t.evaluate(1150.0);
        assert_eq!(s.state, AlertState::Page, "{s:?}");
    }

    #[test]
    fn state_machine_recovers_one_step_per_evaluation() {
        let t = SloTracker::new(spec());
        feed(&t, 0.0, 720.0, 720, 720); // all bad → page
        assert_eq!(t.evaluate(720.0).state, AlertState::Page);
        // Silence: both windows drain past 720 + slow_window.
        let quiet = 720.0 + t.spec.slow_window + 10.0;
        feed(&t, quiet, quiet + 60.0, 600, 0);
        assert_eq!(t.evaluate(quiet + 60.0).state, AlertState::Warning);
        assert_eq!(t.evaluate(quiet + 61.0).state, AlertState::Ok);
    }

    #[test]
    fn latency_slo_classifies_by_threshold() {
        let clock = Arc::new(ManualClock::new(0.0));
        let engine = SloEngine::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            vec![SloSpec::latency("unit_lat", 0.100, 0.9)], // 10% budget
        );
        for i in 0..100 {
            clock.advance(0.5);
            // 40% of requests breach the 100 ms threshold.
            let lat = if i % 5 < 2 { 0.200 } else { 0.010 };
            engine.record_request(lat, true);
        }
        let s = engine.evaluate();
        assert_eq!(s.len(), 1);
        // 40% violations / 10% budget = burn 4.
        assert!((s[0].fast_burn - 4.0).abs() < 1.0, "{:?}", s[0]);
        let health = engine.health_json();
        assert!(health.contains("\"name\": \"unit_lat\""), "{health}");
    }

    #[test]
    fn old_buckets_age_out_of_both_windows() {
        let t = SloTracker::new(spec());
        feed(&t, 0.0, 60.0, 600, 600); // a disaster, long ago
        let later = 2000.0; // > slow_window past the disaster
        let (fast, slow) = t.burn_rates(later);
        assert_eq!((fast, slow), (0.0, 0.0));
    }
}
