//! End-to-end serving tests over a (tiny) trained surrogate: concurrent
//! clients, micro-batching, cache identity, backpressure, and parity with
//! direct prediction.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ccore::{train_surrogate, Scenario, SurrogateSpec};
use cocean::Snapshot;
use cserve::{ForecastRequest, ForecastServer, Priority, ServeConfig, ServeError};

// Trained once, shared by every test (training dominates test wall time).
struct Ctx {
    spec: SurrogateSpec,
    archive: Vec<Snapshot>,
    t_out: usize,
}

static CTX: OnceLock<Ctx> = OnceLock::new();

fn ctx() -> &'static Ctx {
    CTX.get_or_init(|| {
        let mut sc = Scenario::small();
        sc.epochs = 2;
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 40);
        let trained = train_surrogate(&sc, &grid, &archive);
        Ctx {
            spec: trained.spec(),
            archive,
            t_out: sc.t_out,
        }
    })
}

/// Sliding episode windows (stride 1 → plenty of distinct requests).
fn windows(n: usize) -> Vec<Vec<Snapshot>> {
    let c = ctx();
    let len = c.t_out + 1;
    (0..n).map(|i| c.archive[i..i + len].to_vec()).collect()
}

fn request(i: usize) -> ForecastRequest {
    let c = ctx();
    ForecastRequest::new(0, windows(i + 1).pop().unwrap(), c.t_out)
}

#[test]
fn concurrent_requests_all_answered() {
    let c = ctx();
    let server = Arc::new(ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            ..Default::default()
        },
    ));
    let n = 16;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                server
                    .submit(request(i))
                    .expect("admitted")
                    .wait()
                    .expect("answered")
            })
        })
        .collect();
    for h in handles {
        let forecast = h.join().unwrap();
        assert_eq!(forecast.len(), c.t_out);
        assert!(forecast
            .iter()
            .all(|s| s.zeta.iter().all(|v| v.is_finite())));
    }
    let m = server.metrics();
    assert_eq!(m.completed, n as u64);
    assert_eq!(m.failed, 0);
    assert!(m.p99_ms >= m.p50_ms);
}

#[test]
fn micro_batches_form_under_load() {
    let c = ctx();
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(200),
            cache_capacity: 0, // all 16 requests must hit the model
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..16)
        .map(|i| server.submit(request(i)).expect("admitted"))
        .collect();
    for h in handles {
        h.wait().expect("answered");
    }
    let m = server.metrics();
    assert_eq!(m.completed, 16);
    assert!(
        m.mean_batch_size() > 1.5,
        "requests must coalesce into batches: {:?}",
        m.batch_histogram
    );
    assert!(
        m.batch_histogram.iter().any(|&(size, _)| size >= 4),
        "expected at least one large batch: {:?}",
        m.batch_histogram
    );
}

#[test]
fn served_forecast_matches_direct_prediction() {
    let c = ctx();
    let direct_model = c.spec.instantiate();
    let server = ForecastServer::new(c.spec.clone(), ServeConfig::default());

    for i in [0usize, 3, 11] {
        let w = windows(i + 1).pop().unwrap();
        let direct = direct_model.predict_episode(&w);
        let served = server
            .submit(ForecastRequest::new(0, w, c.t_out))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            for (x, y) in a.zeta.iter().zip(&b.zeta) {
                assert!((x - y).abs() < 1e-5, "zeta {x} vs {y}");
            }
            for (x, y) in a.u.iter().zip(&b.u) {
                assert!((x - y).abs() < 1e-5, "u {x} vs {y}");
            }
        }
    }
}

#[test]
fn repeated_requests_hit_cache_within_f16_rounding() {
    let c = ctx();
    let server = ForecastServer::new(c.spec.clone(), ServeConfig::default());
    let w = windows(1).pop().unwrap();

    let first = server
        .submit(ForecastRequest::new(7, w.clone(), c.t_out))
        .unwrap();
    assert!(!first.from_cache());
    let first = first.wait_shared().unwrap();

    let second = server.submit(ForecastRequest::new(7, w, c.t_out)).unwrap();
    assert!(second.from_cache(), "identical request must hit the cache");
    let second = second.wait_shared().unwrap();

    // The cache stores f16 payloads: the hit is a fresh f32 widening of
    // the first computation, equal to within f16 rounding (rel ≤ 2⁻¹¹).
    assert!(!Arc::ptr_eq(&first, &second));
    for (a, b) in first.iter().zip(second.iter()) {
        for (x, y) in a.zeta.iter().zip(&b.zeta) {
            assert!(
                (x - y).abs() <= x.abs() / 2048.0 + 6.2e-5,
                "cache hit outside f16 rounding: {x} vs {y}"
            );
        }
    }
    let m = server.metrics();
    assert_eq!(m.cache_hits, 1);
    assert!(m.cache_hit_rate > 0.0);
}

#[test]
fn distinct_initial_conditions_never_collide() {
    let c = ctx();
    let server = ForecastServer::new(c.spec.clone(), ServeConfig::default());
    // Two requests whose windows differ only in the IC interior.
    let w1 = windows(1).pop().unwrap();
    let mut w2 = w1.clone();
    w2[0].zeta[25] += 1e-3;

    let r1 = server.submit(ForecastRequest::new(0, w1, c.t_out)).unwrap();
    assert!(!r1.from_cache());
    r1.wait().unwrap();
    let r2 = server.submit(ForecastRequest::new(0, w2, c.t_out)).unwrap();
    assert!(
        !r2.from_cache(),
        "a perturbed IC is a different request and must miss"
    );
    r2.wait().unwrap();
}

#[test]
fn overload_surfaces_as_typed_backpressure() {
    let c = ctx();
    let mut server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 1, // one request per model run: the worker saturates at once
            max_wait: Duration::from_millis(1),
            queue_capacity: 3,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    // Dispatch is work-conserving (an idle worker drains the queue
    // immediately, regardless of max_wait), so overload requires genuine
    // saturation: flood the lone worker with distinct requests faster
    // than it can forecast until the bounded queue rejects one. Each
    // submit is microseconds while a forecast is milliseconds, so the
    // queue fills long before the flood ends.
    let mut handles = Vec::new();
    let mut overloaded = None;
    for i in 0..32 {
        match server.submit(request(i)) {
            Ok(h) => handles.push(h),
            Err(ServeError::Overloaded { depth, capacity }) => {
                overloaded = Some((depth, capacity));
                break;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    let (depth, capacity) = overloaded.expect("flood must trip the bounded queue");
    assert_eq!((depth, capacity), (3, 3));
    assert_eq!(server.metrics().rejected, 1);

    // Graceful shutdown flushes the backlog; the admitted requests
    // still complete.
    server.shutdown();
    for h in handles {
        assert_eq!(h.wait().expect("drained at shutdown").len(), c.t_out);
    }
    // …and new submissions are now refused.
    assert!(matches!(
        server.submit(request(0)),
        Err(ServeError::Shutdown)
    ));
}

#[test]
fn malformed_requests_rejected_up_front() {
    let c = ctx();
    let server = ForecastServer::new(c.spec.clone(), ServeConfig::default());

    // Wrong horizon.
    let w = windows(1).pop().unwrap();
    let mut req = ForecastRequest::new(0, w.clone(), c.t_out + 1);
    assert!(matches!(server.submit(req), Err(ServeError::BadRequest(_))));

    // Window too short for the horizon.
    req = ForecastRequest::new(0, w[..c.t_out].to_vec(), c.t_out);
    assert!(matches!(server.submit(req), Err(ServeError::BadRequest(_))));

    // Mesh mismatch.
    let mut bad = w;
    bad[0] = Snapshot {
        time: 0.0,
        nz: 1,
        ny: 2,
        nx: 2,
        zeta: vec![0.0; 4],
        u: vec![0.0; 4],
        v: vec![0.0; 4],
        w: vec![0.0; 4],
    };
    req = ForecastRequest::new(0, bad, c.t_out);
    assert!(matches!(server.submit(req), Err(ServeError::BadRequest(_))));

    // Misrouted scenario id, on a deployment that pins one.
    let pinned = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            scenario_id: Some(0),
            ..Default::default()
        },
    );
    pinned
        .submit(ForecastRequest::new(0, windows(1).pop().unwrap(), c.t_out))
        .expect("matching scenario id admitted")
        .wait()
        .unwrap();
    assert!(matches!(
        pinned.submit(ForecastRequest::new(9, windows(1).pop().unwrap(), c.t_out)),
        Err(ServeError::BadRequest(_))
    ));
}

#[test]
fn identical_inflight_requests_coalesce_to_one_computation() {
    let c = ctx();
    // Cache disabled: any sharing must come from single-flight
    // coalescing, not the LRU.
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 16,
            max_wait: Duration::from_millis(150),
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let w = windows(1).pop().unwrap();
    let handles: Vec<_> = (0..12)
        .map(|_| {
            server
                .submit(ForecastRequest::new(0, w.clone(), c.t_out))
                .unwrap()
        })
        .collect();
    assert!(!handles[0].coalesced(), "first request leads");
    assert!(
        handles[1..].iter().all(|h| h.coalesced()),
        "duplicates join the in-flight computation"
    );
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait_shared().unwrap())
        .collect();
    // All twelve share the single computation's buffers.
    for r in &results[1..] {
        assert!(Arc::ptr_eq(&results[0], r));
    }
    let m = server.metrics();
    assert_eq!(m.completed, 12);
    assert_eq!(m.coalesced, 11);
    // Exactly one model execution, of batch size 1.
    let total_computed: u64 = m
        .batch_histogram
        .iter()
        .map(|&(size, count)| size as u64 * count)
        .sum();
    assert_eq!(total_computed, 1, "histogram: {:?}", m.batch_histogram);
}

#[test]
fn high_priority_requests_overtake_normal() {
    let c = ctx();
    // One worker and a wide-open deadline: everything lands in one batch,
    // whose intra-batch order is priority-first.
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(300),
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let mut normal = Vec::new();
    for i in 0..3 {
        normal.push(server.submit(request(i)).unwrap());
    }
    let mut urgent = request(3);
    urgent.priority = Priority::High;
    let urgent = server.submit(urgent).unwrap();
    // All four complete (ordering inside the batch is covered by the
    // batcher unit tests; here we assert the class is accepted end-to-end).
    urgent.wait().unwrap();
    for h in normal {
        h.wait().unwrap();
    }
    assert_eq!(server.metrics().completed, 4);
}

#[test]
fn ensemble_submission_reuses_batcher_and_cache() {
    let c = ctx();
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            queue_capacity: 16,
            cache_capacity: 32,
            ..Default::default()
        },
    );

    // A 6-member "ensemble" with one duplicated window: members flow
    // through the same micro-batcher (stacked forwards) and warm the
    // cache; the duplicate coalesces onto its leader.
    let ws = windows(5);
    let mut members: Vec<ForecastRequest> = ws
        .iter()
        .map(|w| ForecastRequest::new(0, w.clone(), c.t_out))
        .collect();
    members.push(ForecastRequest::new(0, ws[0].clone(), c.t_out));
    let handles = server.submit_ensemble(members).unwrap();
    assert_eq!(handles.len(), 6);
    let forecasts: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();

    // Member order preserved: each matches the direct model prediction.
    let direct = c.spec.instantiate();
    for (w, got) in ws.iter().zip(&forecasts) {
        let want = direct.predict_episode(w);
        for (a, b) in want.iter().zip(got) {
            assert_eq!(a.zeta, b.zeta, "served member must match direct prediction");
        }
    }
    // The duplicate member returned member 0's trajectory — exactly when
    // it coalesced onto the in-flight computation, or to f16 rounding if
    // it raced member 0's completion and hit the compressed cache.
    for (x, y) in forecasts[5][0].zeta.iter().zip(&forecasts[0][0].zeta) {
        assert!((x - y).abs() <= x.abs() / 2048.0 + 6.2e-5, "{x} vs {y}");
    }

    // A later client asking for a member forecast hits the warm cache.
    let again = server
        .submit(ForecastRequest::new(0, ws[2].clone(), c.t_out))
        .unwrap();
    assert!(again.from_cache(), "ensemble must have warmed the cache");
    again.wait().unwrap();
}

#[test]
fn ensemble_larger_than_queue_streams_through_with_retry() {
    let c = ctx();
    // Admission is streaming: the replica pool drains the bounded queue
    // while members enqueue, so an ensemble 3× the queue capacity is
    // admissible — and when the submitter outruns the drain, the typed
    // Overloaded plus a backed-off resubmit completes cheaply because
    // already-computed members return as cache hits / coalesce.
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4,
            cache_capacity: 32,
            ..Default::default()
        },
    );
    let members = || -> Vec<ForecastRequest> {
        windows(12)
            .into_iter()
            .map(|w| ForecastRequest::new(0, w, c.t_out))
            .collect()
    };
    let mut handles = None;
    for _attempt in 0..100 {
        match server.submit_ensemble(members()) {
            Ok(h) => {
                handles = Some(h);
                break;
            }
            Err(ServeError::Overloaded { .. }) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    let handles = handles.expect("ensemble admitted after backoff");
    assert_eq!(handles.len(), 12);
    for h in handles {
        assert_eq!(h.wait().expect("answered").len(), c.t_out);
    }
}

#[test]
fn malformed_or_saturating_ensembles_reject_as_typed_errors() {
    let c = ctx();
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            // A single worker busy on the first members gates the drain;
            // later members pile into the two-slot queue.
            max_batch: 16,
            max_wait: Duration::from_secs(10),
            queue_capacity: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    );

    // Invalid member (wrong horizon) rejects the whole ensemble before
    // anything enqueues — validation is atomic.
    let mut bad = vec![ForecastRequest::new(0, windows(1).pop().unwrap(), c.t_out)];
    bad.push(ForecastRequest::new(
        0,
        windows(1).pop().unwrap(),
        c.t_out + 1,
    ));
    assert!(matches!(
        server.submit_ensemble(bad),
        Err(ServeError::BadRequest(_))
    ));
    assert_eq!(server.queue_depth(), 0, "nothing may enqueue on bad input");

    // Empty ensembles are a typed error too.
    assert!(matches!(
        server.submit_ensemble(Vec::new()),
        Err(ServeError::BadRequest(_))
    ));

    // A genuinely stalled queue surfaces Overloaded mid-submission:
    // members admitted before saturation complete normally.
    let members: Vec<ForecastRequest> = windows(5)
        .into_iter()
        .map(|w| ForecastRequest::new(0, w, c.t_out))
        .collect();
    match server.submit_ensemble(members) {
        Err(ServeError::Overloaded { capacity, .. }) => assert_eq!(capacity, 2),
        other => panic!("expected Overloaded, got {:?}", other.map(|_| "handles")),
    }
}

/// A heterogeneous pool (one int8 worker, one f16 worker) serves every
/// request within the documented int8 ζ parity gate of the f32 model,
/// whichever worker answers.
#[test]
fn heterogeneous_pool_serves_within_parity_gate() {
    use ccore::ZETA_TOL_INT8;

    let c = ctx();
    let direct = c.spec.instantiate();
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            cache_capacity: 0,
            worker_precisions: Some(vec![
                ctensor::quant::Precision::Int8,
                ctensor::quant::Precision::F16,
            ]),
            ..Default::default()
        },
    );
    for i in 0..6 {
        let w = windows(i + 1).pop().unwrap();
        let want = direct.predict_episode(&w);
        let got = server
            .submit(ForecastRequest::new(0, w, c.t_out))
            .unwrap()
            .wait()
            .unwrap();
        let mut dz = 0.0f32;
        for (a, b) in want.iter().zip(&got) {
            for (x, y) in a.zeta.iter().zip(&b.zeta) {
                dz = dz.max((x - y).abs());
            }
        }
        assert!(
            dz <= ZETA_TOL_INT8,
            "reduced-precision worker drifted past the int8 gate: {dz:.3e}"
        );
    }
    assert_eq!(server.metrics().completed, 6);
}

/// Regression guard for the v1 pool-scaling collapse (four workers fell
/// to 0.21x of one worker on distinct requests). Distinct-request
/// throughput with a multi-worker pool must stay within 10% of the
/// single-worker configuration — on a single-core host extra workers
/// cannot help, but they must never hurt.
#[test]
fn multi_worker_distinct_throughput_does_not_collapse() {
    let c = ctx();
    let clients = 6usize;
    let per_client = ((c.archive.len() - c.t_out - 1) / clients).min(6);
    assert!(per_client >= 3, "archive too short for a meaningful sweep");
    let wins = windows(clients * per_client); // all-distinct, uncacheable mix

    let throughput = |workers: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            // Fresh server per repetition: cold cache, fresh queue.
            let server = Arc::new(ForecastServer::new(
                c.spec.clone(),
                ServeConfig {
                    workers,
                    max_batch: 8,
                    max_wait: Duration::from_millis(1),
                    ..Default::default()
                },
            ));
            let t0 = std::time::Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|cl| {
                    let server = Arc::clone(&server);
                    let wins = wins[cl * per_client..(cl + 1) * per_client].to_vec();
                    std::thread::spawn(move || {
                        // Each client streams submit→wait, so at most
                        // `clients` requests are in flight at once.
                        for w in wins {
                            let req = ForecastRequest::new(0, w, ctx().t_out);
                            server
                                .submit(req)
                                .expect("admitted")
                                .wait()
                                .expect("answered");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (clients * per_client) as f64 / best
    };

    let one = throughput(1);
    let multi = throughput(4);
    assert!(
        multi >= 0.9 * one,
        "pool scaling collapsed: 4 workers at {multi:.1} rps vs 1 worker at {one:.1} rps \
         ({:.2}x, regression threshold 0.9x)",
        multi / one
    );
}

/// Serializes tests that toggle the process-global trace switch.
static TRACE_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn serve_totals_reconcile_end_to_end() {
    let c = ctx();
    let mut server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2,
            cache_capacity: 4,
            ..Default::default()
        },
    );
    // Mixed traffic against a deliberately tiny deployment: distinct
    // requests (some of which trip the bounded queue), duplicates (which
    // coalesce onto in-flight leaders), and repeats (which hit the
    // cache). Every admission outcome must land in exactly one terminal
    // counter.
    let mut handles = Vec::new();
    let mut rejected_at_submit = 0u64;
    for round in 0..4 {
        for i in 0..6 {
            // Reuse a few keys so coalescing and cache hits both occur.
            let idx = if round % 2 == 0 { i } else { i % 3 };
            match server.submit(request(idx)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded { .. }) => rejected_at_submit += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
    }
    // Waiters joined onto an overloaded leader surface the error at
    // wait(); either way the request already reached a terminal counter.
    for h in handles {
        let _ = h.wait();
    }
    server.shutdown();
    let m = server.metrics();
    assert!(rejected_at_submit > 0, "tiny queue must reject under flood");
    assert!(m.completed > 0, "most of the flood completes");
    assert_eq!(
        m.completed + m.failed + m.rejected,
        m.submitted,
        "terminal counters must partition admissions: {m:?}"
    );
}

#[test]
fn traced_forecast_records_full_span_tree() {
    let c = ctx();
    let _gate = TRACE_GATE.lock().unwrap();
    cobs::trace::set_enabled(true);
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            cache_capacity: 8,
            ..Default::default()
        },
    );

    // Cold request: admission → queue → replica, all on one trace.
    let h = server.submit(request(0)).expect("admitted");
    let tid = h.trace_id().expect("tracing enabled mints a trace id");
    h.wait().expect("answered");
    let t = cobs::trace::lookup(tid).expect("trace retained in registry");
    let rendered = t.render();
    for needle in [
        "forecast",
        "submit.validate",
        "submit.cache_probe",
        "queue.wait",
        "replica.predict_batch",
    ] {
        assert!(
            rendered.contains(needle),
            "span {needle:?} missing from trace:\n{rendered}"
        );
    }
    assert!(
        t.span_seconds(t.root()).is_some(),
        "root span closed by the time wait() returns:\n{rendered}"
    );

    // Warm repeat: the cache hit still gets a (short) closed trace.
    let h2 = server.submit(request(0)).expect("admitted");
    let tid2 = h2.trace_id().expect("trace minted on the hit path too");
    assert_ne!(tid, tid2, "each submission gets its own trace");
    h2.wait().expect("answered from cache");
    let t2 = cobs::trace::lookup(tid2).expect("trace retained");
    assert!(
        t2.span_seconds(t2.root()).is_some(),
        "cache-hit path closes the root before responding"
    );
    assert!(
        t2.render().contains("submit.cache_probe"),
        "hit path records its probe: {}",
        t2.render()
    );
    cobs::trace::set_enabled(false);
}

#[test]
fn span_stack_survives_panic_unwind_in_worker_thread() {
    let _gate = TRACE_GATE.lock().unwrap();
    cobs::trace::set_enabled(true);
    let t = cobs::trace::start("forecast");
    let handle = t.clone();
    // Mirror replica_main's structure exactly: a pool worker enters the
    // request's trace, opens the compute span inside catch_unwind, and
    // keeps serving after the model panics.
    std::thread::Builder::new()
        .name("serve-replica-test".into())
        .spawn(move || {
            let _enter = cobs::trace::enter(&handle, handle.root());
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _span = cobs::trace::span("replica.predict_batch");
                panic!("kernel exploded mid-batch");
            }));
            assert!(unwound.is_err());
            // The guard's Drop ran during unwinding, so the next span
            // must attach back under the root, not under the dead span.
            let _span = cobs::trace::span("replica.predict_batch");
        })
        .unwrap()
        .join()
        .unwrap();
    t.close();
    let rendered = t.render();
    assert!(
        rendered.contains("replica.predict_batch x2"),
        "both compute spans must be siblings under the root \
         (panicked + recovered), aggregated in render:\n{rendered}"
    );
    cobs::trace::set_enabled(false);
}
