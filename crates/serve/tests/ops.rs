//! Ops-plane integration tests over a real TCP socket: a live
//! `ForecastServer` with `serve_ops` bound on an ephemeral port, scraped
//! with hand-rolled HTTP GETs — `/metrics` must parse as Prometheus text
//! exposition, `/healthz`/`/readyz` must carry correct 200/503 semantics,
//! and `/debug/traces` must show the traffic that just ran.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use ccore::{train_surrogate, Scenario, SurrogateSpec};
use cobs::drift::{DriftBaseline, DriftConfig};
use cocean::Snapshot;
use cserve::{DriftGovernor, ForecastRequest, ForecastServer, OpsServer, OpsState, ServeConfig};
use ctensor::quant::Precision;

// Trained once, shared by every test (training dominates test wall time).
struct Ctx {
    spec: SurrogateSpec,
    archive: Vec<Snapshot>,
    t_out: usize,
}

static CTX: OnceLock<Ctx> = OnceLock::new();

fn ctx() -> &'static Ctx {
    CTX.get_or_init(|| {
        let mut sc = Scenario::small();
        sc.epochs = 2;
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 40);
        let trained = train_surrogate(&sc, &grid, &archive);
        Ctx {
            spec: trained.spec(),
            archive,
            t_out: sc.t_out,
        }
    })
}

fn request(i: usize) -> ForecastRequest {
    let c = ctx();
    let len = c.t_out + 1;
    ForecastRequest::new(0, c.archive[i..i + len].to_vec(), c.t_out)
}

/// The flight recorder is process-global; tests that record into it or
/// freeze it serialize on this lock so a governor-induced freeze in one
/// test can't drop another test's records.
fn global_recorder_lock() -> &'static Mutex<()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
}

/// Minimal HTTP/1.1 GET over a fresh connection (the server speaks
/// `Connection: close`, so read-to-EOF frames the response).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Validate Prometheus text exposition: every non-comment line is
/// `name[{labels}] value`, metric names are legal, and histogram bucket
/// series are cumulative and end at `+Inf`.
fn assert_prometheus_wellformed(body: &str) {
    assert!(body.ends_with('\n'), "exposition must end with a newline");
    let mut last_bucket: Option<(String, f64)> = None;
    for line in body.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment form: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line}");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable value in: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name in: {line}"
        );
        if let Some(le) = series
            .split_once("le=\"")
            .and_then(|(_, rest)| rest.split('"').next())
        {
            let count: f64 = value.parse().unwrap();
            if let Some((prev_name, prev_count)) = &last_bucket {
                if *prev_name == name {
                    assert!(
                        count >= *prev_count,
                        "non-cumulative buckets in {name}: {prev_count} then {count}"
                    );
                }
            }
            last_bucket = Some((name.to_string(), count));
            if le == "+Inf" {
                last_bucket = None;
            }
        }
    }
}

#[test]
fn ops_endpoints_serve_live_telemetry_over_tcp() {
    let _g = global_recorder_lock().lock().unwrap();
    cobs::recorder::global().thaw();
    let c = ctx();
    let server = ForecastServer::new(
        c.spec.clone(),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let ops = server.serve_ops("127.0.0.1:0").expect("bind ops plane");
    let addr = ops.local_addr();

    // Real traffic: distinct requests plus a repeat (cache hit).
    for i in [0usize, 1, 2, 0] {
        server.submit(request(i)).expect("admitted").wait().unwrap();
    }

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_prometheus_wellformed(&metrics);
    assert!(
        metrics.contains("serve_requests_completed"),
        "serving counters must be exported: {metrics:.400}"
    );
    assert!(metrics.contains("# HELP "), "help text must be emitted");

    let (status, json) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(json.trim_start().starts_with('{'), "{json:.200}");
    assert!(json.contains("serve.requests.completed"), "{json:.400}");

    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "healthy server must answer 200: {health}");
    assert!(health.contains("\"slos\""), "{health}");
    assert!(health.contains("\"availability\""), "{health}");
    assert!(health.contains("\"recorder\""), "{health}");

    let (status, ready) = http_get(addr, "/readyz");
    assert_eq!(status, 200, "{ready}");
    assert!(ready.contains("\"ready\": true"), "{ready}");

    let (status, traces) = http_get(addr, "/debug/traces");
    assert_eq!(status, 200);
    assert!(
        traces.contains("\"seq\": "),
        "flight recorder must hold the traffic that just ran: {traces:.300}"
    );
    assert!(traces.contains("\"outcome\": \"ok\""), "{traces:.300}");
    assert!(traces.contains("\"from_cache\": true"), "{traces:.300}");

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    // Non-GET methods are refused.
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw:.100}");
}

#[test]
fn readyz_is_503_before_readiness_and_under_queue_pressure() {
    // Standalone ops state: readiness is injectable, so the
    // pool-not-yet-ready phase is testable without racing a constructor.
    let state = OpsState {
        queue_capacity: 4,
        ..Default::default()
    };
    let ready = Arc::clone(&state.ready);
    let depth = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut state = state;
    state.queue_depth = {
        let depth = Arc::clone(&depth);
        Arc::new(move || depth.load(Ordering::Relaxed))
    };
    let ops = OpsServer::bind("127.0.0.1:0", state).expect("bind");
    let addr = ops.local_addr();

    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 503, "not ready before the pool is up: {body}");
    assert!(body.contains("\"ready\": false"), "{body}");
    assert!(body.contains("replica pool not ready"), "{body}");

    ready.store(true, Ordering::Release);
    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 200, "{body}");

    depth.store(4, Ordering::Relaxed); // at capacity
    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 503, "saturated queue must shed: {body}");
    assert!(body.contains("admission queue at capacity"), "{body}");

    depth.store(3, Ordering::Relaxed);
    let (status, _) = http_get(addr, "/readyz");
    assert_eq!(status, 200);
}

#[test]
fn healthz_degrades_to_503_when_drift_pages() {
    let _g = global_recorder_lock().lock().unwrap();
    let baseline = DriftBaseline {
        pass_rate: 1.0,
        zeta_mean: 0.1,
        zeta_extreme: 0.8,
    };
    let cfg = DriftConfig {
        window: 4,
        trip_windows: 1,
        ..DriftConfig::default()
    };
    let governor = Arc::new(DriftGovernor::new(
        baseline,
        cfg,
        vec![Precision::F16], // one-rung ladder: second trip falls back
    ));
    let state = OpsState::default().with_governor(Arc::clone(&governor));
    state.ready.store(true, Ordering::Release);
    let ops = OpsServer::bind("127.0.0.1:0", state).expect("bind");
    let addr = ops.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"route\": \"f16\""), "{body}");

    // Two windows of failing members: off the ladder, into ROMS fallback.
    for _ in 0..8 {
        governor.observe_member(false, 0.1, 0.8);
    }
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "a paging drift alert must degrade: {body}");
    assert!(body.contains("\"status\": \"page\""), "{body}");
    assert!(body.contains("\"route\": \"roms_fallback\""), "{body}");
    assert!(body.contains("\"frozen\": true"), "{body}");

    cobs::recorder::global().thaw();
}
