//! The drift governor: turns `cobs::drift` escalation events into
//! serving-precision decisions.
//!
//! The precision ladder orders serving tiers from fastest to most
//! conservative (typically `[Int8, F16, F32]`). A healthy deployment
//! serves at rung 0. Each drift **escalation** (consecutive windows of
//! degraded physics pass-rate or ζ drift — see
//! [`cobs::drift::DriftMonitor`]) steps one rung toward full precision;
//! escalating past the last rung forces **ROMS-fallback routing** — the
//! surrogate is no longer trusted at any precision and requests should go
//! to the physics model, exactly the per-episode fallback the paper's
//! verification stage prescribes, promoted to a fleet-wide decision.
//! Drift **recovery** events step back one rung at a time.
//!
//! On every escalation the governor freezes the global flight recorder
//! (preserving the traces that crossed the incident) so the `/debug/traces`
//! dump is an artifact of the drift event, not of whatever traffic came
//! after it.
//!
//! The governor is advisory about *where* the route applies: serving
//! replicas pin their precision at spawn, so acting on a route change
//! means redeploying the pool (cheap — see `ForecastServer::new`) or
//! steering requests to ROMS. What the governor owns is the decision and
//! its visibility: `/healthz` surfaces the route, the alert level, and
//! the last event.

use std::sync::Mutex;

use cobs::drift::{DriftBaseline, DriftConfig, DriftEvent, DriftMonitor};
use cobs::slo::AlertState;
use ctensor::quant::Precision;

/// Where requests should go right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeRoute {
    /// Serve with the surrogate at this precision.
    Surrogate(Precision),
    /// The surrogate is out of its calibration envelope at every rung:
    /// route to the physics model.
    RomsFallback,
}

impl ServeRoute {
    pub fn as_str(self) -> &'static str {
        match self {
            ServeRoute::Surrogate(p) => p.as_str(),
            ServeRoute::RomsFallback => "roms_fallback",
        }
    }
}

/// What an observation changed, when it changed anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GovernorAction {
    /// Escalated one rung down the ladder (toward full precision).
    SteppedDown { from: ServeRoute, to: ServeRoute },
    /// Recovered one rung up the ladder (toward the fast tier).
    SteppedUp { from: ServeRoute, to: ServeRoute },
}

struct GovInner {
    monitor: DriftMonitor,
    /// Rung index into the ladder; `ladder.len()` means ROMS fallback.
    level: usize,
    last_event: Option<String>,
}

/// Fleet-level physics-drift watchdog with a precision ladder.
pub struct DriftGovernor {
    ladder: Vec<Precision>,
    inner: Mutex<GovInner>,
}

impl DriftGovernor {
    /// `ladder` orders serving tiers fastest-first; it must be non-empty.
    pub fn new(baseline: DriftBaseline, cfg: DriftConfig, ladder: Vec<Precision>) -> Self {
        assert!(!ladder.is_empty(), "precision ladder must be non-empty");
        cobs::global().describe(
            "drift.level",
            "precision-ladder rung forced by drift (ladder length = ROMS fallback)",
        );
        cobs::gauge!("drift.level").set(0.0);
        cobs::gauge!("drift.roms_fallback").set(0.0);
        Self {
            ladder,
            inner: Mutex::new(GovInner {
                monitor: DriftMonitor::new(baseline, cfg),
                level: 0,
                last_event: None,
            }),
        }
    }

    /// The standard ladder for a quantized deployment: int8 → f16 → f32.
    pub fn standard(baseline: DriftBaseline) -> Self {
        Self::new(
            baseline,
            DriftConfig::default(),
            vec![Precision::Int8, Precision::F16, Precision::F32],
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GovInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn route_at(&self, level: usize) -> ServeRoute {
        match self.ladder.get(level) {
            Some(&p) => ServeRoute::Surrogate(p),
            None => ServeRoute::RomsFallback,
        }
    }

    /// Feed one ensemble member's verification outcome and ζ summary.
    /// Returns the ladder move when this observation caused one.
    pub fn observe_member(
        &self,
        passed: bool,
        zeta_mean: f64,
        zeta_extreme: f64,
    ) -> Option<GovernorAction> {
        let mut inner = self.lock();
        let event = inner.monitor.observe(passed, zeta_mean, zeta_extreme)?;
        let from = self.route_at(inner.level);
        let action = match event {
            DriftEvent::Escalate(stats) => {
                if inner.level >= self.ladder.len() {
                    // Already at ROMS fallback: nothing left to step down.
                    inner.last_event = Some(format!(
                        "escalation at roms_fallback: {}",
                        stats.breaches.join("; ")
                    ));
                    None
                } else {
                    inner.level += 1;
                    let to = self.route_at(inner.level);
                    let reason = format!(
                        "drift escalation: {} -> {} ({})",
                        from.as_str(),
                        to.as_str(),
                        stats.breaches.join("; ")
                    );
                    // Preserve the traffic that crossed the incident.
                    cobs::recorder::global().freeze(&reason);
                    cobs::counter!("drift.escalations").inc();
                    inner.last_event = Some(reason);
                    Some(GovernorAction::SteppedDown { from, to })
                }
            }
            DriftEvent::Recover(_) => {
                if inner.level == 0 {
                    None
                } else {
                    inner.level -= 1;
                    let to = self.route_at(inner.level);
                    cobs::counter!("drift.recoveries").inc();
                    inner.last_event = Some(format!(
                        "drift recovery: {} -> {}",
                        from.as_str(),
                        to.as_str()
                    ));
                    Some(GovernorAction::SteppedUp { from, to })
                }
            }
        };
        cobs::gauge!("drift.level").set(inner.level as f64);
        cobs::gauge!("drift.roms_fallback").set((inner.level >= self.ladder.len()) as u8 as f64);
        action
    }

    /// Current routing decision.
    pub fn route(&self) -> ServeRoute {
        self.route_at(self.lock().level)
    }

    /// Current ladder rung (`ladder.len()` = ROMS fallback).
    pub fn level(&self) -> usize {
        self.lock().level
    }

    /// Alert severity implied by the route: warning while degraded on
    /// the ladder, page once routing fell back to ROMS. Merged into
    /// `/healthz` alongside the SLO burn-rate alerts.
    pub fn alert_state(&self) -> AlertState {
        let level = self.lock().level;
        if level >= self.ladder.len() {
            AlertState::Page
        } else if level > 0 {
            AlertState::Warning
        } else {
            AlertState::Ok
        }
    }

    /// `/healthz` fragment describing the governor.
    pub fn status_json(&self) -> String {
        let inner = self.lock();
        let ladder: Vec<String> = self
            .ladder
            .iter()
            .map(|p| format!("\"{}\"", p.as_str()))
            .collect();
        let last = match &inner.last_event {
            Some(e) => format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".into(),
        };
        format!(
            "{{\"route\": \"{}\", \"level\": {}, \"ladder\": [{}], \
             \"alert\": \"{}\", \"windows_evaluated\": {}, \"last_event\": {last}}}",
            self.route_at(inner.level).as_str(),
            inner.level,
            ladder.join(", "),
            if inner.level >= self.ladder.len() {
                "page"
            } else if inner.level > 0 {
                "warning"
            } else {
                "ok"
            },
            inner.monitor.windows_evaluated(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor() -> DriftGovernor {
        let baseline = DriftBaseline {
            pass_rate: 1.0,
            zeta_mean: 0.10,
            zeta_extreme: 0.80,
        };
        let cfg = DriftConfig {
            window: 4,
            trip_windows: 2,
            recover_windows: 2,
            ..DriftConfig::default()
        };
        DriftGovernor::new(
            baseline,
            cfg,
            vec![Precision::Int8, Precision::F16, Precision::F32],
        )
    }

    /// One escalation = trip_windows × window failing members.
    fn fail_until_step(g: &DriftGovernor) -> GovernorAction {
        for _ in 0..8 {
            if let Some(a) = g.observe_member(false, 0.10, 0.80) {
                return a;
            }
        }
        panic!("8 failing members must trip the governor");
    }

    // One test, not two: the governor freezes the process-global flight
    // recorder on escalation, so splitting ladder-walk and recovery into
    // parallel #[test]s would race on that shared state.
    #[test]
    fn walks_the_ladder_then_falls_back_then_recovers() {
        let g = governor();
        assert_eq!(g.route(), ServeRoute::Surrogate(Precision::Int8));
        assert_eq!(g.alert_state(), AlertState::Ok);

        assert_eq!(
            fail_until_step(&g),
            GovernorAction::SteppedDown {
                from: ServeRoute::Surrogate(Precision::Int8),
                to: ServeRoute::Surrogate(Precision::F16),
            }
        );
        assert_eq!(g.alert_state(), AlertState::Warning);
        fail_until_step(&g);
        assert_eq!(g.route(), ServeRoute::Surrogate(Precision::F32));
        assert_eq!(
            fail_until_step(&g),
            GovernorAction::SteppedDown {
                from: ServeRoute::Surrogate(Precision::F32),
                to: ServeRoute::RomsFallback,
            }
        );
        assert_eq!(g.alert_state(), AlertState::Page);
        assert!(g.status_json().contains("\"route\": \"roms_fallback\""));
        // The escalation froze the flight recorder for the incident dump.
        assert!(cobs::recorder::global().is_frozen());
        cobs::recorder::global().thaw();

        // Healthy members now walk it back up, one rung per recovery.
        let mut ups = 0;
        for _ in 0..64 {
            if let Some(a) = g.observe_member(true, 0.10, 0.80) {
                assert!(matches!(a, GovernorAction::SteppedUp { .. }), "{a:?}");
                ups += 1;
            }
            if g.level() == 0 {
                break;
            }
        }
        assert_eq!(ups, 3, "roms_fallback -> f32 -> f16 -> int8");
        assert_eq!(g.route(), ServeRoute::Surrogate(Precision::Int8));
        assert_eq!(g.alert_state(), AlertState::Ok);
    }
}
