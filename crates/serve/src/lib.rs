//! # coastal-serve
//!
//! On-demand forecast serving for the trained surrogate — the deployment
//! mode the paper's ~6000× speedup enables: coastal forecasts cheap
//! enough to answer per-request instead of per-scheduled-run.
//!
//! Components, in request order:
//!
//! - [`ForecastRequest`] — scenario id, initial-condition window, horizon,
//!   [`Priority`]; hashed into a [`request::CacheKey`].
//! - [`ForecastCache`] — LRU over completed trajectories with hit/miss
//!   accounting; entries rest as f16 payloads (half the f32 bytes) and
//!   hits widen back to f32, matching the first computation to f16
//!   rounding. Exact buffer sharing happens via single-flight coalescing
//!   of concurrent identical requests.
//! - [`MicroBatcher`] — bounded admission queue + dynamic micro-batching.
//!   Dispatch is work-conserving: an idle replica drains whatever is
//!   pending immediately; `max_batch`/`max_wait` only shape batches while
//!   every replica is busy. Saturation is a typed
//!   [`ServeError::Overloaded`], not unbounded growth.
//! - [`replica` pool][ForecastServer] — worker threads that each rebuild
//!   the model from a [`ccore::SurrogateSpec`] (parameters are
//!   thread-local `Rc`s; the spec's tensors are `Send`) and pin one
//!   compute backend. Each batch is **one** `predict_batch` forward pass,
//!   so throughput scales with batch size rather than request count.
//! - [`ServeMetrics`] — p50/p95/p99 latency, throughput, batch-size
//!   histogram, cache hit rate.
//!
//! The **ops plane** rides on the same stack: every terminal request
//! outcome feeds the global flight recorder and a per-server burn-rate
//! [SLO engine](cobs::slo), and [`ForecastServer::serve_ops`] starts a
//! std-only HTTP server ([`OpsServer`]) exposing `/metrics` (Prometheus),
//! `/metrics.json`, `/healthz`, `/readyz` and `/debug/traces`. The
//! [`DriftGovernor`] closes the loop on model quality: windowed physics
//! pass-rate / ζ drift steps serving down the precision ladder
//! (int8 → f16 → f32) and finally to ROMS-fallback routing, all visible
//! on `/healthz`.
//!
//! ```no_run
//! use ccore::{train_surrogate, Scenario};
//! use cserve::{ForecastRequest, ForecastServer, ServeConfig};
//!
//! let sc = Scenario::small();
//! let grid = sc.grid();
//! let archive = sc.simulate_archive(&grid, 0, 40);
//! let trained = train_surrogate(&sc, &grid, &archive);
//!
//! let server = ForecastServer::new(trained.spec(), ServeConfig::default());
//! let req = ForecastRequest::new(0, archive[..sc.t_out + 1].to_vec(), sc.t_out);
//! let forecast = server.submit(req).unwrap().wait().unwrap();
//! assert_eq!(forecast.len(), sc.t_out);
//! ```

pub mod batcher;
pub mod cache;
pub mod error;
pub mod governor;
pub mod metrics;
pub mod ops;
mod replica;
pub mod request;
pub mod server;

pub use batcher::{BatcherConfig, MicroBatcher};
pub use cache::ForecastCache;
pub use error::ServeError;
pub use governor::{DriftGovernor, GovernorAction, ServeRoute};
pub use metrics::{MetricsRecorder, ServeMetrics};
pub use ops::{OpsServer, OpsState};
pub use request::{ForecastRequest, Priority};
pub use server::{ForecastServer, ResponseHandle, ServeConfig};
